//! Property-based scheduler-parity harness (the tentpole's correctness
//! oracle, exercised end-to-end).
//!
//! Random kernel graphs are driven to completion twice — once under the
//! legacy per-cycle ticked loop, once under the event-driven fast-forward
//! scheduler — and must agree on:
//!
//! * **total cycles** (the clock delta to quiescence),
//! * **per-kernel stall attribution** (the full telemetry snapshot,
//!   including the exact-sum `dfe_kernel_cycles_total` state buckets),
//! * **memory end-state** (every PolyMem cell, and every element that
//!   reached the terminal stream).
//!
//! The vendored `proptest` stub is deterministic per test name, so failures
//! reproduce without a regressions file.

use dfe_sim::components::{Batcher, Generator, Unbatcher};
use dfe_sim::kernel::Kernel;
use dfe_sim::manager::Manager;
use dfe_sim::polymem_kernel::{PolyMemKernel, ReadResponse, WriteRequest};
use dfe_sim::sched::{self, SchedulerMode, SchedulerStats};
use dfe_sim::stream::{stream, StreamRef};
use dfe_sim::SimClock;
use polymem::telemetry::TelemetrySnapshot;
use polymem::{AccessScheme, ParallelAccess, PolyMemConfig, TelemetryRegistry};
use proptest::prelude::*;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Scenario A: component chains under a Manager.
// ---------------------------------------------------------------------------

/// Generator → Batcher(n) → Unbatcher → terminal stream, run to idle under
/// `mode`. Returns (cycles, terminal contents, scheduler stats).
fn run_chain(
    mode: SchedulerMode,
    len: usize,
    cap_elems: usize,
    cap_bursts: usize,
    batch: usize,
) -> (u64, Vec<u64>, SchedulerStats) {
    let data: Vec<u64> = (0..len as u64)
        .map(|x| x.wrapping_mul(2654435761))
        .collect();
    let s_gen = stream("gen-out", cap_elems);
    let s_burst = stream("bursts", cap_bursts);
    let s_out: StreamRef<u64> = stream("terminal", len.max(1));
    let mut mgr = Manager::with_mode(120.0, mode);
    mgr.add_kernel(Box::new(Generator::new("gen", data, Rc::clone(&s_gen))));
    mgr.add_kernel(Box::new(Batcher::new(
        "frame",
        s_gen,
        Rc::clone(&s_burst),
        batch,
    )));
    mgr.add_kernel(Box::new(Unbatcher::new(
        "deframe",
        s_burst,
        Rc::clone(&s_out),
    )));
    let cycles = mgr.run_until_idle(50_000);
    let mut out = Vec::with_capacity(len);
    while let Some(v) = s_out.borrow_mut().pop() {
        out.push(v);
    }
    (cycles, out, mgr.scheduler_stats())
}

// ---------------------------------------------------------------------------
// Scenario B: a paced writer + paced reader around a PolyMem kernel, driven
// directly through the shared engine so the test keeps ownership of the
// memory for end-state comparison.
// ---------------------------------------------------------------------------

/// Issues one row-write every `interval` cycles (a stand-in for any paced
/// source: PCIe chunks, DRAM bursts).
struct PacedWriter {
    rows: usize,
    lanes: usize,
    interval: u64,
    next_row: usize,
    last_issue: Option<u64>,
    write_req: StreamRef<WriteRequest>,
}

impl Kernel for PacedWriter {
    fn name(&self) -> &str {
        "paced-writer"
    }

    fn tick(&mut self, cycle: u64) {
        if self.next_row >= self.rows {
            return;
        }
        if let Some(last) = self.last_issue {
            if cycle < last + self.interval {
                return;
            }
        }
        if !self.write_req.borrow().can_push() {
            return;
        }
        let r = self.next_row;
        let words: Vec<u64> = (0..self.lanes as u64)
            .map(|k| (r as u64) << 32 | (k + 1))
            .collect();
        self.write_req
            .borrow_mut()
            .push((ParallelAccess::row(r, 0), words));
        self.last_issue = Some(cycle);
        self.next_row += 1;
    }

    fn is_idle(&self) -> bool {
        self.next_row >= self.rows
    }

    fn next_event(&self) -> Option<u64> {
        if self.next_row >= self.rows {
            return None;
        }
        match self.last_issue {
            Some(last) => Some(last + self.interval),
            None => Some(0),
        }
    }
}

/// Issues one row-read every `interval` cycles and collects responses.
struct PacedReader {
    rows: usize,
    interval: u64,
    issued: usize,
    last_issue: Option<u64>,
    read_req: StreamRef<ParallelAccess>,
    read_resp: StreamRef<ReadResponse>,
    collected: Vec<u64>,
    expect: usize,
}

impl Kernel for PacedReader {
    fn name(&self) -> &str {
        "paced-reader"
    }

    fn tick(&mut self, cycle: u64) {
        let pacing_ok = match self.last_issue {
            Some(last) => cycle >= last + self.interval,
            None => true,
        };
        if self.issued < self.rows && pacing_ok && self.read_req.borrow().can_push() {
            self.read_req
                .borrow_mut()
                .push(ParallelAccess::row(self.issued, 0));
            self.last_issue = Some(cycle);
            self.issued += 1;
        }
        if let Some(chunk) = self.read_resp.borrow_mut().pop() {
            self.collected.extend_from_slice(&chunk);
        }
    }

    fn is_idle(&self) -> bool {
        self.collected.len() >= self.expect
    }

    fn next_event(&self) -> Option<u64> {
        if !self.read_resp.borrow().is_empty() {
            return Some(0);
        }
        if self.issued < self.rows {
            return match self.last_issue {
                Some(last) => Some(last + self.interval),
                None => Some(0),
            };
        }
        None
    }
}

struct PolyMemOutcome {
    cycles: u64,
    mem: Vec<u64>,
    read_back: Vec<u64>,
    telemetry: TelemetrySnapshot,
    stats: SchedulerStats,
}

fn run_polymem(
    mode: SchedulerMode,
    latency: u64,
    write_interval: u64,
    read_interval: u64,
    wcap: usize,
    rcap: usize,
) -> PolyMemOutcome {
    let cfg = PolyMemConfig::new(8, 8, 2, 4, AccessScheme::RoCo, 1).unwrap();
    let lanes = cfg.lanes();
    let rq = vec![stream("rq", rcap)];
    let rs: Vec<StreamRef<ReadResponse>> = vec![stream("rs", latency as usize + 4)];
    let wq = stream("wq", wcap);
    let mut pm =
        PolyMemKernel::new("pm", cfg, latency, rq.clone(), rs.clone(), Rc::clone(&wq)).unwrap();
    let registry = TelemetryRegistry::new();
    pm.attach_telemetry(&registry);
    let mut writer = PacedWriter {
        rows: 8,
        lanes,
        interval: write_interval,
        next_row: 0,
        last_issue: None,
        write_req: wq,
    };
    let mut reader = PacedReader {
        rows: 8,
        interval: read_interval,
        issued: 0,
        last_issue: None,
        read_req: Rc::clone(&rq[0]),
        read_resp: Rc::clone(&rs[0]),
        collected: Vec::new(),
        expect: 8 * lanes,
    };
    let mut clock = SimClock::new(120.0);
    let mut stats = SchedulerStats::default();
    let bound = 100_000u64;
    while !(writer.is_idle() && reader.is_idle() && pm.is_idle()) {
        match mode {
            SchedulerMode::Ticked => {
                let c = clock.cycle();
                writer.tick(c);
                reader.tick(c);
                pm.tick(c);
                clock.tick();
            }
            SchedulerMode::EventDriven => {
                let mut kernels: [&mut dyn Kernel; 3] = [&mut writer, &mut reader, &mut pm];
                sched::advance(&mut clock, &mut kernels, bound, &mut stats);
            }
        }
        assert!(clock.cycle() < bound, "scenario wedged ({mode:?})");
    }
    assert!(pm.errors().is_empty(), "memory errors: {:?}", pm.errors());
    let mut mem = Vec::with_capacity(64);
    for i in 0..8 {
        for j in 0..8 {
            mem.push(pm.mem().get(i, j).unwrap());
        }
    }
    PolyMemOutcome {
        cycles: clock.cycle(),
        mem,
        read_back: reader.collected,
        telemetry: registry.snapshot(),
        stats,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chain_parity(
        groups in 1..12usize,
        batch in 1..5usize,
        cap_elems in 1..6usize,
        cap_bursts in 1..4usize,
    ) {
        // Whole batches only: a trailing partial batch never drains, which
        // both loops handle identically but slowly (budget burn).
        let len = groups * batch;
        let (tc, tout, tstats) = run_chain(SchedulerMode::Ticked, len, cap_elems, cap_bursts, batch);
        let (ec, eout, estats) = run_chain(SchedulerMode::EventDriven, len, cap_elems, cap_bursts, batch);
        prop_assert_eq!(tc, ec, "total cycles");
        prop_assert_eq!(tout, eout, "terminal stream contents");
        prop_assert_eq!(tstats, SchedulerStats::default(), "ticked mode bypasses the engine");
        prop_assert_eq!(estats.total_cycles(), ec, "engine accounts every cycle");
    }

    #[test]
    fn polymem_parity(
        latency in 1..=20u64,
        write_interval in 1..=12u64,
        read_interval in 1..=12u64,
        wcap in 1..6usize,
        rcap in 1..6usize,
    ) {
        let t = run_polymem(SchedulerMode::Ticked, latency, write_interval, read_interval, wcap, rcap);
        let e = run_polymem(SchedulerMode::EventDriven, latency, write_interval, read_interval, wcap, rcap);
        prop_assert_eq!(t.cycles, e.cycles, "total cycles");
        prop_assert_eq!(t.mem, e.mem, "PolyMem end-state");
        prop_assert_eq!(t.read_back, e.read_back, "read-port data (read-old order)");
        // The oracle: identical snapshots means identical per-kernel stall
        // attribution, datapath counters, bank utilization — everything.
        prop_assert_eq!(&t.telemetry, &e.telemetry, "telemetry snapshots");
        prop_assert_eq!(e.stats.total_cycles(), e.cycles, "engine accounts every cycle");
        // Pacing gaps and pipeline fills are real quiescent spans: on any
        // sparse parameterization the event scheduler must actually skip.
        if write_interval >= 4 && read_interval >= 4 {
            prop_assert!(e.stats.skipped_cycles > 0, "sparse run should fast-forward");
        }
    }
}
