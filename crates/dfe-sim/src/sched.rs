//! The event-driven scheduling engine: O(1) idle fast-forward.
//!
//! The ticked loop pays one host iteration per simulated cycle per kernel,
//! so sparse workloads (PCIe-paced loads, long pipeline latencies, burst
//! access windows) are host-bound on cycles where *nothing happens*. This
//! module replaces that loop with an event-queue scheduler built on the
//! [`Kernel::next_event`] contract:
//!
//! 1. Poll every kernel for its next-interesting cycle.
//! 2. If any kernel can act **now**, tick all kernels this cycle in
//!    registration order — exactly the ticked loop's semantics. Per-cycle
//!    ticking whenever anyone is active keeps cross-kernel FIFO
//!    interactions bit-identical.
//! 3. Otherwise, if some kernel self-scheduled a future wake, jump the
//!    [`SimClock`] straight to the earliest wake: each kernel's
//!    [`Kernel::skip_to`] bulk-accounts the skipped span (stall
//!    attribution, pacing flags), then the clock advances in one step.
//! 4. If no kernel can ever act again (all report `None` yet some still
//!    hold work), the design is stuck: the scheduler records the stall
//!    cycle and burns the remaining budget in one jump — the same cycle
//!    count the ticked loop would have reached at its bound.
//!
//! The correctness oracle is the telemetry layer's exact-sum
//! stall-attribution invariant: every simulated cycle lands in exactly one
//! of active/contention/pipeline/pcie/idle, whether it was ticked or
//! fast-forwarded. `tests/parity.rs` drives random kernel graphs through
//! both schedulers and asserts identical cycle counts, attribution buckets,
//! and memory end-state.

use crate::clock::SimClock;
use crate::kernel::Kernel;
use std::borrow::BorrowMut;

/// Which driving loop a [`crate::Manager`] (or `StreamApp`) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// Legacy loop: tick every kernel every cycle.
    Ticked,
    /// Event-queue loop: tick only active cycles, fast-forward idle spans.
    #[default]
    EventDriven,
}

/// Host-side accounting of what the event-driven loop actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Cycles executed by ticking every kernel.
    pub ticked_cycles: u64,
    /// Fast-forward jumps taken.
    pub jumps: u64,
    /// Cycles covered by jumps instead of ticks.
    pub skipped_cycles: u64,
}

impl SchedulerStats {
    /// Total simulated cycles this scheduler advanced.
    pub fn total_cycles(&self) -> u64 {
        self.ticked_cycles + self.skipped_cycles
    }

    /// Fold another scheduler's counters into this one. Sweeps that run many
    /// independent simulations use this to report aggregate tick/jump
    /// behaviour across the whole campaign.
    pub fn merge(&mut self, other: &SchedulerStats) {
        self.ticked_cycles += other.ticked_cycles;
        self.jumps += other.jumps;
        self.skipped_cycles += other.skipped_cycles;
    }
}

/// What one scheduler step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// All kernels ticked one cycle (someone could act).
    Ticked,
    /// Fast-forwarded this many cycles to the earliest self-scheduled wake.
    Jumped(u64),
    /// No kernel can ever act again; the remaining budget (this many
    /// cycles) was skipped in one jump. The design stalled at the cycle the
    /// clock held *before* this step.
    Stuck(u64),
}

/// Advance the design by at least one cycle, never past `bound` (an
/// absolute cycle number, `bound > clock.cycle()`). Works over anything
/// that dereferences to a kernel so [`crate::Manager`] (boxed kernels) and
/// `StreamApp` (borrowed concrete kernels) share one engine.
pub fn advance<'k, K>(
    clock: &mut SimClock,
    kernels: &mut [K],
    bound: u64,
    stats: &mut SchedulerStats,
) -> Step
where
    K: BorrowMut<dyn Kernel + 'k>,
{
    let now = clock.cycle();
    debug_assert!(bound > now, "scheduler advanced past its bound");
    let mut wake: Option<u64> = None;
    let mut active = false;
    for k in kernels.iter() {
        match k.borrow().next_event() {
            Some(c) if c <= now => {
                active = true;
                break;
            }
            Some(c) => wake = Some(wake.map_or(c, |w: u64| w.min(c))),
            None => {}
        }
    }
    if active {
        for k in kernels.iter_mut() {
            k.borrow_mut().tick(now);
        }
        clock.tick();
        stats.ticked_cycles += 1;
        return Step::Ticked;
    }
    let (target, stuck) = match wake {
        Some(w) => (w.min(bound), false),
        None => (bound, true),
    };
    for k in kernels.iter_mut() {
        k.borrow_mut().skip_to(now, target);
    }
    clock.advance(target - now);
    stats.jumps += 1;
    stats.skipped_cycles += target - now;
    if stuck {
        Step::Stuck(target - now)
    } else {
        Step::Jumped(target - now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A kernel that acts only on multiples of `period`, recording every
    /// tick and every skipped span it observes.
    struct Periodic {
        period: u64,
        until: u64,
        ticks: Vec<u64>,
        accounted: u64,
    }

    impl Kernel for Periodic {
        fn name(&self) -> &str {
            "periodic"
        }

        fn tick(&mut self, cycle: u64) {
            self.accounted += 1;
            if cycle.is_multiple_of(self.period) && cycle < self.until {
                self.ticks.push(cycle);
            }
        }

        fn is_idle(&self) -> bool {
            false
        }

        fn next_event(&self) -> Option<u64> {
            None // wake computed from the last tick is not modelled; rely on skip_to accounting
        }

        fn skip_to(&mut self, from: u64, to: u64) {
            self.accounted += to - from;
        }
    }

    #[test]
    fn active_kernel_forces_per_cycle_ticks() {
        struct Always(u64);
        impl Kernel for Always {
            fn name(&self) -> &str {
                "always"
            }
            fn tick(&mut self, _c: u64) {
                self.0 += 1;
            }
        }
        let mut clock = SimClock::new(100.0);
        let mut kernels: Vec<Box<dyn Kernel>> = vec![Box::new(Always(0))];
        let mut stats = SchedulerStats::default();
        for _ in 0..5 {
            let step = advance(&mut clock, &mut kernels, 100, &mut stats);
            assert_eq!(step, Step::Ticked);
        }
        assert_eq!(clock.cycle(), 5);
        assert_eq!(stats.ticked_cycles, 5);
        assert_eq!(stats.jumps, 0);
    }

    #[test]
    fn future_wake_jumps_in_one_step() {
        struct WakesAt(u64);
        impl Kernel for WakesAt {
            fn name(&self) -> &str {
                "wakes-at"
            }
            fn tick(&mut self, _c: u64) {}
            fn next_event(&self) -> Option<u64> {
                Some(self.0)
            }
        }
        let mut clock = SimClock::new(100.0);
        let mut kernels: Vec<Box<dyn Kernel>> = vec![Box::new(WakesAt(40)), Box::new(WakesAt(70))];
        let mut stats = SchedulerStats::default();
        let step = advance(&mut clock, &mut kernels, 1000, &mut stats);
        assert_eq!(step, Step::Jumped(40), "jumps to the earliest wake");
        assert_eq!(clock.cycle(), 40);
        assert_eq!(stats.skipped_cycles, 40);
        assert_eq!(stats.jumps, 1);
    }

    #[test]
    fn jump_respects_bound() {
        struct WakesAt(u64);
        impl Kernel for WakesAt {
            fn name(&self) -> &str {
                "wakes-at"
            }
            fn tick(&mut self, _c: u64) {}
            fn next_event(&self) -> Option<u64> {
                Some(self.0)
            }
        }
        let mut clock = SimClock::new(100.0);
        let mut kernels: Vec<Box<dyn Kernel>> = vec![Box::new(WakesAt(500))];
        let mut stats = SchedulerStats::default();
        let step = advance(&mut clock, &mut kernels, 100, &mut stats);
        assert_eq!(step, Step::Jumped(100));
        assert_eq!(clock.cycle(), 100);
    }

    #[test]
    fn stuck_design_skips_to_bound_and_accounts_span() {
        let mut clock = SimClock::new(100.0);
        let mut kernels: Vec<Box<dyn Kernel>> = vec![Box::new(Periodic {
            period: 1,
            until: 0,
            ticks: Vec::new(),
            accounted: 0,
        })];
        let mut stats = SchedulerStats::default();
        let step = advance(&mut clock, &mut kernels, 64, &mut stats);
        assert_eq!(step, Step::Stuck(64));
        assert_eq!(clock.cycle(), 64);
        assert_eq!(stats.total_cycles(), 64);
    }

    #[test]
    fn stats_sum_ticked_plus_skipped() {
        let s = SchedulerStats {
            ticked_cycles: 3,
            jumps: 2,
            skipped_cycles: 97,
        };
        assert_eq!(s.total_cycles(), 100);
    }
}
