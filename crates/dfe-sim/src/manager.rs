//! The manager: owns the kernel graph and drives the clock.
//!
//! Maxeler's *manager* wires kernels and streams together and presents the
//! design to the host. Ours ticks every kernel once per cycle, in
//! registration order (a deterministic static schedule: producers should be
//! registered before consumers so data can traverse one hop per cycle) —
//! but only on cycles where some kernel can act. Quiescent spans are
//! fast-forwarded in O(1) by the event-driven engine in [`crate::sched`];
//! [`SchedulerMode::Ticked`] keeps the legacy cycle-by-cycle loop for
//! parity testing and host-time baselines.

use crate::clock::SimClock;
use crate::kernel::Kernel;
use crate::sched::{self, SchedulerMode, SchedulerStats, Step};
use crate::trace::Tracer;
use polymem::tracing::{NameId, TraceJournal, TraceWriter};

/// Outcome of [`Manager::diagnose_stall`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallReport {
    /// First cycle at which progress stopped — no kernel could ever act
    /// again without external input — when the event-driven scheduler
    /// observed it. `None` for healthy designs and for runs under
    /// [`SchedulerMode::Ticked`] (the legacy loop cannot tell a stalled
    /// cycle from a slow one).
    pub stalled_at: Option<u64>,
    /// Stuck kernels, as `name` or `name: reason`
    /// (see [`Kernel::busy_reason`]).
    pub kernels: Vec<String>,
}

impl StallReport {
    /// Whether the design quiesced cleanly (nothing stuck).
    pub fn is_healthy(&self) -> bool {
        self.kernels.is_empty()
    }
}

/// A simulated DFE design: a clock plus a set of kernels.
pub struct Manager {
    clock: SimClock,
    kernels: Vec<Box<dyn Kernel>>,
    mode: SchedulerMode,
    stats: SchedulerStats,
    /// First cycle of the most recent run at which no kernel could act
    /// (see [`StallReport::stalled_at`]).
    stalled_at: Option<u64>,
    /// Clock value when the last run loop returned; lets
    /// [`Manager::diagnose_stall`] reuse a finished run instead of
    /// re-driving the design.
    last_run_end: Option<u64>,
    tracer: Option<Tracer>,
    trc: Option<SchedTracing>,
}

/// Span-journal bridge for the scheduler (see [`Manager::attach_journal`]):
/// keeps the journal's logical clock in step with the simulation clock and
/// renders every event-driven fast-forward as one collapsed span on the
/// `sched` track.
struct SchedTracing {
    journal: TraceJournal,
    writer: TraceWriter,
    fast_forward: NameId,
}

impl Manager {
    /// Create a manager with a clock at `freq_mhz` (event-driven scheduling).
    pub fn new(freq_mhz: f64) -> Self {
        Self::with_mode(freq_mhz, SchedulerMode::EventDriven)
    }

    /// Create a manager pinned to a specific scheduler mode.
    pub fn with_mode(freq_mhz: f64, mode: SchedulerMode) -> Self {
        Self {
            clock: SimClock::new(freq_mhz),
            kernels: Vec::new(),
            mode,
            stats: SchedulerStats::default(),
            stalled_at: None,
            last_run_end: None,
            tracer: None,
            trc: None,
        }
    }

    /// Register a kernel. Order matters: kernels tick in registration order,
    /// so register upstream producers first.
    pub fn add_kernel(&mut self, kernel: Box<dyn Kernel>) {
        self.kernels.push(kernel);
    }

    /// The simulation clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The active scheduler mode.
    pub fn mode(&self) -> SchedulerMode {
        self.mode
    }

    /// Switch scheduler mode (takes effect on the next run call).
    pub fn set_mode(&mut self, mode: SchedulerMode) {
        self.mode = mode;
    }

    /// What the event-driven engine did so far (ticks vs. jumps).
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Record fast-forward jumps into `tracer` (as `sched` events).
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Drive `journal`'s logical clock from the simulation clock and record
    /// every event-driven fast-forward as a `fast-forward` span on the
    /// `sched` track — a skipped quiescent span appears in Perfetto as one
    /// collapsed box covering exactly the cycles the scheduler never
    /// ticked. Kernel-level instrumentation (e.g.
    /// [`crate::polymem_kernel::PolyMemKernel::attach_tracing`]) is
    /// attached per kernel, before registration.
    pub fn attach_journal(&mut self, journal: &TraceJournal) {
        journal.set_cycle(self.clock.cycle());
        self.trc = Some(SchedTracing {
            journal: journal.clone(),
            writer: journal.writer("sched"),
            fast_forward: journal.intern("fast-forward"),
        });
    }

    /// Names of registered kernels, in tick order.
    pub fn kernel_names(&self) -> Vec<&str> {
        self.kernels.iter().map(|k| k.name()).collect()
    }

    fn all_idle(&self) -> bool {
        self.kernels.iter().all(|k| k.is_idle())
    }

    /// One ticked-loop cycle: tick every kernel, advance the clock.
    fn step_ticked(&mut self) {
        let c = self.clock.cycle();
        if let Some(tr) = &self.trc {
            tr.journal.set_cycle(c);
        }
        for k in &mut self.kernels {
            k.tick(c);
        }
        self.clock.tick();
    }

    /// One event-driven step: tick if anyone can act, else fast-forward.
    fn step_event(&mut self, bound: u64) {
        let before = self.clock.cycle();
        if let Some(tr) = &self.trc {
            tr.journal.set_cycle(before);
        }
        let step = sched::advance(&mut self.clock, &mut self.kernels, bound, &mut self.stats);
        match step {
            Step::Ticked => {}
            Step::Jumped(span) | Step::Stuck(span) => {
                if let Some(t) = &self.tracer {
                    t.record_jump(before, before + span, "sched");
                }
                if let Some(tr) = &self.trc {
                    tr.writer.span_at(before, before + span, tr.fast_forward);
                    tr.journal.set_cycle(before + span);
                }
                if matches!(step, Step::Stuck(_)) && self.stalled_at.is_none() && !self.all_idle() {
                    self.stalled_at = Some(before);
                }
            }
        }
    }

    /// Drive the design until `clock.cycle() == bound` or `done` reports
    /// completion (checked before every step, like the ticked loop checked
    /// it before every cycle — during a quiescent span no simulator state
    /// changes, so a predicate over simulator state cannot fire mid-span).
    fn run_loop(&mut self, bound: u64, mut done: impl FnMut(&Self) -> bool) {
        self.stalled_at = None;
        while self.clock.cycle() < bound && !done(self) {
            match self.mode {
                SchedulerMode::Ticked => self.step_ticked(),
                SchedulerMode::EventDriven => self.step_event(bound),
            }
        }
        self.last_run_end = Some(self.clock.cycle());
    }

    /// Run exactly `n` cycles.
    pub fn run_cycles(&mut self, n: u64) {
        let bound = self.clock.cycle() + n;
        self.run_loop(bound, |_| false);
    }

    /// Run until every kernel reports idle, or `max_cycles` elapse.
    /// Returns the number of cycles executed.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> u64 {
        let start = self.clock.cycle();
        self.run_loop(start + max_cycles, |m| m.all_idle());
        self.clock.cycle() - start
    }

    /// Diagnose a wedged design: report which kernels still claim
    /// outstanding work once no kernel makes progress, and — under the
    /// event-driven scheduler — the exact cycle at which progress stopped.
    /// When the design was already driven to quiescence (or to its stall
    /// point) by a previous run call, the finished run is diagnosed as-is
    /// instead of re-running the design; otherwise this runs
    /// [`Manager::run_until_idle`] with `max_cycles` first. This is the
    /// hand-rolled version of the debugging the paper did on its hanging
    /// simulations.
    pub fn diagnose_stall(&mut self, max_cycles: u64) -> StallReport {
        if self.last_run_end != Some(self.clock.cycle()) {
            self.run_until_idle(max_cycles);
        }
        StallReport {
            stalled_at: self.stalled_at,
            kernels: self
                .kernels
                .iter()
                .filter(|k| !k.is_idle())
                .map(|k| match k.busy_reason() {
                    Some(reason) => format!("{}: {reason}", k.name()),
                    None => k.name().to_string(),
                })
                .collect(),
        }
    }

    /// Run until `done()` returns true, or `max_cycles` elapse. Returns the
    /// cycles executed and whether the predicate fired. The predicate must
    /// be a function of simulator state (streams, kernel flags): it is
    /// evaluated before every scheduler step, and a fast-forwarded span —
    /// during which no state changes — is never split on its account.
    pub fn run_until<F: FnMut() -> bool>(&mut self, max_cycles: u64, mut done: F) -> (u64, bool) {
        let start = self.clock.cycle();
        let mut fired = false;
        self.run_loop(start + max_cycles, |_| {
            fired = done();
            fired
        });
        (self.clock.cycle() - start, fired || done())
    }
}

impl std::fmt::Debug for Manager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Manager")
            .field("clock", &self.clock)
            .field("mode", &self.mode)
            .field("kernels", &self.kernel_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::FnKernel;
    use crate::stream::stream;
    use std::rc::Rc;

    #[test]
    fn runs_exact_cycles() {
        let mut m = Manager::new(100.0);
        let s = stream::<u64>("out", 1024);
        let sp = Rc::clone(&s);
        m.add_kernel(Box::new(FnKernel::new("gen", move |c| {
            sp.borrow_mut().push(c);
        })));
        m.run_cycles(10);
        assert_eq!(m.clock().cycle(), 10);
        assert_eq!(s.borrow().len(), 10);
    }

    #[test]
    fn pipeline_one_hop_per_cycle() {
        // producer -> doubler -> sink; values arrive at the sink 2 cycles
        // after production.
        let mut m = Manager::new(100.0);
        let a = stream::<u64>("a", 64);
        let b = stream::<u64>("b", 64);
        let sink = stream::<u64>("sink", 1024);

        let ap = Rc::clone(&a);
        m.add_kernel(Box::new(FnKernel::new("gen", move |c| {
            if c < 5 {
                ap.borrow_mut().push(c);
            }
        })));
        let (ac, bp) = (Rc::clone(&a), Rc::clone(&b));
        m.add_kernel(Box::new(FnKernel::new("double", move |_| {
            if bp.borrow().can_push() {
                if let Some(v) = ac.borrow_mut().pop() {
                    bp.borrow_mut().push(v * 2);
                }
            }
        })));
        let (bc, sp) = (Rc::clone(&b), Rc::clone(&sink));
        m.add_kernel(Box::new(FnKernel::new("sink", move |_| {
            if let Some(v) = bc.borrow_mut().pop() {
                sp.borrow_mut().push(v);
            }
        })));

        m.run_cycles(20);
        let got: Vec<u64> = std::iter::from_fn(|| sink.borrow_mut().pop()).collect();
        assert_eq!(got, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn run_until_predicate() {
        let mut m = Manager::new(100.0);
        let s = stream::<u64>("s", 1024);
        let sp = Rc::clone(&s);
        m.add_kernel(Box::new(FnKernel::new("gen", move |c| {
            sp.borrow_mut().push(c);
        })));
        let sc = Rc::clone(&s);
        let (cycles, fired) = m.run_until(1000, || sc.borrow().len() >= 42);
        assert!(fired);
        assert_eq!(cycles, 42);
    }

    #[test]
    fn run_until_bounded() {
        let mut m = Manager::new(100.0);
        let (cycles, fired) = m.run_until(50, || false);
        assert_eq!(cycles, 50);
        assert!(!fired);
    }

    #[test]
    fn diagnose_stall_names_stuck_kernels_and_cycle() {
        // A generator feeding a capacity-1 FIFO that nobody drains wedges
        // with data outstanding; the diagnosis must name it and pinpoint
        // the cycle progress stopped (cycle 1: one push landed at cycle 0,
        // the FIFO has been full ever since).
        let mut m = Manager::new(100.0);
        let s = stream::<u64>("clogged", 1);
        let gen = crate::components::Generator::new("producer", vec![1, 2, 3], Rc::clone(&s));
        m.add_kernel(Box::new(gen));
        let report = m.diagnose_stall(50);
        assert_eq!(report.kernels, vec!["producer".to_string()]);
        assert_eq!(report.stalled_at, Some(1));
        assert!(!report.is_healthy());
        // A healthy design reports nothing.
        let mut ok = Manager::new(100.0);
        let s2 = stream::<u64>("open", 64);
        ok.add_kernel(Box::new(crate::components::Generator::new(
            "producer2",
            vec![1, 2, 3],
            s2,
        )));
        let healthy = ok.diagnose_stall(50);
        assert!(healthy.is_healthy());
        assert_eq!(healthy.stalled_at, None);
    }

    #[test]
    fn diagnose_after_run_does_not_rerun() {
        let mut m = Manager::new(100.0);
        let s = stream::<u64>("clogged", 1);
        let gen = crate::components::Generator::new("producer", vec![1, 2, 3], Rc::clone(&s));
        m.add_kernel(Box::new(gen));
        let ran = m.run_until_idle(50);
        assert_eq!(ran, 50, "wedged design burns the whole budget");
        let end = m.clock().cycle();
        let report = m.diagnose_stall(50);
        assert_eq!(
            m.clock().cycle(),
            end,
            "diagnosing a finished run must not drive the design again"
        );
        assert_eq!(report.kernels, vec!["producer".to_string()]);
        assert_eq!(report.stalled_at, Some(1));
    }

    #[test]
    fn event_mode_skips_idle_spans_with_identical_cycle_counts() {
        // The same wedged design under both schedulers: identical simulated
        // cycles, but the event-driven run does O(1) work for the stalled
        // span.
        let run = |mode: SchedulerMode| {
            let mut m = Manager::with_mode(100.0, mode);
            let s = stream::<u64>("clogged", 1);
            m.add_kernel(Box::new(crate::components::Generator::new(
                "producer",
                vec![1, 2, 3],
                Rc::clone(&s),
            )));
            let ran = m.run_until_idle(10_000);
            (ran, m.clock().cycle(), m.scheduler_stats())
        };
        let (ran_t, end_t, _) = run(SchedulerMode::Ticked);
        let (ran_e, end_e, stats) = run(SchedulerMode::EventDriven);
        assert_eq!(ran_t, ran_e);
        assert_eq!(end_t, end_e);
        assert!(
            stats.ticked_cycles < 5,
            "stalled span must be jumped, not ticked (ticked {})",
            stats.ticked_cycles
        );
        assert!(stats.skipped_cycles > 9_000);
    }

    #[test]
    fn tracer_records_fast_forward_jumps() {
        let mut m = Manager::new(100.0);
        let tracer = Tracer::new(64);
        m.attach_tracer(tracer.clone());
        let s = stream::<u64>("clogged", 1);
        m.add_kernel(Box::new(crate::components::Generator::new(
            "producer",
            vec![1, 2],
            Rc::clone(&s),
        )));
        m.run_until_idle(100);
        let events = tracer.events();
        assert!(
            events
                .iter()
                .any(|e| e.source == "sched" && e.event.contains("fast-forward")),
            "expected a fast-forward trace event, got {events:?}"
        );
    }

    #[test]
    #[cfg(not(feature = "tracing-off"))]
    fn journal_records_fast_forwards_as_collapsed_spans() {
        use polymem::tracing::TraceJournal;
        let mut m = Manager::new(100.0);
        let journal = TraceJournal::new(256);
        m.attach_journal(&journal);
        let s = stream::<u64>("clogged", 1);
        m.add_kernel(Box::new(crate::components::Generator::new(
            "producer",
            vec![1, 2],
            Rc::clone(&s),
        )));
        m.run_until_idle(100);
        assert_eq!(journal.cycle(), m.clock().cycle(), "clock stays in step");
        let snap = journal.snapshot();
        assert_eq!(snap.validate_spans(), Vec::<String>::new());
        let spans = snap.spans();
        let ff: Vec<_> = spans
            .iter()
            .filter(|sp| sp.track == "sched" && sp.name == "fast-forward")
            .collect();
        assert!(!ff.is_empty(), "wedged span must be fast-forwarded");
        // The skipped cycles are exactly the span-covered cycles.
        let skipped: u64 = ff.iter().map(|sp| sp.cycles()).sum();
        assert_eq!(skipped, m.scheduler_stats().skipped_cycles);
    }

    #[test]
    fn kernel_names_in_order() {
        let mut m = Manager::new(100.0);
        m.add_kernel(Box::new(FnKernel::new("a", |_| {})));
        m.add_kernel(Box::new(FnKernel::new("b", |_| {})));
        assert_eq!(m.kernel_names(), vec!["a", "b"]);
    }
}
