//! The manager: owns the kernel graph and drives the clock.
//!
//! Maxeler's *manager* wires kernels and streams together and presents the
//! design to the host. Ours ticks every kernel once per cycle, in
//! registration order (a deterministic static schedule: producers should be
//! registered before consumers so data can traverse one hop per cycle).

use crate::clock::SimClock;
use crate::kernel::Kernel;

/// A simulated DFE design: a clock plus a set of kernels.
pub struct Manager {
    clock: SimClock,
    kernels: Vec<Box<dyn Kernel>>,
}

impl Manager {
    /// Create a manager with a clock at `freq_mhz`.
    pub fn new(freq_mhz: f64) -> Self {
        Self {
            clock: SimClock::new(freq_mhz),
            kernels: Vec::new(),
        }
    }

    /// Register a kernel. Order matters: kernels tick in registration order,
    /// so register upstream producers first.
    pub fn add_kernel(&mut self, kernel: Box<dyn Kernel>) {
        self.kernels.push(kernel);
    }

    /// The simulation clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Names of registered kernels, in tick order.
    pub fn kernel_names(&self) -> Vec<&str> {
        self.kernels.iter().map(|k| k.name()).collect()
    }

    /// Run exactly `n` cycles.
    pub fn run_cycles(&mut self, n: u64) {
        for _ in 0..n {
            let c = self.clock.cycle();
            for k in &mut self.kernels {
                k.tick(c);
            }
            self.clock.tick();
        }
    }

    /// Run until every kernel reports idle, or `max_cycles` elapse.
    /// Returns the number of cycles executed.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> u64 {
        let start = self.clock.cycle();
        while self.clock.cycle() - start < max_cycles {
            if self.kernels.iter().all(|k| k.is_idle()) {
                break;
            }
            let c = self.clock.cycle();
            for k in &mut self.kernels {
                k.tick(c);
            }
            self.clock.tick();
        }
        self.clock.cycle() - start
    }

    /// Diagnose a wedged design: tick up to `max_cycles` and report which
    /// kernels still claim outstanding work once no kernel makes progress.
    /// "Progress" is approximated by idleness transitions; for a design that
    /// is genuinely deadlocked this names the stuck stages — the hand-rolled
    /// version of the debugging the paper did on its hanging simulations.
    /// A kernel that provides a [`Kernel::busy_reason`] is reported as
    /// `name: reason`.
    pub fn diagnose_stall(&mut self, max_cycles: u64) -> Vec<String> {
        self.run_until_idle(max_cycles);
        self.kernels
            .iter()
            .filter(|k| !k.is_idle())
            .map(|k| match k.busy_reason() {
                Some(reason) => format!("{}: {reason}", k.name()),
                None => k.name().to_string(),
            })
            .collect()
    }

    /// Run until `done()` returns true, or `max_cycles` elapse. Returns the
    /// cycles executed and whether the predicate fired.
    pub fn run_until<F: FnMut() -> bool>(&mut self, max_cycles: u64, mut done: F) -> (u64, bool) {
        let start = self.clock.cycle();
        while self.clock.cycle() - start < max_cycles {
            if done() {
                return (self.clock.cycle() - start, true);
            }
            let c = self.clock.cycle();
            for k in &mut self.kernels {
                k.tick(c);
            }
            self.clock.tick();
        }
        (self.clock.cycle() - start, done())
    }
}

impl std::fmt::Debug for Manager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Manager")
            .field("clock", &self.clock)
            .field("kernels", &self.kernel_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::FnKernel;
    use crate::stream::stream;
    use std::rc::Rc;

    #[test]
    fn runs_exact_cycles() {
        let mut m = Manager::new(100.0);
        let s = stream::<u64>("out", 1024);
        let sp = Rc::clone(&s);
        m.add_kernel(Box::new(FnKernel::new("gen", move |c| {
            sp.borrow_mut().push(c);
        })));
        m.run_cycles(10);
        assert_eq!(m.clock().cycle(), 10);
        assert_eq!(s.borrow().len(), 10);
    }

    #[test]
    fn pipeline_one_hop_per_cycle() {
        // producer -> doubler -> sink; values arrive at the sink 2 cycles
        // after production.
        let mut m = Manager::new(100.0);
        let a = stream::<u64>("a", 64);
        let b = stream::<u64>("b", 64);
        let sink = stream::<u64>("sink", 1024);

        let ap = Rc::clone(&a);
        m.add_kernel(Box::new(FnKernel::new("gen", move |c| {
            if c < 5 {
                ap.borrow_mut().push(c);
            }
        })));
        let (ac, bp) = (Rc::clone(&a), Rc::clone(&b));
        m.add_kernel(Box::new(FnKernel::new("double", move |_| {
            if bp.borrow().can_push() {
                if let Some(v) = ac.borrow_mut().pop() {
                    bp.borrow_mut().push(v * 2);
                }
            }
        })));
        let (bc, sp) = (Rc::clone(&b), Rc::clone(&sink));
        m.add_kernel(Box::new(FnKernel::new("sink", move |_| {
            if let Some(v) = bc.borrow_mut().pop() {
                sp.borrow_mut().push(v);
            }
        })));

        m.run_cycles(20);
        let got: Vec<u64> = std::iter::from_fn(|| sink.borrow_mut().pop()).collect();
        assert_eq!(got, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn run_until_predicate() {
        let mut m = Manager::new(100.0);
        let s = stream::<u64>("s", 1024);
        let sp = Rc::clone(&s);
        m.add_kernel(Box::new(FnKernel::new("gen", move |c| {
            sp.borrow_mut().push(c);
        })));
        let sc = Rc::clone(&s);
        let (cycles, fired) = m.run_until(1000, || sc.borrow().len() >= 42);
        assert!(fired);
        assert_eq!(cycles, 42);
    }

    #[test]
    fn run_until_bounded() {
        let mut m = Manager::new(100.0);
        let (cycles, fired) = m.run_until(50, || false);
        assert_eq!(cycles, 50);
        assert!(!fired);
    }

    #[test]
    fn diagnose_stall_names_stuck_kernels() {
        // A generator feeding a capacity-1 FIFO that nobody drains wedges
        // with data outstanding; the diagnosis must name it.
        let mut m = Manager::new(100.0);
        let s = stream::<u64>("clogged", 1);
        let gen = crate::components::Generator::new("producer", vec![1, 2, 3], Rc::clone(&s));
        m.add_kernel(Box::new(gen));
        let stuck = m.diagnose_stall(50);
        assert_eq!(stuck, vec!["producer".to_string()]);
        // A healthy design reports nothing.
        let mut ok = Manager::new(100.0);
        let s2 = stream::<u64>("open", 64);
        ok.add_kernel(Box::new(crate::components::Generator::new(
            "producer2",
            vec![1, 2, 3],
            s2,
        )));
        assert!(ok.diagnose_stall(50).is_empty());
    }

    #[test]
    fn kernel_names_in_order() {
        let mut m = Manager::new(100.0);
        m.add_kernel(Box::new(FnKernel::new("a", |_| {})));
        m.add_kernel(Box::new(FnKernel::new("b", |_| {})));
        assert_eq!(m.kernel_names(), vec!["a", "b"]);
    }
}
