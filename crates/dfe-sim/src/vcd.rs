//! VCD (Value Change Dump) export of simulation activity.
//!
//! Hardware engineers debug dataflow designs in a waveform viewer; this
//! module renders recorded per-cycle signal values into IEEE-1364 VCD text
//! that GTKWave & co. open directly — the missing visualisation the paper's
//! §III-C complains about ("the lack of a graphical representation of the
//! blocks in a design").

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A recorded multi-bit signal.
#[derive(Debug, Clone)]
struct Signal {
    id: String,
    width: u32,
    /// (cycle, value) change list, strictly increasing cycles.
    changes: Vec<(u64, u64)>,
}

/// Collects signal samples and renders a VCD document.
#[derive(Debug, Clone, Default)]
pub struct VcdRecorder {
    signals: BTreeMap<String, Signal>,
    max_cycle: u64,
}

impl VcdRecorder {
    /// New empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a signal (idempotent). `width` in bits, 1..=64.
    pub fn declare(&mut self, name: &str, width: u32) {
        assert!((1..=64).contains(&width), "signal width 1..=64");
        let next_id = idcode(self.signals.len());
        self.signals.entry(name.to_string()).or_insert(Signal {
            id: next_id,
            width,
            changes: Vec::new(),
        });
    }

    /// Sample `name` at `cycle`; only changes are stored. Signals must be
    /// declared first and cycles sampled in non-decreasing order.
    pub fn sample(&mut self, name: &str, cycle: u64, value: u64) {
        let sig = self
            .signals
            .get_mut(name)
            .unwrap_or_else(|| panic!("signal {name} not declared"));
        if let Some(&(last_c, last_v)) = sig.changes.last() {
            assert!(cycle >= last_c, "samples must be time-ordered");
            if last_v == value {
                return;
            }
        }
        sig.changes.push((cycle, value));
        self.max_cycle = self.max_cycle.max(cycle);
    }

    /// Render the VCD document. `timescale_ns` is the clock period.
    pub fn render(&self, module: &str, timescale_ns: f64) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$date polymem-dfe-sim $end");
        let _ = writeln!(out, "$timescale {}ns $end", timescale_ns.max(1.0) as u64);
        let _ = writeln!(out, "$scope module {module} $end");
        for (name, sig) in &self.signals {
            let _ = writeln!(out, "$var wire {} {} {} $end", sig.width, sig.id, name);
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");

        // Merge all changes into a time-ordered dump.
        let mut by_cycle: BTreeMap<u64, Vec<(&Signal, u64)>> = BTreeMap::new();
        for sig in self.signals.values() {
            for &(c, v) in &sig.changes {
                by_cycle.entry(c).or_default().push((sig, v));
            }
        }
        for (cycle, changes) in by_cycle {
            let _ = writeln!(out, "#{cycle}");
            for (sig, v) in changes {
                if sig.width == 1 {
                    let _ = writeln!(out, "{}{}", v & 1, sig.id);
                } else {
                    let _ = writeln!(out, "b{:b} {}", v, sig.id);
                }
            }
        }
        out
    }

    /// Sample a telemetry gauge (e.g. a FIFO-occupancy gauge) as a signal
    /// value, clamping negative readings to zero — waveform viewers show
    /// unsigned wires. Declare the signal first, as with [`Self::sample`].
    /// In a `telemetry-off` build the gauge always reads zero, so the
    /// waveform simply flatlines.
    pub fn sample_metric(&mut self, name: &str, cycle: u64, gauge: &polymem::telemetry::Gauge) {
        self.sample(name, cycle, gauge.get().max(0) as u64);
    }

    /// Number of declared signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Last sampled cycle.
    pub fn max_cycle(&self) -> u64 {
        self.max_cycle
    }
}

/// VCD identifier codes: printable ASCII 33..=126, base-94.
fn idcode(mut n: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (n % 94)) as u8 as char);
        n /= 94;
        if n == 0 {
            break;
        }
        n -= 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_changes() {
        let mut v = VcdRecorder::new();
        v.declare("write_enable", 1);
        v.declare("data", 64);
        v.sample("write_enable", 0, 0);
        v.sample("write_enable", 3, 1);
        v.sample("data", 3, 0xAB);
        let doc = v.render("polymem", 8.0);
        assert!(doc.contains("$timescale 8ns $end"));
        assert!(doc.contains("$var wire 1"));
        assert!(doc.contains("$var wire 64"));
        assert!(doc.contains("#3"));
        assert!(doc.contains("b10101011"));
    }

    #[test]
    fn deduplicates_unchanged_samples() {
        let mut v = VcdRecorder::new();
        v.declare("s", 1);
        v.sample("s", 0, 1);
        v.sample("s", 1, 1);
        v.sample("s", 2, 0);
        let doc = v.render("m", 10.0);
        assert!(doc.contains("#0"));
        assert!(!doc.contains("#1\n"), "unchanged sample must be dropped");
        assert!(doc.contains("#2"));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_time_travel() {
        let mut v = VcdRecorder::new();
        v.declare("s", 1);
        v.sample("s", 5, 1);
        v.sample("s", 3, 0);
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn rejects_undeclared() {
        let mut v = VcdRecorder::new();
        v.sample("ghost", 0, 1);
    }

    #[test]
    fn idcodes_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..500 {
            let id = idcode(n);
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn declare_idempotent() {
        let mut v = VcdRecorder::new();
        v.declare("s", 8);
        v.declare("s", 8);
        assert_eq!(v.signal_count(), 1);
    }

    #[test]
    fn sample_metric_tracks_a_gauge() {
        use polymem::telemetry::TelemetryRegistry;
        let reg = TelemetryRegistry::new();
        let occ = reg.gauge("fifo_occupancy", vec![("stream", "out".to_string())]);
        let mut v = VcdRecorder::new();
        v.declare("occupancy", 16);
        for c in 0..4u64 {
            occ.add(2);
            v.sample_metric("occupancy", c, &occ);
        }
        occ.add(-100); // clamped to zero in the waveform
        v.sample_metric("occupancy", 5, &occ);
        let doc = v.render("m", 8.0);
        assert!(doc.contains("b1000 "), "gauge value 8 sampled: {doc}");
        assert!(doc.contains("b0 "), "negative reading clamps to 0");
    }

    #[test]
    fn traces_a_real_pipeline() {
        // Record a delay line's occupancy as a waveform.
        let mut v = VcdRecorder::new();
        v.declare("in_flight", 8);
        let mut dl = crate::kernel::DelayLine::new(3);
        for c in 0..10u64 {
            if c < 4 {
                dl.push(c, c);
            }
            let _ = dl.pop_ready(c);
            v.sample("in_flight", c, dl.in_flight() as u64);
        }
        assert!(v.max_cycle() >= 6);
        let doc = v.render("pipe", 8.0);
        assert!(doc.lines().count() > 8);
    }
}
