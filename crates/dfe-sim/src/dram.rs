//! Off-chip DRAM (Maxeler "LMem") model.
//!
//! The Vectis board carries its own high-capacity DRAM (Fig. 1 of the
//! paper). Its defining properties relative to PolyMem are **high latency**
//! and **bounded bandwidth** — PolyMem exists precisely to cache
//! performance-critical data on-chip and avoid these costs. The model
//! provides cycle-accounted burst transfers so applications built on the
//! simulator can quantify the benefit of the on-chip cache.

use serde::{Deserialize, Serialize};

/// DRAM channel parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramParams {
    /// First-word latency in nanoseconds (row activate + CAS + controller).
    pub latency_ns: f64,
    /// Sustained bandwidth in bytes per nanosecond (= GB/s).
    pub bandwidth_gbps: f64,
    /// Burst granularity in bytes: transfers are rounded up to this.
    pub burst_bytes: usize,
    /// Capacity in bytes.
    pub capacity_bytes: usize,
}

impl DramParams {
    /// The Vectis LMem: ~24 GB of DDR3 at roughly 38 GB/s peak across
    /// channels, but with ~200 ns access latency — the contrast PolyMem
    /// exploits. Effective streaming bandwidth is lower; we use a
    /// conservative sustained figure.
    pub fn vectis_lmem() -> Self {
        Self {
            latency_ns: 200.0,
            bandwidth_gbps: 15.0,
            burst_bytes: 384, // Maxeler LMem burst size
            capacity_bytes: 24 * 1024 * 1024 * 1024,
        }
    }
}

/// A DRAM channel with activity accounting and a backing store.
#[derive(Debug, Clone)]
pub struct Dram {
    params: DramParams,
    /// Sparse backing store: burst-aligned pages, allocated on demand.
    data: std::collections::HashMap<usize, Vec<u64>>,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Total busy time in ns.
    pub busy_ns: f64,
}

const WORDS_PER_PAGE: usize = 512;

impl Dram {
    /// Create a DRAM channel.
    pub fn new(params: DramParams) -> Self {
        Self {
            params,
            data: std::collections::HashMap::new(),
            bytes_read: 0,
            bytes_written: 0,
            busy_ns: 0.0,
        }
    }

    /// Channel parameters.
    pub fn params(&self) -> &DramParams {
        &self.params
    }

    /// Time to move `bytes` in one streaming request: latency + rounded
    /// burst transfer time.
    pub fn access_time_ns(&self, bytes: usize) -> f64 {
        let bursts = bytes.div_ceil(self.params.burst_bytes);
        let moved = (bursts * self.params.burst_bytes) as f64;
        self.params.latency_ns + moved / self.params.bandwidth_gbps
    }

    /// Read `words.len()` 64-bit words starting at word address `addr`,
    /// accounting the time. Unwritten locations read as zero.
    pub fn read_burst(&mut self, addr: usize, words: &mut [u64]) -> f64 {
        for (k, w) in words.iter_mut().enumerate() {
            let a = addr + k;
            let (page, off) = (a / WORDS_PER_PAGE, a % WORDS_PER_PAGE);
            *w = self.data.get(&page).map_or(0, |p| p[off]);
        }
        let t = self.access_time_ns(words.len() * 8);
        self.bytes_read += (words.len() * 8) as u64;
        self.busy_ns += t;
        t
    }

    /// Write `words` starting at word address `addr`, accounting the time.
    pub fn write_burst(&mut self, addr: usize, words: &[u64]) -> f64 {
        for (k, &w) in words.iter().enumerate() {
            let a = addr + k;
            let (page, off) = (a / WORDS_PER_PAGE, a % WORDS_PER_PAGE);
            self.data
                .entry(page)
                .or_insert_with(|| vec![0; WORDS_PER_PAGE])[off] = w;
        }
        let t = self.access_time_ns(words.len() * 8);
        self.bytes_written += (words.len() * 8) as u64;
        self.busy_ns += t;
        t
    }

    /// Effective bandwidth of an isolated access of `bytes` (the
    /// latency-amortization curve PolyMem avoids paying per access).
    pub fn effective_bandwidth_gbps(&self, bytes: usize) -> f64 {
        bytes as f64 / self.access_time_ns(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut d = Dram::new(DramParams::vectis_lmem());
        d.write_burst(1000, &[1, 2, 3, 4]);
        let mut out = [0u64; 4];
        d.read_burst(1000, &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn unwritten_reads_zero() {
        let mut d = Dram::new(DramParams::vectis_lmem());
        let mut out = [7u64; 2];
        d.read_burst(123_456, &mut out);
        assert_eq!(out, [0, 0]);
    }

    #[test]
    fn latency_dominates_small_accesses() {
        let d = Dram::new(DramParams::vectis_lmem());
        // An 8-byte access pays a full burst + 200 ns latency.
        let eff = d.effective_bandwidth_gbps(8);
        assert!(eff < 0.05, "small-access bandwidth {eff} GB/s");
        // A 1 MB stream approaches the sustained figure.
        let eff = d.effective_bandwidth_gbps(1 << 20);
        assert!(eff > 14.0, "large-access bandwidth {eff} GB/s");
    }

    #[test]
    fn burst_rounding() {
        let d = Dram::new(DramParams::vectis_lmem());
        // 1 byte still moves one full 384-byte burst.
        let t1 = d.access_time_ns(1);
        let t384 = d.access_time_ns(384);
        assert_eq!(t1, t384);
        assert!(d.access_time_ns(385) > t384);
    }

    #[test]
    fn accounting() {
        let mut d = Dram::new(DramParams::vectis_lmem());
        d.write_burst(0, &[0; 16]);
        d.read_burst(0, &mut [0; 16]);
        assert_eq!(d.bytes_written, 128);
        assert_eq!(d.bytes_read, 128);
        assert!(d.busy_ns > 400.0);
    }

    #[test]
    fn cross_page_access() {
        let mut d = Dram::new(DramParams::vectis_lmem());
        let addr = WORDS_PER_PAGE - 2;
        d.write_burst(addr, &[10, 11, 12, 13]);
        let mut out = [0u64; 4];
        d.read_burst(addr, &mut out);
        assert_eq!(out, [10, 11, 12, 13]);
    }
}
