//! The kernel abstraction: a node of the dataflow graph.
//!
//! A [`Kernel`] is ticked once per clock cycle by the [`crate::manager`].
//! Within a tick it may pop from input streams, compute, and push to output
//! streams, honouring FIFO backpressure. This mirrors MaxJ's model where a
//! kernel advances when its inputs are available and outputs have room.

/// A dataflow kernel.
pub trait Kernel {
    /// Kernel name (diagnostics).
    fn name(&self) -> &str;

    /// Advance one clock cycle. `cycle` is the global cycle number.
    fn tick(&mut self, cycle: u64);

    /// Whether this kernel has outstanding work (used by the manager's
    /// run-to-quiescence loop). Default: never idle (pure pipeline stages).
    fn is_idle(&self) -> bool {
        false
    }

    /// One-line detail of why the kernel is not idle, for stall diagnosis
    /// ([`crate::manager::Manager::diagnose_stall`]). Default: no detail.
    fn busy_reason(&self) -> Option<String> {
        None
    }

    /// The next cycle at which ticking this kernel could change state —
    /// the event-driven scheduler's fast-forward contract
    /// ([`crate::sched`]).
    ///
    /// * `Some(c)` with `c` less than or equal to the current cycle means
    ///   "tick me now" (the kernel can act this cycle).
    /// * `Some(c)` in the future is a **self-scheduled wake-up**: absent any
    ///   external input, ticking this kernel before cycle `c` is a no-op
    ///   (no state change). Reporting a wake *earlier* than necessary is
    ///   always safe (it degenerates toward per-cycle ticking); reporting
    ///   one *later* than the first cycle the kernel would act is a
    ///   correctness bug.
    /// * `None` means the kernel has no self-scheduled wake: it is either
    ///   idle or waiting purely on external input (another kernel pushing
    ///   to / popping from a shared stream). Since the scheduler only
    ///   fast-forwards when **no** kernel can act, nothing changes during a
    ///   skipped span, so `None` is safe for externally-blocked kernels.
    ///
    /// The default is maximally conservative — always "tick me now" — so
    /// any kernel that does not opt in keeps bit-identical per-cycle
    /// semantics under the event-driven scheduler.
    fn next_event(&self) -> Option<u64> {
        Some(0)
    }

    /// Observe a fast-forwarded span: the scheduler skipped cycles
    /// `from..to` (exclusive of `to`) because no kernel could act. Kernels
    /// that account per-cycle state (stall-attribution counters, pacing
    /// flags read by downstream kernels) reproduce here, in bulk, exactly
    /// what `to - from` no-op ticks would have recorded. Called in
    /// registration order, so upstream kernels (e.g. paced loaders setting
    /// a PCIe-wait flag) run before downstream ones that read their flags.
    /// Default: nothing to account.
    fn skip_to(&mut self, from: u64, to: u64) {
        let _ = (from, to);
    }
}

/// A simple function-backed kernel, convenient for tests and small designs.
pub struct FnKernel<F: FnMut(u64)> {
    name: String,
    f: F,
}

impl<F: FnMut(u64)> FnKernel<F> {
    /// Wrap a closure as a kernel.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        Self {
            name: name.into(),
            f,
        }
    }
}

impl<F: FnMut(u64)> Kernel for FnKernel<F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, cycle: u64) {
        (self.f)(cycle);
    }
}

/// A fixed-latency pipeline register chain: values pushed in emerge exactly
/// `latency` ticks later. This is the building block used to model the
/// paper's 14-cycle PolyMem read latency.
#[derive(Debug, Clone)]
pub struct DelayLine<T> {
    latency: u64,
    /// (ready_cycle, value) in insertion order; ready cycles are monotone.
    slots: std::collections::VecDeque<(u64, T)>,
}

impl<T> DelayLine<T> {
    /// A delay line of `latency` cycles.
    pub fn new(latency: u64) -> Self {
        Self {
            latency,
            slots: std::collections::VecDeque::new(),
        }
    }

    /// The configured latency.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Insert a value at `cycle`; it becomes available at `cycle + latency`.
    pub fn push(&mut self, cycle: u64, value: T) {
        self.slots.push_back((cycle + self.latency, value));
    }

    /// Pop the next value if it is ready at `cycle`.
    pub fn pop_ready(&mut self, cycle: u64) -> Option<T> {
        if let Some(&(ready, _)) = self.slots.front() {
            if ready <= cycle {
                return self.slots.pop_front().map(|(_, v)| v);
            }
        }
        None
    }

    /// Values currently in flight.
    pub fn in_flight(&self) -> usize {
        self.slots.len()
    }

    /// The cycle at which the oldest in-flight value becomes ready — the
    /// delay line's contribution to [`Kernel::next_event`]. `None` when
    /// drained.
    pub fn next_ready(&self) -> Option<u64> {
        self.slots.front().map(|&(ready, _)| ready)
    }

    /// Whether the pipeline is drained.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_kernel_ticks() {
        let mut count = 0u64;
        {
            let mut k = FnKernel::new("counter", |_| count += 1);
            assert_eq!(k.name(), "counter");
            for c in 0..5 {
                k.tick(c);
            }
            assert!(!k.is_idle());
        }
        assert_eq!(count, 5);
    }

    #[test]
    fn delay_line_exact_latency() {
        let mut d = DelayLine::new(14);
        d.push(0, "a");
        for c in 0..14 {
            assert!(d.pop_ready(c).is_none(), "cycle {c}");
        }
        assert_eq!(d.pop_ready(14), Some("a"));
    }

    #[test]
    fn delay_line_pipelining() {
        // One value per cycle in -> one per cycle out, shifted by latency.
        let mut d = DelayLine::new(3);
        let mut out = Vec::new();
        for c in 0..10u64 {
            if c < 5 {
                d.push(c, c);
            }
            if let Some(v) = d.pop_ready(c) {
                out.push((c, v));
            }
        }
        assert_eq!(out, vec![(3, 0), (4, 1), (5, 2), (6, 3), (7, 4)]);
        assert!(d.is_empty());
    }

    #[test]
    fn zero_latency_is_same_cycle() {
        let mut d = DelayLine::new(0);
        d.push(7, 99);
        assert_eq!(d.pop_ready(7), Some(99));
    }

    #[test]
    fn next_ready_tracks_oldest_slot() {
        let mut d = DelayLine::new(14);
        assert_eq!(d.next_ready(), None);
        d.push(3, "a");
        d.push(5, "b");
        assert_eq!(d.next_ready(), Some(17));
        let _ = d.pop_ready(17);
        assert_eq!(d.next_ready(), Some(19));
    }

    #[test]
    fn in_flight_count() {
        let mut d = DelayLine::new(5);
        d.push(0, 1);
        d.push(1, 2);
        assert_eq!(d.in_flight(), 2);
        let _ = d.pop_ready(5);
        assert_eq!(d.in_flight(), 1);
    }
}
