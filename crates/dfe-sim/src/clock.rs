//! Simulation clock: cycle counting and cycle ↔ wall-time conversion.

use serde::{Deserialize, Serialize};

/// A clock domain with a fixed frequency, counting elapsed cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimClock {
    freq_mhz: f64,
    cycle: u64,
}

impl SimClock {
    /// A clock at `freq_mhz` megahertz, at cycle 0.
    pub fn new(freq_mhz: f64) -> Self {
        assert!(freq_mhz > 0.0, "clock frequency must be positive");
        Self { freq_mhz, cycle: 0 }
    }

    /// Clock frequency in MHz.
    #[inline]
    pub fn freq_mhz(&self) -> f64 {
        self.freq_mhz
    }

    /// Current cycle number.
    #[inline]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advance one cycle.
    #[inline]
    pub fn tick(&mut self) {
        self.cycle += 1;
    }

    /// Advance `n` cycles.
    #[inline]
    pub fn advance(&mut self, n: u64) {
        self.cycle += n;
    }

    /// Nanoseconds per cycle.
    #[inline]
    pub fn period_ns(&self) -> f64 {
        1000.0 / self.freq_mhz
    }

    /// Elapsed wall time in nanoseconds.
    #[inline]
    pub fn elapsed_ns(&self) -> f64 {
        self.cycle as f64 * self.period_ns()
    }

    /// Convert a duration in nanoseconds to whole cycles (rounding up — a
    /// partial cycle still occupies the clock edge).
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns / self.period_ns()).ceil() as u64
    }

    /// Reset the cycle counter (e.g. between measurement stages).
    pub fn reset(&mut self) {
        self.cycle = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_and_elapsed() {
        let mut c = SimClock::new(120.0);
        assert!((c.period_ns() - 8.3333).abs() < 1e-3);
        c.advance(120);
        assert!((c.elapsed_ns() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn ns_to_cycles_rounds_up() {
        let c = SimClock::new(120.0); // 8.33 ns/cycle
        assert_eq!(c.ns_to_cycles(300.0), 36);
        assert_eq!(c.ns_to_cycles(8.34), 2);
        assert_eq!(c.ns_to_cycles(0.0), 0);
    }

    #[test]
    fn tick_and_reset() {
        let mut c = SimClock::new(100.0);
        c.tick();
        c.tick();
        assert_eq!(c.cycle(), 2);
        c.reset();
        assert_eq!(c.cycle(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = SimClock::new(0.0);
    }
}
