//! Host ↔ DFE PCI-Express link model.
//!
//! Two effects matter for the paper's measurements (§V):
//!
//! 1. every host→DFE interaction (starting a kernel, a blocking call) costs
//!    a fixed **~300 ns** signalling overhead — the paper measured this and
//!    it dominates short runs (the left side of Fig. 10);
//! 2. bulk transfers move at the link bandwidth (Vectis: PCIe gen2 x8,
//!    ~2 GB/s effective), which bounds the Load/Offload stages.

use serde::{Deserialize, Serialize};

/// PCIe link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcieLink {
    /// Fixed per-call host↔DFE signalling overhead, nanoseconds.
    pub call_overhead_ns: f64,
    /// Effective bulk bandwidth, bytes per nanosecond (= GB/s).
    pub bandwidth_gbps: f64,
}

impl PcieLink {
    /// The Vectis link as measured by the paper: ~300 ns per call,
    /// ~2 GB/s effective gen2 x8 bulk bandwidth.
    pub fn vectis() -> Self {
        Self {
            call_overhead_ns: 300.0,
            bandwidth_gbps: 2.0,
        }
    }

    /// Time for one blocking host call that transfers `bytes` of data
    /// (0 bytes = a pure signal, e.g. "run the Copy stage").
    pub fn call_time_ns(&self, bytes: usize) -> f64 {
        self.call_overhead_ns + bytes as f64 / self.bandwidth_gbps
    }

    /// Time for `calls` consecutive blocking calls of `bytes` each (the
    /// paper's 1000-run measurement loop).
    pub fn calls_time_ns(&self, calls: usize, bytes: usize) -> f64 {
        calls as f64 * self.call_time_ns(bytes)
    }

    /// Cycles between `chunk_bytes`-sized arrivals when streaming at the
    /// link's bulk bandwidth on a `freq_mhz` kernel clock — the pacing
    /// interval a PCIe-fed loader self-schedules. This is also exactly the
    /// loader's [`crate::kernel::Kernel::next_event`] stride, which is what
    /// lets the event scheduler fast-forward the wire-wait spans between
    /// chunk arrivals instead of ticking through them.
    pub fn chunk_interval_cycles(&self, chunk_bytes: usize, freq_mhz: f64) -> u64 {
        let period_ns = 1000.0 / freq_mhz;
        let bytes_per_cycle = self.bandwidth_gbps * period_ns;
        (chunk_bytes as f64 / bytes_per_cycle).ceil().max(1.0) as u64
    }
}

/// Accumulating host-side activity record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HostStats {
    /// Blocking calls issued.
    pub calls: u64,
    /// Bytes moved host→DFE.
    pub bytes_to_dfe: u64,
    /// Bytes moved DFE→host.
    pub bytes_from_dfe: u64,
    /// Total nanoseconds spent in link overhead + transfer.
    pub link_time_ns: f64,
}

/// A host endpoint: issues blocking calls over a [`PcieLink`] and records
/// the time they cost.
#[derive(Debug, Clone, Copy)]
pub struct Host {
    link: PcieLink,
    stats: HostStats,
}

impl Host {
    /// A host attached over `link`.
    pub fn new(link: PcieLink) -> Self {
        Self {
            link,
            stats: HostStats::default(),
        }
    }

    /// The link parameters.
    pub fn link(&self) -> &PcieLink {
        &self.link
    }

    /// Issue a blocking signal call (no payload). Returns its cost in ns.
    pub fn signal(&mut self) -> f64 {
        let t = self.link.call_time_ns(0);
        self.stats.calls += 1;
        self.stats.link_time_ns += t;
        t
    }

    /// Send `bytes` to the DFE. Returns the call's cost in ns.
    pub fn send(&mut self, bytes: usize) -> f64 {
        let t = self.link.call_time_ns(bytes);
        self.stats.calls += 1;
        self.stats.bytes_to_dfe += bytes as u64;
        self.stats.link_time_ns += t;
        t
    }

    /// Receive `bytes` from the DFE. Returns the call's cost in ns.
    pub fn receive(&mut self, bytes: usize) -> f64 {
        let t = self.link.call_time_ns(bytes);
        self.stats.calls += 1;
        self.stats.bytes_from_dfe += bytes as u64;
        self.stats.link_time_ns += t;
        t
    }

    /// Activity counters.
    pub fn stats(&self) -> HostStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_costs_overhead_only() {
        let mut h = Host::new(PcieLink::vectis());
        let t = h.signal();
        assert_eq!(t, 300.0);
        assert_eq!(h.stats().calls, 1);
        assert_eq!(h.stats().bytes_to_dfe, 0);
    }

    #[test]
    fn transfer_adds_bandwidth_time() {
        let link = PcieLink::vectis();
        // 2 GB/s = 2 bytes/ns: 2000 bytes = 1000 ns + 300 ns overhead.
        assert!((link.call_time_ns(2000) - 1300.0).abs() < 1e-9);
    }

    #[test]
    fn chunk_interval_matches_bandwidth() {
        let link = PcieLink::vectis();
        // 64 B chunks at 120 MHz: 2 B/ns * 8.33 ns = 16.7 B/cycle -> 4 cycles.
        assert_eq!(link.chunk_interval_cycles(64, 120.0), 4);
        // Faster clock -> fewer bytes per cycle -> longer interval.
        assert!(link.chunk_interval_cycles(64, 240.0) >= 8);
    }

    #[test]
    fn thousand_calls_amortization() {
        // The paper runs the Copy stage 1000x; overhead per run is 300 ns.
        let link = PcieLink::vectis();
        assert!((link.calls_time_ns(1000, 0) - 300_000.0).abs() < 1e-9);
    }

    #[test]
    fn host_accumulates() {
        let mut h = Host::new(PcieLink::vectis());
        h.send(1000);
        h.receive(500);
        h.signal();
        let s = h.stats();
        assert_eq!(s.calls, 3);
        assert_eq!(s.bytes_to_dfe, 1000);
        assert_eq!(s.bytes_from_dfe, 500);
        assert!(s.link_time_ns > 900.0);
    }
}
