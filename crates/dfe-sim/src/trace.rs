//! Event tracing and stream statistics.
//!
//! The MaxIDE's behavioural simulator — which the paper credits for most of
//! its debugging — shows per-cycle signal activity. [`Tracer`] is the
//! equivalent here: kernels record timestamped events into a shared bounded
//! buffer, and [`StreamStats`] snapshots FIFO health (throughput, stalls,
//! peak occupancy proxies) for bottleneck hunting.

use crate::stream::StreamRef;
use polymem::telemetry::{Counter, TelemetryRegistry};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Cycle at which the event occurred.
    pub cycle: u64,
    /// Emitting kernel or component.
    pub source: String,
    /// Free-form event description.
    pub event: String,
}

/// A shared, bounded event recorder.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Rc<RefCell<TraceBuf>>,
}

#[derive(Debug)]
struct TraceBuf {
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
    bridge: Option<TelemetryBridge>,
}

/// Counts recorded events into a [`TelemetryRegistry`] as
/// `dfe_trace_events_total{source=...}`. One counter handle is registered
/// per distinct source on first sight; subsequent records are a map lookup
/// plus an atomic add.
#[derive(Debug)]
struct TelemetryBridge {
    registry: Arc<TelemetryRegistry>,
    counters: HashMap<String, Counter>,
}

impl TelemetryBridge {
    fn count(&mut self, source: &str) {
        if let Some(c) = self.counters.get(source) {
            c.inc();
            return;
        }
        let c = self.registry.counter(
            "dfe_trace_events_total",
            vec![("source", source.to_string())],
        );
        c.inc();
        self.counters.insert(source.to_string(), c);
    }
}

impl Tracer {
    /// A tracer keeping at most `capacity` events (oldest dropped first).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Rc::new(RefCell::new(TraceBuf {
                events: std::collections::VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                dropped: 0,
                enabled: true,
                bridge: None,
            })),
        }
    }

    /// Record an event (no-op when disabled).
    pub fn record(&self, cycle: u64, source: impl Into<String>, event: impl Into<String>) {
        let mut b = self.inner.borrow_mut();
        if !b.enabled {
            return;
        }
        if b.events.len() >= b.capacity {
            b.events.pop_front();
            b.dropped += 1;
        }
        let source = source.into();
        if let Some(bridge) = &mut b.bridge {
            bridge.count(&source);
        }
        b.events.push_back(TraceEvent {
            cycle,
            source,
            event: event.into(),
        });
    }

    /// Record an event whose description is built lazily: `event` runs only
    /// when the tracer is enabled, so hot paths pay a single flag check —
    /// no `format!`, no clone — while tracing is off.
    pub fn record_with(&self, cycle: u64, source: &str, event: impl FnOnce() -> String) {
        if !self.is_enabled() {
            return;
        }
        self.record(cycle, source.to_string(), event());
    }

    /// Record a fast-forward jump: the event-driven scheduler
    /// ([`crate::sched`]) skipped the quiescent span `from..to` in one
    /// step. Recorded at `from`, the last cycle anything happened.
    pub fn record_jump(&self, from: u64, to: u64, source: &str) {
        self.record_with(from, source, || {
            format!("fast-forward to cycle {to} (skipped {} cycles)", to - from)
        });
    }

    /// Whether recording is currently enabled (the fast check
    /// [`Self::record_with`] performs before building an event).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.borrow().enabled
    }

    /// Enable or disable recording.
    pub fn set_enabled(&self, on: bool) {
        self.inner.borrow_mut().enabled = on;
    }

    /// Mirror every recorded event into `registry` as
    /// `dfe_trace_events_total{source=...}` (counts only; the event text
    /// stays in the trace buffer). Events recorded while disabled are not
    /// counted, matching the buffer's behaviour.
    pub fn bridge_registry(&self, registry: Arc<TelemetryRegistry>) {
        self.inner.borrow_mut().bridge = Some(TelemetryBridge {
            registry,
            counters: HashMap::new(),
        });
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.borrow().events.iter().cloned().collect()
    }

    /// Events from one source.
    pub fn events_of(&self, source: &str) -> Vec<TraceEvent> {
        self.inner
            .borrow()
            .events
            .iter()
            .filter(|e| e.source == source)
            .cloned()
            .collect()
    }

    /// Events dropped due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Render a text timeline (one line per event, sorted by cycle).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.inner.borrow().events.iter() {
            out.push_str(&format!("[{:>8}] {:<20} {}\n", e.cycle, e.source, e.event));
        }
        out
    }
}

/// Aggregate of the burst traffic a kernel recorded through its tracer
/// hook (`burst:<kind> len=<n>` events, see
/// [`crate::polymem_kernel::PolyMemKernel::set_tracer`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstSummary {
    /// Region read bursts accepted.
    pub reads: u64,
    /// Region write bursts accepted.
    pub writes: u64,
    /// Fused copy bursts accepted.
    pub copies: u64,
    /// Total elements moved across all bursts.
    pub elements: u64,
}

/// Summarize one source's `burst:*` events from a tracer. Events that are
/// not burst records (or whose length field is malformed) are ignored.
pub fn burst_summary(tracer: &Tracer, source: &str) -> BurstSummary {
    let mut out = BurstSummary::default();
    for e in tracer.events_of(source) {
        let Some(rest) = e.event.strip_prefix("burst:") else {
            continue;
        };
        let Some((kind, len)) = rest.split_once(" len=") else {
            continue;
        };
        let Ok(len) = len.trim().parse::<u64>() else {
            continue;
        };
        match kind {
            "read" => out.reads += 1,
            "write" => out.writes += 1,
            "copy" => out.copies += 1,
            _ => continue,
        }
        out.elements += len;
    }
    out
}

/// A point-in-time snapshot of one stream's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Elements pushed over the stream's lifetime.
    pub pushed: u64,
    /// Elements popped.
    pub popped: u64,
    /// Rejected pushes (backpressure events).
    pub stalls: u64,
    /// Current queue depth.
    pub depth: usize,
}

/// Snapshot a stream's counters.
pub fn stream_stats<T>(s: &StreamRef<T>) -> StreamStats {
    let f = s.borrow();
    StreamStats {
        pushed: f.total_pushed(),
        popped: f.total_popped(),
        stalls: f.stall_count(),
        depth: f.len(),
    }
}

/// Aggregate a design's stream health into (name, stats) rows, flagging any
/// stream that ever stalled — the first thing to look at when a pipeline
/// under-delivers.
pub fn stream_report<T>(streams: &[(&str, &StreamRef<T>)]) -> Vec<(String, StreamStats)> {
    streams
        .iter()
        .map(|(name, s)| ((*name).to_string(), stream_stats(s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::stream;

    #[test]
    fn records_and_renders() {
        let t = Tracer::new(16);
        t.record(0, "agu", "expand rect(0,0)");
        t.record(1, "banks", "read 8 lanes");
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].source, "agu");
        let text = t.render();
        assert!(text.contains("expand rect"));
        assert!(text.contains("[       1]"));
    }

    #[test]
    fn capacity_bound_drops_oldest() {
        let t = Tracer::new(3);
        for c in 0..5 {
            t.record(c, "k", format!("e{c}"));
        }
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].event, "e2");
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn disable_suppresses() {
        let t = Tracer::new(8);
        t.set_enabled(false);
        t.record(0, "k", "hidden");
        assert!(t.events().is_empty());
        t.set_enabled(true);
        t.record(1, "k", "visible");
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn filter_by_source() {
        let t = Tracer::new(8);
        t.record(0, "a", "x");
        t.record(1, "b", "y");
        t.record(2, "a", "z");
        assert_eq!(t.events_of("a").len(), 2);
        assert_eq!(t.events_of("b").len(), 1);
        assert!(t.events_of("c").is_empty());
    }

    #[test]
    fn stream_stats_snapshot() {
        let s = stream::<u64>("s", 2);
        s.borrow_mut().push(1);
        s.borrow_mut().push(2);
        s.borrow_mut().push(3); // stall
        s.borrow_mut().pop();
        let st = stream_stats(&s);
        assert_eq!(st.pushed, 2);
        assert_eq!(st.popped, 1);
        assert_eq!(st.stalls, 1);
        assert_eq!(st.depth, 1);
    }

    #[test]
    fn stream_report_rows() {
        let a = stream::<u64>("a", 4);
        let b = stream::<u64>("b", 4);
        a.borrow_mut().push(1);
        let rows = stream_report(&[("a", &a), ("b", &b)]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1.pushed, 1);
        assert_eq!(rows[1].1.pushed, 0);
    }

    #[test]
    fn burst_summary_counts_kinds_and_elements() {
        let t = Tracer::new(16);
        t.record(0, "pm", "burst:read len=32");
        t.record(4, "pm", "burst:copy len=32");
        t.record(8, "pm", "burst:write len=16");
        t.record(9, "pm", "not a burst");
        t.record(9, "pm", "burst:copy len=oops");
        t.record(10, "other", "burst:read len=99");
        let s = burst_summary(&t, "pm");
        assert_eq!(
            s,
            BurstSummary {
                reads: 1,
                writes: 1,
                copies: 1,
                elements: 80,
            }
        );
    }

    #[test]
    fn shared_clone_sees_same_buffer() {
        let t = Tracer::new(8);
        let t2 = t.clone();
        t.record(0, "k", "from t");
        assert_eq!(t2.events().len(), 1);
    }

    #[test]
    fn record_with_builds_lazily() {
        let t = Tracer::new(8);
        t.set_enabled(false);
        let mut built = false;
        t.record_with(0, "k", || {
            built = true;
            "hidden".into()
        });
        assert!(!built, "closure must not run while disabled");
        assert!(!t.is_enabled());
        assert!(t.events().is_empty());
        t.set_enabled(true);
        t.record_with(1, "k", || "visible".into());
        let evs = t.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].event, "visible");
    }

    #[test]
    fn record_jump_formats_span() {
        let t = Tracer::new(8);
        t.record_jump(10, 150, "sched");
        let evs = t.events_of("sched");
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].cycle, 10);
        assert!(evs[0].event.contains("fast-forward to cycle 150"));
        assert!(evs[0].event.contains("skipped 140"));
    }

    #[test]
    fn bridge_counts_events_by_source() {
        use polymem::telemetry::TelemetryRegistry;
        use std::sync::Arc;
        let reg = Arc::new(TelemetryRegistry::new());
        let t = Tracer::new(8);
        t.bridge_registry(Arc::clone(&reg));
        t.record(0, "pm", "a");
        t.record(1, "pm", "b");
        t.record(2, "loader", "c");
        t.set_enabled(false);
        t.record(3, "pm", "suppressed");
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter_value("dfe_trace_events_total", &[("source", "pm")]),
            Some(2)
        );
        assert_eq!(
            snap.counter_value("dfe_trace_events_total", &[("source", "loader")]),
            Some(1)
        );
    }
}
