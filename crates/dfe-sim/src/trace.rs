//! Event tracing and stream statistics.
//!
//! The MaxIDE's behavioural simulator — which the paper credits for most of
//! its debugging — shows per-cycle signal activity. [`Tracer`] is the
//! equivalent here: kernels record timestamped events into a shared bounded
//! buffer, and [`StreamStats`] snapshots FIFO health (throughput, stalls,
//! peak occupancy proxies) for bottleneck hunting.

use crate::stream::StreamRef;
use polymem::telemetry::{Counter, TelemetryRegistry};
use polymem::tracing::{TraceJournal, TraceWriter};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Cycle at which the event occurred.
    pub cycle: u64,
    /// Emitting kernel or component.
    pub source: String,
    /// Free-form event description.
    pub event: String,
}

/// A shared, bounded event recorder.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Rc<RefCell<TraceBuf>>,
}

#[derive(Debug)]
struct TraceBuf {
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
    bridge: Option<TelemetryBridge>,
    journal: Option<JournalBridge>,
}

/// Mirrors every recorded event into a [`TraceJournal`] as an instant on
/// the event's source track, unifying the legacy per-kernel `Tracer` with
/// the span journal: one `/trace.json` export shows both. Writers and
/// name ids are interned per distinct source/event text (cold path; the
/// journal's hot path moves only integers).
#[derive(Debug)]
struct JournalBridge {
    journal: TraceJournal,
    writers: HashMap<String, TraceWriter>,
}

impl JournalBridge {
    fn mirror(&mut self, cycle: u64, source: &str, event: &str) {
        let writer = self
            .writers
            .entry(source.to_string())
            .or_insert_with(|| self.journal.writer(source));
        writer.instant_at(cycle, self.journal.intern(event));
    }
}

/// Counts recorded events into a [`TelemetryRegistry`] as
/// `dfe_trace_events_total{source=...}`. One counter handle is registered
/// per distinct source on first sight; subsequent records are a map lookup
/// plus an atomic add.
#[derive(Debug)]
struct TelemetryBridge {
    registry: Arc<TelemetryRegistry>,
    counters: HashMap<String, Counter>,
}

impl TelemetryBridge {
    fn count(&mut self, source: &str) {
        if let Some(c) = self.counters.get(source) {
            c.inc();
            return;
        }
        let c = self.registry.counter(
            "dfe_trace_events_total",
            vec![("source", source.to_string())],
        );
        c.inc();
        self.counters.insert(source.to_string(), c);
    }
}

impl Tracer {
    /// A tracer keeping at most `capacity` events (oldest dropped first).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Rc::new(RefCell::new(TraceBuf {
                events: std::collections::VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                dropped: 0,
                enabled: true,
                bridge: None,
                journal: None,
            })),
        }
    }

    /// Record an event (no-op when disabled).
    pub fn record(&self, cycle: u64, source: impl Into<String>, event: impl Into<String>) {
        let mut b = self.inner.borrow_mut();
        if !b.enabled {
            return;
        }
        if b.events.len() >= b.capacity {
            b.events.pop_front();
            b.dropped += 1;
        }
        let source = source.into();
        let event = event.into();
        if let Some(bridge) = &mut b.bridge {
            bridge.count(&source);
        }
        if let Some(j) = &mut b.journal {
            j.mirror(cycle, &source, &event);
        }
        b.events.push_back(TraceEvent {
            cycle,
            source,
            event,
        });
    }

    /// Record an event whose description is built lazily: `event` runs only
    /// when the tracer is enabled, so hot paths pay a single flag check —
    /// no `format!`, no clone — while tracing is off.
    pub fn record_with(&self, cycle: u64, source: &str, event: impl FnOnce() -> String) {
        if !self.is_enabled() {
            return;
        }
        self.record(cycle, source.to_string(), event());
    }

    /// Record a fast-forward jump: the event-driven scheduler
    /// ([`crate::sched`]) skipped the quiescent span `from..to` in one
    /// step. Recorded at `from`, the last cycle anything happened.
    pub fn record_jump(&self, from: u64, to: u64, source: &str) {
        self.record_with(from, source, || {
            format!("fast-forward to cycle {to} (skipped {} cycles)", to - from)
        });
    }

    /// Whether recording is currently enabled (the fast check
    /// [`Self::record_with`] performs before building an event).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.borrow().enabled
    }

    /// Enable or disable recording.
    pub fn set_enabled(&self, on: bool) {
        self.inner.borrow_mut().enabled = on;
    }

    /// Mirror every recorded event into `registry` as
    /// `dfe_trace_events_total{source=...}` (counts only; the event text
    /// stays in the trace buffer). Events recorded while disabled are not
    /// counted, matching the buffer's behaviour.
    pub fn bridge_registry(&self, registry: Arc<TelemetryRegistry>) {
        self.inner.borrow_mut().bridge = Some(TelemetryBridge {
            registry,
            counters: HashMap::new(),
        });
    }

    /// Mirror every recorded event into `journal` as an instant on the
    /// event's source track (see [`crate::trace`] module docs): the span
    /// journal's exporters then show legacy `Tracer` events — burst
    /// accepts, fast-forward jumps — on the same Perfetto timeline as the
    /// instrumented spans. Events recorded while disabled are not
    /// mirrored, matching the buffer's behaviour; mirrored events are
    /// *not* subject to this tracer's capacity bound (the journal has its
    /// own ring and drop counter).
    pub fn bridge_journal(&self, journal: &TraceJournal) {
        self.inner.borrow_mut().journal = Some(JournalBridge {
            journal: journal.clone(),
            writers: HashMap::new(),
        });
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.borrow().events.iter().cloned().collect()
    }

    /// Events from one source.
    pub fn events_of(&self, source: &str) -> Vec<TraceEvent> {
        self.inner
            .borrow()
            .events
            .iter()
            .filter(|e| e.source == source)
            .cloned()
            .collect()
    }

    /// Events dropped due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Render a text timeline (one line per event, sorted by cycle). When
    /// the capacity bound dropped events, a final diagnostic line says how
    /// many — silent loss would make a truncated timeline read as a
    /// complete one.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let b = self.inner.borrow();
        for e in b.events.iter() {
            out.push_str(&format!("[{:>8}] {:<20} {}\n", e.cycle, e.source, e.event));
        }
        if b.dropped > 0 {
            out.push_str(&format!(
                "[ DROPPED] {} event(s) lost to the capacity bound ({})\n",
                b.dropped, b.capacity
            ));
        }
        out
    }
}

/// Aggregate of the burst traffic a kernel recorded through its tracer
/// hook (`burst:<kind> len=<n>` events, see
/// [`crate::polymem_kernel::PolyMemKernel::set_tracer`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstSummary {
    /// Region read bursts accepted.
    pub reads: u64,
    /// Region write bursts accepted.
    pub writes: u64,
    /// Fused copy bursts accepted.
    pub copies: u64,
    /// Total elements moved across all bursts.
    pub elements: u64,
    /// Events the tracer's capacity bound dropped (all sources). Non-zero
    /// means the burst counts above are a **lower bound**: the oldest
    /// burst records may have been evicted before this summary ran.
    pub dropped: u64,
}

/// Summarize one source's `burst:*` events from a tracer. Events that are
/// not burst records (or whose length field is malformed) are ignored.
/// `dropped` carries the tracer's overflow count so callers can tell a
/// complete summary from a truncated one.
pub fn burst_summary(tracer: &Tracer, source: &str) -> BurstSummary {
    let mut out = BurstSummary {
        dropped: tracer.dropped(),
        ..BurstSummary::default()
    };
    for e in tracer.events_of(source) {
        let Some(rest) = e.event.strip_prefix("burst:") else {
            continue;
        };
        let Some((kind, len)) = rest.split_once(" len=") else {
            continue;
        };
        let Ok(len) = len.trim().parse::<u64>() else {
            continue;
        };
        match kind {
            "read" => out.reads += 1,
            "write" => out.writes += 1,
            "copy" => out.copies += 1,
            _ => continue,
        }
        out.elements += len;
    }
    out
}

/// A point-in-time snapshot of one stream's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Elements pushed over the stream's lifetime.
    pub pushed: u64,
    /// Elements popped.
    pub popped: u64,
    /// Rejected pushes (backpressure events).
    pub stalls: u64,
    /// Current queue depth.
    pub depth: usize,
}

/// Snapshot a stream's counters.
pub fn stream_stats<T>(s: &StreamRef<T>) -> StreamStats {
    let f = s.borrow();
    StreamStats {
        pushed: f.total_pushed(),
        popped: f.total_popped(),
        stalls: f.stall_count(),
        depth: f.len(),
    }
}

/// Aggregate a design's stream health into (name, stats) rows, flagging any
/// stream that ever stalled — the first thing to look at when a pipeline
/// under-delivers.
pub fn stream_report<T>(streams: &[(&str, &StreamRef<T>)]) -> Vec<(String, StreamStats)> {
    streams
        .iter()
        .map(|(name, s)| ((*name).to_string(), stream_stats(s)))
        .collect()
}

/// [`stream_report`] plus a final `<tracer>` row surfacing the event
/// buffer's own health: `pushed` = events ever recorded, `stalls` =
/// events lost to the capacity bound, `depth` = events currently
/// retained. A non-zero stall count on this row means every
/// event-derived diagnosis (e.g. [`burst_summary`]) ran on a truncated
/// timeline.
pub fn stream_report_traced<T>(
    streams: &[(&str, &StreamRef<T>)],
    tracer: &Tracer,
) -> Vec<(String, StreamStats)> {
    let mut rows = stream_report(streams);
    let retained = tracer.events().len() as u64;
    let dropped = tracer.dropped();
    rows.push((
        "<tracer>".to_string(),
        StreamStats {
            pushed: retained + dropped,
            popped: 0,
            stalls: dropped,
            depth: retained as usize,
        },
    ));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::stream;

    #[test]
    fn records_and_renders() {
        let t = Tracer::new(16);
        t.record(0, "agu", "expand rect(0,0)");
        t.record(1, "banks", "read 8 lanes");
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].source, "agu");
        let text = t.render();
        assert!(text.contains("expand rect"));
        assert!(text.contains("[       1]"));
    }

    #[test]
    fn capacity_bound_drops_oldest() {
        let t = Tracer::new(3);
        for c in 0..5 {
            t.record(c, "k", format!("e{c}"));
        }
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].event, "e2");
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn disable_suppresses() {
        let t = Tracer::new(8);
        t.set_enabled(false);
        t.record(0, "k", "hidden");
        assert!(t.events().is_empty());
        t.set_enabled(true);
        t.record(1, "k", "visible");
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn filter_by_source() {
        let t = Tracer::new(8);
        t.record(0, "a", "x");
        t.record(1, "b", "y");
        t.record(2, "a", "z");
        assert_eq!(t.events_of("a").len(), 2);
        assert_eq!(t.events_of("b").len(), 1);
        assert!(t.events_of("c").is_empty());
    }

    #[test]
    fn stream_stats_snapshot() {
        let s = stream::<u64>("s", 2);
        s.borrow_mut().push(1);
        s.borrow_mut().push(2);
        s.borrow_mut().push(3); // stall
        s.borrow_mut().pop();
        let st = stream_stats(&s);
        assert_eq!(st.pushed, 2);
        assert_eq!(st.popped, 1);
        assert_eq!(st.stalls, 1);
        assert_eq!(st.depth, 1);
    }

    #[test]
    fn stream_report_rows() {
        let a = stream::<u64>("a", 4);
        let b = stream::<u64>("b", 4);
        a.borrow_mut().push(1);
        let rows = stream_report(&[("a", &a), ("b", &b)]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1.pushed, 1);
        assert_eq!(rows[1].1.pushed, 0);
    }

    #[test]
    fn burst_summary_counts_kinds_and_elements() {
        let t = Tracer::new(16);
        t.record(0, "pm", "burst:read len=32");
        t.record(4, "pm", "burst:copy len=32");
        t.record(8, "pm", "burst:write len=16");
        t.record(9, "pm", "not a burst");
        t.record(9, "pm", "burst:copy len=oops");
        t.record(10, "other", "burst:read len=99");
        let s = burst_summary(&t, "pm");
        assert_eq!(
            s,
            BurstSummary {
                reads: 1,
                writes: 1,
                copies: 1,
                elements: 80,
                dropped: 0,
            }
        );
    }

    #[test]
    fn overflow_is_counted_and_surfaced_everywhere() {
        // A capacity-2 tracer fed 5 burst events: the 3 oldest are evicted
        // silently by the ring — the drop count must surface in the
        // summary, the rendered timeline, and the stream report so no
        // consumer mistakes a truncated record for a complete one.
        let t = Tracer::new(2);
        for c in 0..5u64 {
            t.record(c, "pm", format!("burst:read len={}", 8 * (c + 1)));
        }
        assert_eq!(t.dropped(), 3);
        let s = burst_summary(&t, "pm");
        assert_eq!(s.reads, 2, "only the 2 newest events survive");
        assert_eq!(s.elements, 32 + 40);
        assert_eq!(s.dropped, 3, "summary flags the loss");
        let text = t.render();
        assert!(
            text.contains("3 event(s) lost to the capacity bound (2)"),
            "{text}"
        );
        let rows = stream_report_traced::<u64>(&[], &t);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, "<tracer>");
        assert_eq!(rows[0].1.pushed, 5);
        assert_eq!(rows[0].1.stalls, 3);
        assert_eq!(rows[0].1.depth, 2);
        // A healthy tracer renders no drop footer and reports zero stalls.
        let ok = Tracer::new(8);
        ok.record(0, "pm", "burst:read len=8");
        assert!(!ok.render().contains("DROPPED"));
        assert_eq!(stream_report_traced::<u64>(&[], &ok)[0].1.stalls, 0);
    }

    #[test]
    fn shared_clone_sees_same_buffer() {
        let t = Tracer::new(8);
        let t2 = t.clone();
        t.record(0, "k", "from t");
        assert_eq!(t2.events().len(), 1);
    }

    #[test]
    fn record_with_builds_lazily() {
        let t = Tracer::new(8);
        t.set_enabled(false);
        let mut built = false;
        t.record_with(0, "k", || {
            built = true;
            "hidden".into()
        });
        assert!(!built, "closure must not run while disabled");
        assert!(!t.is_enabled());
        assert!(t.events().is_empty());
        t.set_enabled(true);
        t.record_with(1, "k", || "visible".into());
        let evs = t.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].event, "visible");
    }

    #[test]
    fn record_jump_formats_span() {
        let t = Tracer::new(8);
        t.record_jump(10, 150, "sched");
        let evs = t.events_of("sched");
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].cycle, 10);
        assert!(evs[0].event.contains("fast-forward to cycle 150"));
        assert!(evs[0].event.contains("skipped 140"));
    }

    #[test]
    fn bridge_counts_events_by_source() {
        use polymem::telemetry::TelemetryRegistry;
        use std::sync::Arc;
        let reg = Arc::new(TelemetryRegistry::new());
        let t = Tracer::new(8);
        t.bridge_registry(Arc::clone(&reg));
        t.record(0, "pm", "a");
        t.record(1, "pm", "b");
        t.record(2, "loader", "c");
        t.set_enabled(false);
        t.record(3, "pm", "suppressed");
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter_value("dfe_trace_events_total", &[("source", "pm")]),
            Some(2)
        );
        assert_eq!(
            snap.counter_value("dfe_trace_events_total", &[("source", "loader")]),
            Some(1)
        );
    }

    #[test]
    #[cfg(not(feature = "tracing-off"))]
    fn journal_bridge_mirrors_events_as_instants() {
        use polymem::tracing::{TraceEventKind, TraceJournal};
        let journal = TraceJournal::new(64);
        let t = Tracer::new(8);
        t.bridge_journal(&journal);
        t.record(3, "pm", "burst:read len=32");
        t.record(7, "sched", "fast-forward to cycle 20 (skipped 13 cycles)");
        t.set_enabled(false);
        t.record(9, "pm", "suppressed");
        let snap = journal.snapshot();
        assert_eq!(snap.events.len(), 2, "disabled records are not mirrored");
        assert!(snap
            .events
            .iter()
            .all(|e| e.kind == TraceEventKind::Instant));
        let pm = &snap.events[0];
        assert_eq!((pm.cycle, pm.track.as_str()), (3, "pm"));
        assert_eq!(pm.name, "burst:read len=32");
        assert_eq!(snap.events[1].track, "sched");
    }
}
