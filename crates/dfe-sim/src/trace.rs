//! Event tracing and stream statistics.
//!
//! The MaxIDE's behavioural simulator — which the paper credits for most of
//! its debugging — shows per-cycle signal activity. [`Tracer`] is the
//! equivalent here: kernels record timestamped events into a shared bounded
//! buffer, and [`StreamStats`] snapshots FIFO health (throughput, stalls,
//! peak occupancy proxies) for bottleneck hunting.

use crate::stream::StreamRef;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Cycle at which the event occurred.
    pub cycle: u64,
    /// Emitting kernel or component.
    pub source: String,
    /// Free-form event description.
    pub event: String,
}

/// A shared, bounded event recorder.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Rc<RefCell<TraceBuf>>,
}

#[derive(Debug)]
struct TraceBuf {
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl Tracer {
    /// A tracer keeping at most `capacity` events (oldest dropped first).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Rc::new(RefCell::new(TraceBuf {
                events: std::collections::VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                dropped: 0,
                enabled: true,
            })),
        }
    }

    /// Record an event (no-op when disabled).
    pub fn record(&self, cycle: u64, source: impl Into<String>, event: impl Into<String>) {
        let mut b = self.inner.borrow_mut();
        if !b.enabled {
            return;
        }
        if b.events.len() >= b.capacity {
            b.events.pop_front();
            b.dropped += 1;
        }
        b.events.push_back(TraceEvent {
            cycle,
            source: source.into(),
            event: event.into(),
        });
    }

    /// Enable or disable recording.
    pub fn set_enabled(&self, on: bool) {
        self.inner.borrow_mut().enabled = on;
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.borrow().events.iter().cloned().collect()
    }

    /// Events from one source.
    pub fn events_of(&self, source: &str) -> Vec<TraceEvent> {
        self.inner
            .borrow()
            .events
            .iter()
            .filter(|e| e.source == source)
            .cloned()
            .collect()
    }

    /// Events dropped due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Render a text timeline (one line per event, sorted by cycle).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.inner.borrow().events.iter() {
            out.push_str(&format!("[{:>8}] {:<20} {}\n", e.cycle, e.source, e.event));
        }
        out
    }
}

/// Aggregate of the burst traffic a kernel recorded through its tracer
/// hook (`burst:<kind> len=<n>` events, see
/// [`crate::polymem_kernel::PolyMemKernel::set_tracer`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstSummary {
    /// Region read bursts accepted.
    pub reads: u64,
    /// Region write bursts accepted.
    pub writes: u64,
    /// Fused copy bursts accepted.
    pub copies: u64,
    /// Total elements moved across all bursts.
    pub elements: u64,
}

/// Summarize one source's `burst:*` events from a tracer. Events that are
/// not burst records (or whose length field is malformed) are ignored.
pub fn burst_summary(tracer: &Tracer, source: &str) -> BurstSummary {
    let mut out = BurstSummary::default();
    for e in tracer.events_of(source) {
        let Some(rest) = e.event.strip_prefix("burst:") else {
            continue;
        };
        let Some((kind, len)) = rest.split_once(" len=") else {
            continue;
        };
        let Ok(len) = len.trim().parse::<u64>() else {
            continue;
        };
        match kind {
            "read" => out.reads += 1,
            "write" => out.writes += 1,
            "copy" => out.copies += 1,
            _ => continue,
        }
        out.elements += len;
    }
    out
}

/// A point-in-time snapshot of one stream's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Elements pushed over the stream's lifetime.
    pub pushed: u64,
    /// Elements popped.
    pub popped: u64,
    /// Rejected pushes (backpressure events).
    pub stalls: u64,
    /// Current queue depth.
    pub depth: usize,
}

/// Snapshot a stream's counters.
pub fn stream_stats<T>(s: &StreamRef<T>) -> StreamStats {
    let f = s.borrow();
    StreamStats {
        pushed: f.total_pushed(),
        popped: f.total_popped(),
        stalls: f.stall_count(),
        depth: f.len(),
    }
}

/// Aggregate a design's stream health into (name, stats) rows, flagging any
/// stream that ever stalled — the first thing to look at when a pipeline
/// under-delivers.
pub fn stream_report<T>(streams: &[(&str, &StreamRef<T>)]) -> Vec<(String, StreamStats)> {
    streams
        .iter()
        .map(|(name, s)| ((*name).to_string(), stream_stats(s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::stream;

    #[test]
    fn records_and_renders() {
        let t = Tracer::new(16);
        t.record(0, "agu", "expand rect(0,0)");
        t.record(1, "banks", "read 8 lanes");
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].source, "agu");
        let text = t.render();
        assert!(text.contains("expand rect"));
        assert!(text.contains("[       1]"));
    }

    #[test]
    fn capacity_bound_drops_oldest() {
        let t = Tracer::new(3);
        for c in 0..5 {
            t.record(c, "k", format!("e{c}"));
        }
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].event, "e2");
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn disable_suppresses() {
        let t = Tracer::new(8);
        t.set_enabled(false);
        t.record(0, "k", "hidden");
        assert!(t.events().is_empty());
        t.set_enabled(true);
        t.record(1, "k", "visible");
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn filter_by_source() {
        let t = Tracer::new(8);
        t.record(0, "a", "x");
        t.record(1, "b", "y");
        t.record(2, "a", "z");
        assert_eq!(t.events_of("a").len(), 2);
        assert_eq!(t.events_of("b").len(), 1);
        assert!(t.events_of("c").is_empty());
    }

    #[test]
    fn stream_stats_snapshot() {
        let s = stream::<u64>("s", 2);
        s.borrow_mut().push(1);
        s.borrow_mut().push(2);
        s.borrow_mut().push(3); // stall
        s.borrow_mut().pop();
        let st = stream_stats(&s);
        assert_eq!(st.pushed, 2);
        assert_eq!(st.popped, 1);
        assert_eq!(st.stalls, 1);
        assert_eq!(st.depth, 1);
    }

    #[test]
    fn stream_report_rows() {
        let a = stream::<u64>("a", 4);
        let b = stream::<u64>("b", 4);
        a.borrow_mut().push(1);
        let rows = stream_report(&[("a", &a), ("b", &b)]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1.pushed, 1);
        assert_eq!(rows[1].1.pushed, 0);
    }

    #[test]
    fn burst_summary_counts_kinds_and_elements() {
        let t = Tracer::new(16);
        t.record(0, "pm", "burst:read len=32");
        t.record(4, "pm", "burst:copy len=32");
        t.record(8, "pm", "burst:write len=16");
        t.record(9, "pm", "not a burst");
        t.record(9, "pm", "burst:copy len=oops");
        t.record(10, "other", "burst:read len=99");
        let s = burst_summary(&t, "pm");
        assert_eq!(
            s,
            BurstSummary {
                reads: 1,
                writes: 1,
                copies: 1,
                elements: 80,
            }
        );
    }

    #[test]
    fn shared_clone_sees_same_buffer() {
        let t = Tracer::new(8);
        let t2 = t.clone();
        t.record(0, "k", "from t");
        assert_eq!(t2.events().len(), 1);
    }
}
