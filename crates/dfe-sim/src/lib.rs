//! # polymem-dfe-sim — a cycle-level dataflow-engine simulator
//!
//! A Maxeler-like substrate for running PolyMem designs without hardware:
//!
//! * [`clock`] — cycle counting and cycle ↔ nanosecond conversion;
//! * [`stream`](mod@stream) — bounded typed FIFOs with backpressure (the edges of a
//!   MaxJ dataflow graph);
//! * [`kernel`] — the ticked-kernel trait, plus [`kernel::DelayLine`]
//!   pipeline registers;
//! * [`manager`] — wires kernels together and drives the clock
//!   deterministically;
//! * [`sched`] — the event-driven scheduling engine: kernels declare their
//!   next-interesting cycle and quiescent spans are fast-forwarded in O(1),
//!   with bulk stall attribution keeping cycle semantics bit-identical;
//! * [`pcie`] — the host link with the ~300 ns per-call overhead the paper
//!   measured (§V) and bulk-transfer bandwidth;
//! * [`dram`] — the off-chip LMem model PolyMem is designed to shield
//!   applications from;
//! * [`polymem_kernel`] — PolyMem wrapped as a pipelined kernel with the
//!   paper's 14-cycle read latency and read-old port semantics.
//!
//! The `polymem-stream-bench` crate builds the paper's STREAM design
//! (Fig. 9) on top of these pieces.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod components;
pub mod dram;
pub mod kernel;
pub mod lmem_stream;
pub mod manager;
pub mod pcie;
pub mod polymem_kernel;
pub mod sched;
pub mod stream;
pub mod trace;
pub mod vcd;

pub use clock::SimClock;
pub use components::{select, Demux, Generator, Mux, Select, Sink};
pub use dram::{Dram, DramParams};
pub use kernel::{DelayLine, FnKernel, Kernel};
pub use lmem_stream::{AccessCostModel, DramLoader};
pub use manager::{Manager, StallReport};
pub use pcie::{Host, HostStats, PcieLink};
pub use polymem_kernel::{
    PolyMemKernel, ReadRequest, ReadResponse, WriteRequest, PAPER_READ_LATENCY,
};
pub use sched::{SchedulerMode, SchedulerStats};
pub use stream::{stream, Fifo, StreamRef};
pub use trace::{
    burst_summary, stream_report, stream_report_traced, stream_stats, BurstSummary, StreamStats,
    TraceEvent, Tracer,
};
pub use vcd::VcdRecorder;
