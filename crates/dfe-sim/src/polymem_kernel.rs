//! PolyMem as a pipelined dataflow kernel.
//!
//! Wraps [`polymem::PolyMem`] with the port/timing behaviour of the MaxJ
//! implementation: one parallel access per port per cycle, with read results
//! emerging a fixed number of cycles later (the paper's STREAM design
//! measures this latency at **14 cycles**, "estimated by Maxeler's tools").
//! Within a cycle all reads observe the state *before* that cycle's write
//! commits (read-old port semantics).

use crate::kernel::{DelayLine, Kernel};
use crate::stream::StreamRef;
use crate::trace::Tracer;
use polymem::telemetry::{Counter, TelemetryRegistry};
use polymem::tracing::{NameId, TraceJournal, TraceWriter};
use polymem::{ParallelAccess, PolyMem, PolyMemConfig, PolyMemError, Region};
use std::cell::Cell;
use std::rc::Rc;

/// The read latency of the paper's synthesized design, in cycles.
pub const PAPER_READ_LATENCY: u64 = 14;

/// Cycle/stall attribution counters: every [`PolyMemKernel::tick`] lands in
/// **exactly one** of these buckets, so their sum always equals the number
/// of ticks — the invariant `polymem-top` checks (±0) when it renders a
/// stall breakdown. Classification priority, highest first:
///
/// 1. `active` — the datapath made progress (a request was consumed or a
///    result delivered);
/// 2. `contention` — requests are queued but the datapath could not serve
///    them (a burst occupies port 0 or the write path, or a response FIFO
///    is backed up);
/// 3. `pipeline` — nothing queued, but reads or bursts are still in flight
///    inside the fixed-latency pipeline;
/// 4. `pcie` — the kernel is empty and an upstream host-link pacer (see
///    [`PolyMemKernel::set_pcie_flag`]) reports it is withholding data;
/// 5. `idle` — nothing to do at all.
#[derive(Debug)]
struct CycleAttribution {
    active: Counter,
    contention: Counter,
    pipeline: Counter,
    pcie: Counter,
    idle: Counter,
}

impl CycleAttribution {
    fn bucket(&self, b: Bucket) -> &Counter {
        match b {
            Bucket::Active => &self.active,
            Bucket::Contention => &self.contention,
            Bucket::Pipeline => &self.pipeline,
            Bucket::Pcie => &self.pcie,
            Bucket::Idle => &self.idle,
        }
    }
}

/// The attribution bucket a cycle lands in (see [`CycleAttribution`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bucket {
    Active,
    Contention,
    Pipeline,
    Pcie,
    Idle,
}

/// Span-journal instrumentation for one kernel (see
/// [`PolyMemKernel::attach_tracing`]). The attribution track renders each
/// contiguous run of same-bucket cycles as one span, so the Perfetto
/// timeline is a gap-free strip whose per-state span sums equal
/// `dfe_kernel_cycles_total` exactly. Burst accepts go on separate
/// per-kind tracks because a read burst and a write burst can overlap in
/// time — one track per kind keeps every track's spans non-overlapping.
#[derive(Debug)]
struct KernelTracing {
    /// Attribution track, named after the kernel.
    writer: TraceWriter,
    /// `<kernel>/read-bursts`, `<kernel>/write-bursts`,
    /// `<kernel>/copy-bursts`.
    burst_writers: [TraceWriter; 3],
    burst_names: [NameId; 3],
    /// Interned state names, indexed like [`Bucket`] discriminants and
    /// matching the telemetry `state` label values.
    states: [NameId; 5],
    /// The open attribution run: `(bucket, start, end)` covers cycles
    /// `start..end`. Buffered so a 10 000-cycle idle fast-forward emits
    /// one span, not 10 000 — flushed retroactively (`begin_at`/`end_at`)
    /// when the bucket changes, the run goes non-contiguous, or
    /// [`PolyMemKernel::finish_tracing`] runs.
    open: Cell<Option<(Bucket, u64, u64)>>,
}

impl KernelTracing {
    fn state(&self, b: Bucket) -> NameId {
        self.states[match b {
            Bucket::Active => 0,
            Bucket::Contention => 1,
            Bucket::Pipeline => 2,
            Bucket::Pcie => 3,
            Bucket::Idle => 4,
        }]
    }

    /// Land cycles `cycle..cycle + n` in `bucket`, extending the open run
    /// when contiguous and same-bucket, else flushing it as one span.
    fn attribute(&self, bucket: Bucket, cycle: u64, n: u64) {
        match self.open.get() {
            Some((b, start, end)) if b == bucket && end == cycle => {
                self.open.set(Some((b, start, end + n)));
            }
            prev => {
                if let Some((b, start, end)) = prev {
                    self.flush_run(b, start, end);
                }
                self.open.set(Some((bucket, cycle, cycle + n)));
            }
        }
    }

    fn flush_run(&self, bucket: Bucket, start: u64, end: u64) {
        // One complete-span record, not a begin/end pair: flushes sit on
        // the ticked path, so the run buffer's whole point is paying the
        // journal as rarely and as cheaply as possible.
        self.writer.span_at(start, end, self.state(bucket));
    }

    fn finish(&self) {
        if let Some((b, start, end)) = self.open.take() {
            self.flush_run(b, start, end);
        }
    }
}

/// A read request on a port.
pub type ReadRequest = ParallelAccess;
/// A read response: the `p*q` elements in canonical lane order.
pub type ReadResponse = Vec<u64>;
/// A write request: target access + lane data.
pub type WriteRequest = (ParallelAccess, Vec<u64>);
/// A region read request (served via the compiled region plan).
pub type RegionRequest = Region;
/// A region read response: the region's elements in canonical order.
pub type RegionResponse = Vec<u64>;
/// A region write burst: target region + its elements in canonical order.
pub type RegionWriteRequest = (Region, Vec<u64>);
/// A fused copy burst: (source region, destination region).
pub type RegionCopyRequest = (Region, Region);
/// Completion token of a copy burst: elements moved.
pub type RegionCopyResponse = u64;

/// PolyMem wrapped as a ticked kernel with request/response streams.
pub struct PolyMemKernel {
    name: String,
    mem: PolyMem<u64>,
    read_latency: u64,
    read_req: Vec<StreamRef<ReadRequest>>,
    read_resp: Vec<StreamRef<ReadResponse>>,
    pipelines: Vec<DelayLine<ReadResponse>>,
    write_req: StreamRef<WriteRequest>,
    /// Optional region port: whole-region requests stream out in canonical
    /// order through the compiled region plan. See [`attach_region_port`].
    ///
    /// [`attach_region_port`]: PolyMemKernel::attach_region_port
    region_req: Option<StreamRef<RegionRequest>>,
    region_resp: Option<StreamRef<RegionResponse>>,
    /// An in-flight region transfer: (delivery cycle, data). The region
    /// engine occupies port 0 for `ceil(len / lanes)` cycles — one parallel
    /// access per cycle, exactly what the burst costs in hardware — then the
    /// pipeline latency applies once to the whole burst.
    region_inflight: Option<(u64, Vec<u64>)>,
    region_reads_served: u64,
    /// Optional region-write port: whole-region write bursts commit on
    /// acceptance and occupy the write datapath for `ceil(len / lanes)`
    /// cycles. See [`attach_region_write_port`].
    ///
    /// [`attach_region_write_port`]: PolyMemKernel::attach_region_write_port
    region_write_req: Option<StreamRef<RegionWriteRequest>>,
    /// Optional fused-copy port: a (src, dst) burst occupies port 0's read
    /// datapath *and* the write datapath for `ceil(len / lanes)` cycles,
    /// then delivers a completion token after the read latency. See
    /// [`attach_region_copy_port`].
    ///
    /// [`attach_region_copy_port`]: PolyMemKernel::attach_region_copy_port
    region_copy_req: Option<StreamRef<RegionCopyRequest>>,
    region_copy_resp: Option<StreamRef<RegionCopyResponse>>,
    /// An in-flight copy burst: (completion-token delivery cycle, elements).
    copy_inflight: Option<(u64, u64)>,
    /// First cycle at which the write datapath is free again (burst writes
    /// and copies occupy it; per-access writes stall until then).
    write_busy_until: u64,
    /// First cycle at which port 0's read datapath is free of a copy burst.
    copy_busy_until: u64,
    region_writes_served: u64,
    region_copies_served: u64,
    /// Optional event recorder: one `burst:<kind> len=<n>` event per
    /// accepted burst (see [`crate::trace::burst_summary`]).
    tracer: Option<Tracer>,
    /// Reusable lane buffer: the compiled-plan gather lands here each cycle,
    /// so the steady-state read path performs no routing work per tick.
    scratch: Vec<u64>,
    /// Errors raised by invalid requests (surfaced, not panicking, so fault
    /// injection tests can observe them).
    errors: Vec<PolyMemError>,
    reads_served: u64,
    writes_served: u64,
    /// Cycle attribution counters, when telemetry is attached.
    attribution: Option<CycleAttribution>,
    /// Span-journal instrumentation, when a journal is attached.
    trc: Option<KernelTracing>,
    /// Set by an upstream host-link kernel while it is pacing (withholding
    /// data for PCIe arrival timing); distinguishes `pcie` from `idle`.
    pcie_waiting: Option<Rc<Cell<bool>>>,
}

impl PolyMemKernel {
    /// Build the kernel.
    ///
    /// `read_req`/`read_resp` must have one stream per configured read port.
    pub fn new(
        name: impl Into<String>,
        config: PolyMemConfig,
        read_latency: u64,
        read_req: Vec<StreamRef<ReadRequest>>,
        read_resp: Vec<StreamRef<ReadResponse>>,
        write_req: StreamRef<WriteRequest>,
    ) -> polymem::Result<Self> {
        let mem = PolyMem::new(config)?;
        assert_eq!(
            read_req.len(),
            config.read_ports,
            "one read-request stream per port"
        );
        assert_eq!(read_resp.len(), config.read_ports);
        let pipelines = (0..config.read_ports)
            .map(|_| DelayLine::new(read_latency))
            .collect();
        Ok(Self {
            name: name.into(),
            mem,
            read_latency,
            read_req,
            read_resp,
            pipelines,
            write_req,
            region_req: None,
            region_resp: None,
            region_inflight: None,
            region_reads_served: 0,
            region_write_req: None,
            region_copy_req: None,
            region_copy_resp: None,
            copy_inflight: None,
            write_busy_until: 0,
            copy_busy_until: 0,
            region_writes_served: 0,
            region_copies_served: 0,
            tracer: None,
            scratch: vec![0; config.lanes()],
            errors: Vec::new(),
            reads_served: 0,
            writes_served: 0,
            attribution: None,
            trc: None,
            pcie_waiting: None,
        })
    }

    /// Register this kernel's cycle-attribution counters
    /// (`dfe_kernel_cycles_total{kernel=<name>, state=...}`, see
    /// [`CycleAttribution`]'s classification rules) with `registry`, and
    /// wire the wrapped memory's datapath counters into the same registry.
    pub fn attach_telemetry(&mut self, registry: &TelemetryRegistry) {
        let state = |s: &str| vec![("kernel", self.name.clone()), ("state", s.to_string())];
        self.attribution = Some(CycleAttribution {
            active: registry.counter("dfe_kernel_cycles_total", state("active")),
            contention: registry.counter("dfe_kernel_cycles_total", state("contention")),
            pipeline: registry.counter("dfe_kernel_cycles_total", state("pipeline")),
            pcie: registry.counter("dfe_kernel_cycles_total", state("pcie")),
            idle: registry.counter("dfe_kernel_cycles_total", state("idle")),
        });
        self.mem.attach_telemetry(registry);
    }

    /// Record this kernel's activity into `journal`: every tick lands in a
    /// cycle-attribution span on the track named after the kernel (one span
    /// per contiguous run of same-state cycles — fast-forwarded idle spans
    /// collapse to a single span), burst accepts become spans of
    /// `ceil(len / lanes)` cycles on per-kind `<kernel>/...-bursts` tracks,
    /// and the wrapped memory's replay spans and cache hit/miss instants
    /// ride on `<kernel>/mem`. Call [`Self::finish_tracing`] after the last
    /// tick to flush the open attribution run; until then the span sums
    /// trail `dfe_kernel_cycles_total` by the open run's length.
    pub fn attach_tracing(&mut self, journal: &TraceJournal) {
        let burst_track = |kind: &str| journal.writer(&format!("{}/{kind}-bursts", self.name));
        self.trc = Some(KernelTracing {
            writer: journal.writer(&self.name),
            burst_writers: [
                burst_track("read"),
                burst_track("write"),
                burst_track("copy"),
            ],
            burst_names: [
                journal.intern("burst:read"),
                journal.intern("burst:write"),
                journal.intern("burst:copy"),
            ],
            states: [
                journal.intern("active"),
                journal.intern("contention"),
                journal.intern("pipeline"),
                journal.intern("pcie"),
                journal.intern("idle"),
            ],
            open: Cell::new(None),
        });
        self.mem
            .attach_tracing(journal, &format!("{}/mem", self.name));
    }

    /// Flush the open attribution run (idempotent). After this, the
    /// journal's per-state span sums for this kernel's track equal its
    /// `dfe_kernel_cycles_total` buckets exactly.
    pub fn finish_tracing(&self) {
        if let Some(tr) = &self.trc {
            tr.finish();
        }
    }

    /// Stop recording into the journal (flushes the open run first).
    pub fn detach_tracing(&mut self) {
        self.finish_tracing();
        self.trc = None;
        self.mem.detach_tracing();
    }

    /// Share a pacing flag with an upstream host-link kernel: while the flag
    /// is true and this kernel is otherwise empty, stall cycles are
    /// attributed to `pcie` instead of `idle`.
    pub fn set_pcie_flag(&mut self, flag: Rc<Cell<bool>>) {
        self.pcie_waiting = Some(flag);
    }

    fn has_queued_requests(&self) -> bool {
        self.read_req.iter().any(|s| !s.borrow().is_empty())
            || !self.write_req.borrow().is_empty()
            || self
                .region_req
                .as_ref()
                .is_some_and(|s| !s.borrow().is_empty())
            || self
                .region_write_req
                .as_ref()
                .is_some_and(|s| !s.borrow().is_empty())
            || self
                .region_copy_req
                .as_ref()
                .is_some_and(|s| !s.borrow().is_empty())
    }

    fn has_inflight(&self) -> bool {
        self.pipelines.iter().any(|p| !p.is_empty())
            || self.region_inflight.is_some()
            || self.copy_inflight.is_some()
    }

    /// Land cycles `cycle..cycle + n` in exactly one attribution bucket
    /// (see [`CycleAttribution`] for the priority order), in both the
    /// telemetry counters and the span journal. `n > 1` is the
    /// fast-forward path: during a skipped span no kernel acts, so the
    /// classification the ticked loop would compute is constant across the
    /// span and one bulk add is exact.
    fn attribute_cycles(&self, progress: bool, cycle: u64, n: u64) {
        if self.attribution.is_none() && self.trc.is_none() {
            return;
        }
        let bucket = if progress {
            Bucket::Active
        } else if self.has_queued_requests() {
            Bucket::Contention
        } else if self.has_inflight() {
            Bucket::Pipeline
        } else if self.pcie_waiting.as_ref().is_some_and(|f| f.get()) {
            Bucket::Pcie
        } else {
            Bucket::Idle
        };
        if let Some(att) = &self.attribution {
            att.bucket(bucket).add(n);
        }
        if let Some(tr) = &self.trc {
            tr.attribute(bucket, cycle, n);
        }
    }

    /// Land this tick in exactly one attribution bucket.
    fn attribute_cycle(&self, progress: bool, cycle: u64) {
        self.attribute_cycles(progress, cycle, 1);
    }

    /// The configured read latency in cycles.
    pub fn read_latency(&self) -> u64 {
        self.read_latency
    }

    /// Direct access to the wrapped memory (host fill/drain between stages).
    pub fn mem(&mut self) -> &mut PolyMem<u64> {
        &mut self.mem
    }

    /// Enable or disable the memory's compiled-plan fast path (defaults on;
    /// see [`PolyMem::set_planning`]).
    pub fn set_planning(&mut self, enabled: bool) {
        self.mem.set_planning(enabled);
    }

    /// Plan-cache activity of the wrapped memory.
    pub fn plan_stats(&self) -> polymem::PlanCacheStats {
        self.mem.plan_stats()
    }

    /// Region-plan-cache activity of the wrapped memory.
    pub fn region_plan_stats(&self) -> polymem::RegionPlanCacheStats {
        self.mem.region_plan_stats()
    }

    /// Attach a region port: whole-region read requests pop from
    /// `region_req` and the region's elements (canonical order) emerge on
    /// `region_resp` after `ceil(len / lanes)` access cycles plus the read
    /// latency. The region engine shares port 0's datapath, so a region
    /// transfer and per-access reads on port 0 serialize against each other.
    ///
    /// Host-side, the transfer replays the compiled plan's run table —
    /// unit-stride segments as block moves, the rest through the chunked
    /// strided gather — so wall-clock per modeled cycle tracks the
    /// coalesced replay, not a per-element loop. The *cycle* model is
    /// unchanged: coalescing is a host-bandwidth optimisation, the DFE
    /// burst still costs one parallel access per `lanes` elements.
    pub fn attach_region_port(
        &mut self,
        region_req: StreamRef<RegionRequest>,
        region_resp: StreamRef<RegionResponse>,
    ) {
        self.region_req = Some(region_req);
        self.region_resp = Some(region_resp);
    }

    /// Attach a region-write port: whole-region write bursts pop from
    /// `req` and commit on acceptance, occupying the write datapath for
    /// `ceil(len / lanes)` cycles (one parallel write access per cycle).
    /// Per-access writes stall while a burst is draining.
    pub fn attach_region_write_port(&mut self, req: StreamRef<RegionWriteRequest>) {
        self.region_write_req = Some(req);
    }

    /// Attach a fused-copy port: `(src, dst)` bursts pop from `req`, the
    /// copy executes through the compiled region plans on acceptance, and a
    /// completion token (elements moved) emerges on `resp` after
    /// `ceil(len / lanes)` access cycles plus the read latency. The copy
    /// occupies port 0's read datapath and the write datapath for the
    /// burst's access cycles, so per-access traffic on either serializes
    /// against it.
    pub fn attach_region_copy_port(
        &mut self,
        req: StreamRef<RegionCopyRequest>,
        resp: StreamRef<RegionCopyResponse>,
    ) {
        self.region_copy_req = Some(req);
        self.region_copy_resp = Some(resp);
    }

    /// Record burst activity into `tracer` (`burst:<kind> len=<n>` events
    /// under this kernel's name).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    fn trace_burst(&self, cycle: u64, kind: &str, len: usize, access_cycles: u64) {
        if let Some(t) = &self.tracer {
            // Lazy record: a disabled tracer costs one flag check — no
            // clone of the kernel name, no format!.
            t.record_with(cycle, &self.name, || format!("burst:{kind} len={len}"));
        }
        if let Some(tr) = &self.trc {
            // The burst occupies its datapath for `access_cycles` starting
            // now; the span covers exactly that window.
            let k = match kind {
                "read" => 0,
                "write" => 1,
                _ => 2,
            };
            tr.burst_writers[k].span_at(cycle, cycle + access_cycles, tr.burst_names[k]);
        }
    }

    /// Region reads served so far.
    pub fn region_reads_served(&self) -> u64 {
        self.region_reads_served
    }

    /// Region write bursts served so far.
    pub fn region_writes_served(&self) -> u64 {
        self.region_writes_served
    }

    /// Fused copy bursts served so far.
    pub fn region_copies_served(&self) -> u64 {
        self.region_copies_served
    }

    /// Errors accumulated from invalid requests.
    pub fn errors(&self) -> &[PolyMemError] {
        &self.errors
    }

    /// Parallel reads served so far.
    pub fn reads_served(&self) -> u64 {
        self.reads_served
    }

    /// Parallel writes served so far.
    pub fn writes_served(&self) -> u64 {
        self.writes_served
    }

    /// Whether all read pipelines are drained and no requests are queued.
    pub fn pipelines_empty(&self) -> bool {
        self.pipelines.iter().all(DelayLine::is_empty)
            && self.read_req.iter().all(|s| s.borrow().is_empty())
            && self.write_req.borrow().is_empty()
            && self.region_inflight.is_none()
            && self.copy_inflight.is_none()
            && self
                .region_req
                .as_ref()
                .is_none_or(|s| s.borrow().is_empty())
            && self
                .region_write_req
                .as_ref()
                .is_none_or(|s| s.borrow().is_empty())
            && self
                .region_copy_req
                .as_ref()
                .is_none_or(|s| s.borrow().is_empty())
    }
}

impl Kernel for PolyMemKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, cycle: u64) {
        // Whether the datapath makes progress this tick (for attribution:
        // any consumed request or delivered result counts).
        let mut progress = false;
        // 1. Deliver read results whose latency has elapsed (head-of-line;
        //    stalls if the response FIFO is full, as the stream interconnect
        //    would).
        for (pipe, resp) in self.pipelines.iter_mut().zip(&self.read_resp) {
            if resp.borrow().can_push() {
                if let Some(data) = pipe.pop_ready(cycle) {
                    resp.borrow_mut().push(data);
                    progress = true;
                }
            }
        }
        // 2. Region engine: deliver a finished burst, then accept the next
        //    region request. A region of `len` elements costs
        //    `ceil(len / lanes)` access cycles (one parallel access per
        //    cycle) before the pipeline latency — the whole burst is one
        //    compiled gather, so the model charges cycles without paying any
        //    per-access routing work.
        if let Some((ready, _)) = self.region_inflight {
            let can_push = self
                .region_resp
                .as_ref()
                .is_some_and(|s| s.borrow().can_push());
            if cycle >= ready && can_push {
                let (_, data) = self.region_inflight.take().unwrap();
                self.region_resp.as_ref().unwrap().borrow_mut().push(data);
                progress = true;
            }
        }
        let mut region_busy = matches!(&self.region_inflight,
            Some((ready, _)) if cycle < ready.saturating_sub(self.read_latency));
        if self.region_inflight.is_none() && cycle >= self.copy_busy_until {
            if let Some(req) = &self.region_req {
                if let Some(region) = req.borrow_mut().pop() {
                    progress = true;
                    match self.mem.read_region(0, &region) {
                        Ok(data) => {
                            let lanes = self.mem.config().lanes();
                            let access_cycles = region.len().div_ceil(lanes).max(1) as u64;
                            self.region_inflight =
                                Some((cycle + access_cycles + self.read_latency, data));
                            self.region_reads_served += 1;
                            self.reads_served += region.len().div_ceil(lanes) as u64;
                            self.trace_burst(cycle, "read", region.len(), access_cycles);
                        }
                        Err(e) => self.errors.push(e),
                    }
                }
            }
        }
        // 2b. Copy engine: deliver a finished burst's completion token, then
        //     accept the next fused copy. A copy of `len` elements occupies
        //     port 0's read datapath AND the write datapath for
        //     `ceil(len / lanes)` cycles (one parallel access streamed from
        //     the read side into the write side per cycle); the completion
        //     token emerges after the read latency on top.
        if let Some((ready, moved)) = self.copy_inflight {
            let can_push = self
                .region_copy_resp
                .as_ref()
                .is_some_and(|s| s.borrow().can_push());
            if cycle >= ready && can_push {
                self.copy_inflight = None;
                self.region_copy_resp
                    .as_ref()
                    .unwrap()
                    .borrow_mut()
                    .push(moved);
                progress = true;
            }
        }
        if self.copy_inflight.is_none()
            && !region_busy
            && cycle >= self.copy_busy_until
            && cycle >= self.write_busy_until
        {
            if let Some(req) = &self.region_copy_req {
                if let Some((src, dst)) = req.borrow_mut().pop() {
                    progress = true;
                    match self.mem.copy_region(0, &src, &dst) {
                        Ok(()) => {
                            let lanes = self.mem.config().lanes();
                            let access_cycles = src.len().div_ceil(lanes).max(1) as u64;
                            self.copy_busy_until = cycle + access_cycles;
                            self.write_busy_until = cycle + access_cycles;
                            self.copy_inflight =
                                Some((cycle + access_cycles + self.read_latency, src.len() as u64));
                            self.region_copies_served += 1;
                            self.reads_served += access_cycles;
                            self.writes_served += access_cycles;
                            self.trace_burst(cycle, "copy", src.len(), access_cycles);
                        }
                        Err(e) => self.errors.push(e),
                    }
                }
            }
        }
        region_busy = region_busy || cycle < self.copy_busy_until;
        // 2c. Region-write engine: accept a whole-region write burst once
        //     the write datapath is free; it commits on acceptance and
        //     occupies the datapath for `ceil(len / lanes)` cycles.
        if cycle >= self.write_busy_until {
            if let Some(req) = &self.region_write_req {
                if let Some((region, values)) = req.borrow_mut().pop() {
                    progress = true;
                    match self.mem.write_region(&region, &values) {
                        Ok(()) => {
                            let lanes = self.mem.config().lanes();
                            let access_cycles = region.len().div_ceil(lanes).max(1) as u64;
                            self.write_busy_until = cycle + access_cycles;
                            self.region_writes_served += 1;
                            self.writes_served += access_cycles;
                            self.trace_burst(cycle, "write", region.len(), access_cycles);
                        }
                        Err(e) => self.errors.push(e),
                    }
                }
            }
        }
        // 3. Issue one read per port (reads see pre-write state: they are
        //    served before this cycle's write commits). Only issue when the
        //    response path has room for what is already in flight. Port 0
        //    shares its datapath with the region engine and stalls while a
        //    region burst (read or copy) is streaming.
        for port in 0..self.read_req.len() {
            if port == 0 && region_busy {
                continue;
            }
            let room = {
                let resp = self.read_resp[port].borrow();
                resp.can_push()
            };
            if !room && self.pipelines[port].in_flight() as u64 >= self.read_latency {
                continue; // fully backed up
            }
            let req = self.read_req[port].borrow_mut().pop();
            if let Some(access) = req {
                progress = true;
                match self.mem.read_into(port, access, &mut self.scratch) {
                    Ok(()) => {
                        self.pipelines[port].push(cycle, self.scratch.clone());
                        self.reads_served += 1;
                    }
                    Err(e) => self.errors.push(e),
                }
            }
        }
        // 4. Commit one write — unless the write datapath is still draining
        //    a region-write or copy burst.
        if cycle >= self.write_busy_until {
            let w = self.write_req.borrow_mut().pop();
            if let Some((access, data)) = w {
                progress = true;
                match self.mem.write(access, &data) {
                    Ok(()) => self.writes_served += 1,
                    Err(e) => self.errors.push(e),
                }
            }
        }
        self.attribute_cycle(progress, cycle);
    }

    fn is_idle(&self) -> bool {
        self.pipelines_empty()
    }

    fn next_event(&self) -> Option<u64> {
        fn merge(wake: &mut Option<u64>, c: u64) {
            *wake = Some(wake.map_or(c, |w| w.min(c)));
        }
        let mut wake: Option<u64> = None;
        // Pending deliveries are self-scheduled only while their response
        // FIFO has room; a full FIFO means the wake comes from a consumer's
        // pop (external), and the consumer's own next_event covers it.
        for (pipe, resp) in self.pipelines.iter().zip(&self.read_resp) {
            if let Some(ready) = pipe.next_ready() {
                if resp.borrow().can_push() {
                    merge(&mut wake, ready);
                }
            }
        }
        if let Some((ready, _)) = &self.region_inflight {
            if self
                .region_resp
                .as_ref()
                .is_some_and(|s| s.borrow().can_push())
            {
                merge(&mut wake, *ready);
            }
        }
        if let Some((ready, _)) = &self.copy_inflight {
            if self
                .region_copy_resp
                .as_ref()
                .is_some_and(|s| s.borrow().can_push())
            {
                merge(&mut wake, *ready);
            }
        }
        // Queued requests wake when the engine that serves them frees up.
        // These wakes may be early (another gate can still hold the request
        // back), which safely degenerates to per-cycle ticking — only a
        // *late* wake would break cycle parity.
        let region_busy_end = self
            .region_inflight
            .as_ref()
            .map_or(0, |(ready, _)| ready.saturating_sub(self.read_latency))
            .max(self.copy_busy_until);
        for (port, req) in self.read_req.iter().enumerate() {
            if req.borrow().is_empty() {
                continue;
            }
            let room = self.read_resp[port].borrow().can_push();
            if !room && self.pipelines[port].in_flight() as u64 >= self.read_latency {
                continue; // fully backed up: only a consumer pop unblocks
            }
            merge(&mut wake, if port == 0 { region_busy_end } else { 0 });
        }
        if !self.write_req.borrow().is_empty() {
            merge(&mut wake, self.write_busy_until);
        }
        if self
            .region_req
            .as_ref()
            .is_some_and(|s| !s.borrow().is_empty())
            && self.region_inflight.is_none()
        {
            merge(&mut wake, self.copy_busy_until);
        }
        if self
            .region_write_req
            .as_ref()
            .is_some_and(|s| !s.borrow().is_empty())
        {
            merge(&mut wake, self.write_busy_until);
        }
        if self
            .region_copy_req
            .as_ref()
            .is_some_and(|s| !s.borrow().is_empty())
            && self.copy_inflight.is_none()
        {
            merge(&mut wake, region_busy_end.max(self.write_busy_until));
        }
        wake
    }

    fn skip_to(&mut self, from: u64, to: u64) {
        // The scheduler only fast-forwards when no kernel can act, so the
        // ticked loop would have recorded `to - from` identical no-progress
        // cycles here; account them in one bulk add.
        self.attribute_cycles(false, from, to - from);
    }

    fn busy_reason(&self) -> Option<String> {
        if self.is_idle() {
            return None;
        }
        let mut parts = Vec::new();
        let inflight: usize = self.pipelines.iter().map(DelayLine::in_flight).sum();
        if inflight > 0 {
            parts.push(format!("{inflight} read(s) in flight"));
        }
        let queued: usize = self.read_req.iter().map(|s| s.borrow().len()).sum();
        if queued > 0 {
            parts.push(format!("{queued} read request(s) queued"));
        }
        let writes = self.write_req.borrow().len();
        if writes > 0 {
            parts.push(format!("{writes} write(s) queued"));
        }
        if self.region_inflight.is_some() {
            parts.push("region burst streaming".into());
        }
        if self.copy_inflight.is_some() {
            parts.push("copy burst streaming".into());
        }
        let queued_bursts = self.region_req.as_ref().map_or(0, |s| s.borrow().len())
            + self
                .region_write_req
                .as_ref()
                .map_or(0, |s| s.borrow().len())
            + self
                .region_copy_req
                .as_ref()
                .map_or(0, |s| s.borrow().len());
        if queued_bursts > 0 {
            parts.push(format!("{queued_bursts} burst request(s) queued"));
        }
        Some(parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Manager;
    use crate::stream::stream;
    use polymem::AccessScheme;
    use std::rc::Rc;

    #[allow(clippy::type_complexity)]
    fn setup(
        ports: usize,
        latency: u64,
    ) -> (
        Manager,
        Vec<StreamRef<ReadRequest>>,
        Vec<StreamRef<ReadResponse>>,
        StreamRef<WriteRequest>,
    ) {
        let cfg = PolyMemConfig::new(16, 16, 2, 4, AccessScheme::RoCo, ports).unwrap();
        let rq: Vec<_> = (0..ports).map(|p| stream(format!("rq{p}"), 64)).collect();
        let rs: Vec<_> = (0..ports).map(|p| stream(format!("rs{p}"), 64)).collect();
        let wq = stream("wq", 64);
        let k = PolyMemKernel::new(
            "polymem",
            cfg,
            latency,
            rq.clone(),
            rs.clone(),
            Rc::clone(&wq),
        )
        .unwrap();
        let mut m = Manager::new(120.0);
        m.add_kernel(Box::new(k));
        (m, rq, rs, wq)
    }

    #[test]
    fn read_latency_is_exact() {
        let (mut m, rq, rs, wq) = setup(1, 14);
        let data: Vec<u64> = (0..8).collect();
        wq.borrow_mut()
            .push((ParallelAccess::row(0, 0), data.clone()));
        m.run_cycles(1); // write commits at cycle 0
        rq[0].borrow_mut().push(ParallelAccess::row(0, 0));
        // Request pops at cycle 1; result ready at cycle 1 + 14 = 15,
        // delivered by the tick of cycle 15.
        m.run_cycles(14); // through cycle 14: not yet delivered
        assert!(rs[0].borrow().is_empty());
        m.run_cycles(1); // cycle 15 delivers
        assert_eq!(rs[0].borrow_mut().pop(), Some(data));
    }

    #[test]
    fn fully_pipelined_one_access_per_cycle() {
        let (mut m, rq, rs, wq) = setup(1, 14);
        for r in 0..8u64 {
            let row: Vec<u64> = (0..8).map(|k| r * 10 + k).collect();
            wq.borrow_mut()
                .push((ParallelAccess::row(r as usize, 0), row));
        }
        m.run_cycles(8);
        for r in 0..8 {
            rq[0].borrow_mut().push(ParallelAccess::row(r, 0));
        }
        // 8 requests + 14 latency + slack.
        m.run_cycles(8 + 14 + 2);
        let mut got = Vec::new();
        while let Some(v) = rs[0].borrow_mut().pop() {
            got.push(v[0]);
        }
        assert_eq!(got, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn same_cycle_read_write_sees_old() {
        let (mut m, rq, rs, wq) = setup(1, 0);
        let old: Vec<u64> = vec![1; 8];
        let new: Vec<u64> = vec![2; 8];
        wq.borrow_mut()
            .push((ParallelAccess::row(0, 0), old.clone()));
        m.run_cycles(1);
        // Read and write of the same row land in the same cycle.
        rq[0].borrow_mut().push(ParallelAccess::row(0, 0));
        wq.borrow_mut()
            .push((ParallelAccess::row(0, 0), new.clone()));
        m.run_cycles(2);
        assert_eq!(rs[0].borrow_mut().pop(), Some(old), "read-old semantics");
        // Next read sees the new value.
        rq[0].borrow_mut().push(ParallelAccess::row(0, 0));
        m.run_cycles(2);
        assert_eq!(rs[0].borrow_mut().pop(), Some(new));
    }

    #[test]
    fn invalid_request_surfaces_error() {
        let cfg = PolyMemConfig::new(16, 16, 2, 4, AccessScheme::ReO, 1).unwrap();
        let rq = vec![stream("rq", 8)];
        let rs = vec![stream("rs", 8)];
        let wq = stream("wq", 8);
        let mut k = PolyMemKernel::new("pm", cfg, 0, rq.clone(), rs, Rc::clone(&wq)).unwrap();
        rq[0].borrow_mut().push(ParallelAccess::row(0, 0)); // ReO: rows unsupported
        k.tick(0);
        assert_eq!(k.errors().len(), 1);
        assert_eq!(k.reads_served(), 0);
    }

    #[test]
    fn two_ports_independent() {
        let (mut m, rq, rs, wq) = setup(2, 3);
        wq.borrow_mut()
            .push((ParallelAccess::row(0, 0), (0..8).collect()));
        wq.borrow_mut()
            .push((ParallelAccess::row(1, 0), (10..18).collect()));
        m.run_cycles(2);
        rq[0].borrow_mut().push(ParallelAccess::row(0, 0));
        rq[1].borrow_mut().push(ParallelAccess::row(1, 0));
        m.run_cycles(6);
        assert_eq!(rs[0].borrow_mut().pop().unwrap()[0], 0);
        assert_eq!(rs[1].borrow_mut().pop().unwrap()[0], 10);
    }

    #[test]
    fn kernel_reads_ride_the_plan_cache() {
        let cfg = PolyMemConfig::new(16, 16, 2, 4, AccessScheme::RoCo, 1).unwrap();
        let rq = vec![stream("rq", 64)];
        let rs = vec![stream("rs", 64)];
        let wq = stream("wq", 64);
        let mut k =
            PolyMemKernel::new("pm", cfg, 0, rq.clone(), rs.clone(), Rc::clone(&wq)).unwrap();
        for r in 0..8u64 {
            let row: Vec<u64> = (0..8).map(|x| r * 10 + x).collect();
            wq.borrow_mut()
                .push((ParallelAccess::row(r as usize, 0), row));
            k.tick(r);
        }
        // Same residue class every row access with i < 8 < p*q... rows 0..8
        // differ mod 8 in i, so 8 distinct classes; re-reading them hits.
        for pass in 0..2u64 {
            for r in 0..8u64 {
                rq[0].borrow_mut().push(ParallelAccess::row(r as usize, 0));
                k.tick(100 + pass * 8 + r);
            }
        }
        let stats = k.plan_stats();
        assert!(
            stats.hits >= 8,
            "second pass replays cached plans: {stats:?}"
        );
        // Parity: drain planned results, then replay interpreted.
        let mut planned = Vec::new();
        k.tick(900); // flush delivery
        while let Some(v) = rs[0].borrow_mut().pop() {
            planned.push(v);
        }
        k.set_planning(false);
        rq[0].borrow_mut().push(ParallelAccess::row(3, 0));
        k.tick(901);
        k.tick(902);
        let interp = rs[0].borrow_mut().pop().unwrap();
        assert_eq!(interp, planned[3], "interpreted path agrees with planned");
    }

    #[test]
    fn region_port_streams_whole_region() {
        use polymem::RegionShape;
        let cfg = PolyMemConfig::new(16, 16, 2, 4, AccessScheme::RoCo, 1).unwrap();
        let rq = vec![stream("rq", 8)];
        let rs = vec![stream("rs", 8)];
        let wq = stream("wq", 8);
        let gq = stream("gq", 8);
        let gs = stream("gs", 8);
        let mut k = PolyMemKernel::new("pm", cfg, 2, rq, rs, wq).unwrap();
        k.attach_region_port(Rc::clone(&gq), Rc::clone(&gs));
        for r in 0..16usize {
            for c in 0..16usize {
                k.mem().set(r, c, (r * 16 + c) as u64).unwrap();
            }
        }
        // A 4x8 block = 32 elements = 4 accesses of 8 lanes. Issued at
        // cycle 0 -> ready at 0 + 4 + 2 = 6, delivered by the tick of 6.
        let region = Region::new("b", 2, 0, RegionShape::Block { rows: 4, cols: 8 });
        gq.borrow_mut().push(region.clone());
        for cycle in 0..6 {
            k.tick(cycle);
            assert!(gs.borrow().is_empty(), "not before latency elapses");
        }
        k.tick(6);
        let got = gs.borrow_mut().pop().expect("delivered at cycle 6");
        let want: Vec<u64> = region
            .coords_iter()
            .unwrap()
            .map(|(i, j)| (i * 16 + j) as u64)
            .collect();
        assert_eq!(got, want);
        assert_eq!(k.region_reads_served(), 1);
        assert_eq!(k.reads_served(), 4, "burst charged as 4 parallel accesses");
        // The transfer compiled exactly one region plan; replaying it hits.
        gq.borrow_mut().push(region);
        for cycle in 7..20 {
            k.tick(cycle);
        }
        let rp = k.region_plan_stats();
        assert_eq!(rp.misses, 1, "{rp:?}");
        assert!(rp.hits >= 1, "{rp:?}");
    }

    #[test]
    fn region_port_parity_under_interleaved_layout() {
        use polymem::{BankLayout, RegionShape};
        // Same burst as `region_port_streams_whole_region`, but the backing
        // store is bank-interleaved: the run-coalesced replay must deliver
        // the identical canonical stream and the identical cycle timing.
        let cfg = PolyMemConfig::new(16, 16, 2, 4, AccessScheme::RoCo, 1)
            .unwrap()
            .with_layout(BankLayout::AddrInterleaved);
        let rq = vec![stream("rq", 8)];
        let rs = vec![stream("rs", 8)];
        let wq = stream("wq", 8);
        let gq = stream("gq", 8);
        let gs = stream("gs", 8);
        let mut k = PolyMemKernel::new("pm", cfg, 2, rq, rs, wq).unwrap();
        k.attach_region_port(Rc::clone(&gq), Rc::clone(&gs));
        for r in 0..16usize {
            for c in 0..16usize {
                k.mem().set(r, c, (r * 16 + c) as u64).unwrap();
            }
        }
        let region = Region::new("b", 2, 0, RegionShape::Block { rows: 4, cols: 8 });
        gq.borrow_mut().push(region.clone());
        for cycle in 0..=6 {
            k.tick(cycle);
        }
        let got = gs.borrow_mut().pop().expect("delivered at cycle 6");
        let want: Vec<u64> = region
            .coords_iter()
            .unwrap()
            .map(|(i, j)| (i * 16 + j) as u64)
            .collect();
        assert_eq!(got, want, "interleaved layout changes storage, not data");
        assert_eq!(k.reads_served(), 4, "cycle model is layout-independent");
    }

    #[test]
    fn region_write_port_commits_burst_and_occupies_write_path() {
        use polymem::RegionShape;
        let cfg = PolyMemConfig::new(16, 16, 2, 4, AccessScheme::RoCo, 1).unwrap();
        let wq = stream("wq", 8);
        let bq = stream("bq", 8);
        let mut k = PolyMemKernel::new(
            "pm",
            cfg,
            2,
            vec![stream("rq", 8)],
            vec![stream("rs", 8)],
            Rc::clone(&wq),
        )
        .unwrap();
        k.attach_region_write_port(Rc::clone(&bq));
        // A 4x8 block burst (4 access cycles) plus a per-access write that
        // must wait for the burst to drain.
        let region = Region::new("b", 2, 0, RegionShape::Block { rows: 4, cols: 8 });
        let vals: Vec<u64> = (0..32).collect();
        bq.borrow_mut().push((region.clone(), vals.clone()));
        wq.borrow_mut()
            .push((ParallelAccess::row(0, 0), vec![9; 8]));
        k.tick(0); // burst accepted and committed; write path busy 4 cycles
        assert_eq!(k.region_writes_served(), 1);
        assert_eq!(k.writes_served(), 4, "burst charged as 4 write accesses");
        for (t, (i, j)) in region.coords_iter().unwrap().enumerate() {
            assert_eq!(k.mem().get(i, j).unwrap(), vals[t]);
        }
        // Cycles 1..3: the per-access write stalls behind the burst.
        for c in 1..4 {
            k.tick(c);
            assert_eq!(k.mem().get(0, 0).unwrap(), 0, "stalled at cycle {c}");
        }
        k.tick(4); // write path free again
        assert_eq!(k.mem().get(0, 0).unwrap(), 9);
        assert_eq!(k.writes_served(), 5);
    }

    #[test]
    fn region_copy_port_streams_and_completes_after_latency() {
        use polymem::RegionShape;
        let cfg = PolyMemConfig::new(16, 16, 2, 4, AccessScheme::RoCo, 1).unwrap();
        let cq = stream("cq", 8);
        let cs = stream("cs", 8);
        let mut k = PolyMemKernel::new(
            "pm",
            cfg,
            2,
            vec![stream("rq", 8)],
            vec![stream("rs", 8)],
            stream("wq", 8),
        )
        .unwrap();
        k.attach_region_copy_port(Rc::clone(&cq), Rc::clone(&cs));
        let tracer = crate::trace::Tracer::new(64);
        k.set_tracer(tracer.clone());
        for r in 0..16usize {
            for c in 0..16usize {
                k.mem().set(r, c, (r * 16 + c) as u64).unwrap();
            }
        }
        // 4x8 block copy = 4 access cycles; token at 0 + 4 + 2 = 6.
        let src = Region::new("s", 2, 0, RegionShape::Block { rows: 4, cols: 8 });
        let dst = Region::new("d", 10, 8, RegionShape::Block { rows: 4, cols: 8 });
        cq.borrow_mut().push((src.clone(), dst.clone()));
        for cycle in 0..6 {
            k.tick(cycle);
            assert!(cs.borrow().is_empty(), "no token before cycle 6");
        }
        k.tick(6);
        assert_eq!(cs.borrow_mut().pop(), Some(32), "token = elements moved");
        assert_eq!(k.region_copies_served(), 1);
        assert_eq!(k.reads_served(), 4);
        assert_eq!(k.writes_served(), 4);
        for (t, (i, j)) in dst.coords_iter().unwrap().enumerate() {
            let (si, sj) = src.coords_iter().unwrap().nth(t).unwrap();
            assert_eq!(k.mem().get(i, j).unwrap(), (si * 16 + sj) as u64);
        }
        let s = crate::trace::burst_summary(&tracer, "pm");
        assert_eq!(s.copies, 1);
        assert_eq!(s.elements, 32);
    }

    #[test]
    fn copy_errors_surface_not_panic() {
        use polymem::RegionShape;
        let cfg = PolyMemConfig::new(16, 16, 2, 4, AccessScheme::RoCo, 1).unwrap();
        let cq = stream("cq", 8);
        let cs = stream("cs", 8);
        let mut k = PolyMemKernel::new(
            "pm",
            cfg,
            0,
            vec![stream("rq", 8)],
            vec![stream("rs", 8)],
            stream("wq", 8),
        )
        .unwrap();
        k.attach_region_copy_port(Rc::clone(&cq), Rc::clone(&cs));
        // Shape mismatch: row16 -> col8.
        cq.borrow_mut().push((
            Region::new("s", 0, 0, RegionShape::Row { len: 16 }),
            Region::new("d", 0, 0, RegionShape::Col { len: 8 }),
        ));
        k.tick(0);
        assert_eq!(k.errors().len(), 1);
        assert_eq!(k.region_copies_served(), 0);
        assert!(cs.borrow().is_empty());
        assert!(k.pipelines_empty(), "failed burst leaves nothing in flight");
    }

    #[test]
    fn region_errors_surface_not_panic() {
        use polymem::RegionShape;
        let cfg = PolyMemConfig::new(16, 16, 2, 4, AccessScheme::RoCo, 1).unwrap();
        let gq = stream("gq", 8);
        let gs = stream("gs", 8);
        let mut k = PolyMemKernel::new(
            "pm",
            cfg,
            0,
            vec![stream("rq", 8)],
            vec![stream("rs", 8)],
            stream("wq", 8),
        )
        .unwrap();
        k.attach_region_port(Rc::clone(&gq), Rc::clone(&gs));
        // Out of bounds block.
        gq.borrow_mut().push(Region::new(
            "oob",
            14,
            0,
            RegionShape::Block { rows: 4, cols: 8 },
        ));
        k.tick(0);
        assert_eq!(k.errors().len(), 1);
        assert_eq!(k.region_reads_served(), 0);
        assert!(gs.borrow().is_empty());
    }

    #[test]
    fn cycle_attribution_sums_to_ticks_exactly() {
        use polymem::telemetry::TelemetryRegistry;
        use std::cell::Cell;
        let cfg = PolyMemConfig::new(16, 16, 2, 4, AccessScheme::RoCo, 1).unwrap();
        let rq = vec![stream("rq", 8)];
        let rs = vec![stream("rs", 8)];
        let wq = stream("wq", 8);
        let mut k =
            PolyMemKernel::new("pm", cfg, 4, rq.clone(), rs.clone(), Rc::clone(&wq)).unwrap();
        let reg = TelemetryRegistry::new();
        k.attach_telemetry(&reg);
        let pacing = Rc::new(Cell::new(false));
        k.set_pcie_flag(Rc::clone(&pacing));

        // Cycle 0: write commits (active). Cycle 1: read issues (active).
        // Cycles 2..5: the read drains the 4-cycle pipeline (pipeline).
        // Cycle 5: delivery (active). Cycles 6..8: idle. Cycles 9..11: the
        // pacer withholds data (pcie).
        wq.borrow_mut()
            .push((ParallelAccess::row(0, 0), vec![7; 8]));
        k.tick(0);
        rq[0].borrow_mut().push(ParallelAccess::row(0, 0));
        for c in 1..9 {
            k.tick(c);
        }
        pacing.set(true);
        for c in 9..12 {
            k.tick(c);
        }
        pacing.set(false);

        let snap = reg.snapshot();
        let cycles = |state: &str| {
            snap.counter_value(
                "dfe_kernel_cycles_total",
                &[("kernel", "pm"), ("state", state)],
            )
            .unwrap()
        };
        let (active, contention, pipeline, pcie, idle) = (
            cycles("active"),
            cycles("contention"),
            cycles("pipeline"),
            cycles("pcie"),
            cycles("idle"),
        );
        assert_eq!(
            active + contention + pipeline + pcie + idle,
            12,
            "every tick lands in exactly one bucket"
        );
        assert_eq!(active, 3, "write, read issue, read delivery");
        assert_eq!(pipeline, 3, "latency drain cycles 2..5");
        assert_eq!(pcie, 3, "pacer-flagged cycles");
        assert_eq!(idle, 3);
        assert_eq!(contention, 0);
        // The wrapped memory's datapath counters ride the same registry.
        assert!(snap
            .counter_value("polymem_uniform_accesses_total", &[])
            .is_some_and(|v| v >= 2));
    }

    #[test]
    fn attribution_counts_burst_contention() {
        use polymem::telemetry::TelemetryRegistry;
        use polymem::RegionShape;
        let cfg = PolyMemConfig::new(16, 16, 2, 4, AccessScheme::RoCo, 1).unwrap();
        let wq = stream("wq", 8);
        let bq = stream("bq", 8);
        let mut k = PolyMemKernel::new(
            "pm",
            cfg,
            2,
            vec![stream("rq", 8)],
            vec![stream("rs", 8)],
            Rc::clone(&wq),
        )
        .unwrap();
        k.attach_region_write_port(Rc::clone(&bq));
        let reg = TelemetryRegistry::new();
        k.attach_telemetry(&reg);
        // A 4-access-cycle burst plus a queued per-access write: the write
        // stalls behind the burst for cycles 1..3 (contention), lands at 4.
        let region = Region::new("b", 2, 0, RegionShape::Block { rows: 4, cols: 8 });
        bq.borrow_mut().push((region, (0..32).collect()));
        wq.borrow_mut()
            .push((ParallelAccess::row(0, 0), vec![9; 8]));
        for c in 0..5 {
            k.tick(c);
        }
        let snap = reg.snapshot();
        let cycles = |state: &str| {
            snap.counter_value(
                "dfe_kernel_cycles_total",
                &[("kernel", "pm"), ("state", state)],
            )
            .unwrap()
        };
        assert_eq!(cycles("active"), 2, "burst accept + stalled write landing");
        assert_eq!(cycles("contention"), 3, "write blocked behind the burst");
        assert_eq!(
            cycles("active")
                + cycles("contention")
                + cycles("pipeline")
                + cycles("pcie")
                + cycles("idle"),
            5
        );
    }

    #[test]
    #[cfg(not(feature = "tracing-off"))]
    fn tracing_spans_reconcile_exactly_with_attribution_counters() {
        use polymem::telemetry::TelemetryRegistry;
        use polymem::tracing::TraceJournal;
        use std::cell::Cell;
        // The same scenario as `cycle_attribution_sums_to_ticks_exactly`,
        // with a journal attached: the per-state span sums on the kernel's
        // track must equal the dfe_kernel_cycles_total buckets exactly.
        let cfg = PolyMemConfig::new(16, 16, 2, 4, AccessScheme::RoCo, 1).unwrap();
        let rq = vec![stream("rq", 8)];
        let rs = vec![stream("rs", 8)];
        let wq = stream("wq", 8);
        let mut k =
            PolyMemKernel::new("pm", cfg, 4, rq.clone(), rs.clone(), Rc::clone(&wq)).unwrap();
        let reg = TelemetryRegistry::new();
        k.attach_telemetry(&reg);
        let journal = TraceJournal::new(1024);
        k.attach_tracing(&journal);
        let pacing = Rc::new(Cell::new(false));
        k.set_pcie_flag(Rc::clone(&pacing));
        wq.borrow_mut()
            .push((ParallelAccess::row(0, 0), vec![7; 8]));
        k.tick(0);
        rq[0].borrow_mut().push(ParallelAccess::row(0, 0));
        for c in 1..9 {
            k.tick(c);
        }
        pacing.set(true);
        for c in 9..12 {
            k.tick(c);
        }
        pacing.set(false);
        k.finish_tracing();

        let snap = journal.snapshot();
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.validate_spans(), Vec::<String>::new());
        let by_state = snap.span_cycles_by_name("pm");
        let reg_snap = reg.snapshot();
        for state in ["active", "contention", "pipeline", "pcie", "idle"] {
            let counted = reg_snap
                .counter_value(
                    "dfe_kernel_cycles_total",
                    &[("kernel", "pm"), ("state", state)],
                )
                .unwrap();
            assert_eq!(
                by_state.get(state).copied().unwrap_or(0),
                counted,
                "span sum for state {state} must equal the counter"
            );
        }
        let total: u64 = by_state.values().sum();
        assert_eq!(total, 12, "the attribution strip is gap-free");
        // Runs coalesce: 12 ticks produced far fewer spans than ticks.
        let strip: Vec<_> = snap
            .spans()
            .into_iter()
            .filter(|s| s.track == "pm")
            .collect();
        assert!(strip.len() < 10, "contiguous same-state runs coalesce");
    }

    #[test]
    #[cfg(not(feature = "tracing-off"))]
    fn burst_accepts_become_spans_on_per_kind_tracks() {
        use polymem::tracing::TraceJournal;
        use polymem::RegionShape;
        let cfg = PolyMemConfig::new(16, 16, 2, 4, AccessScheme::RoCo, 1).unwrap();
        let wq = stream("wq", 8);
        let bq = stream("bq", 8);
        let mut k = PolyMemKernel::new(
            "pm",
            cfg,
            2,
            vec![stream("rq", 8)],
            vec![stream("rs", 8)],
            Rc::clone(&wq),
        )
        .unwrap();
        k.attach_region_write_port(Rc::clone(&bq));
        let journal = TraceJournal::new(256);
        k.attach_tracing(&journal);
        // A 4x8 block burst = 4 access cycles, accepted at cycle 0.
        let region = Region::new("b", 2, 0, RegionShape::Block { rows: 4, cols: 8 });
        bq.borrow_mut().push((region, (0..32).collect()));
        for c in 0..5 {
            k.tick(c);
        }
        k.finish_tracing();
        let snap = journal.snapshot();
        assert_eq!(snap.validate_spans(), Vec::<String>::new());
        let bursts: Vec<_> = snap
            .spans()
            .into_iter()
            .filter(|s| s.track == "pm/write-bursts")
            .collect();
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].name, "burst:write");
        assert_eq!((bursts[0].begin, bursts[0].end), (0, 4));
        // Detaching stops recording and leaves the journal balanced.
        let before = journal.recorded();
        k.detach_tracing();
        k.tick(5);
        assert_eq!(journal.recorded(), before);
    }

    #[test]
    #[cfg(not(feature = "tracing-off"))]
    fn skip_to_collapses_into_one_idle_span() {
        use polymem::tracing::TraceJournal;
        let cfg = PolyMemConfig::new(16, 16, 2, 4, AccessScheme::RoCo, 1).unwrap();
        let mut k = PolyMemKernel::new(
            "pm",
            cfg,
            2,
            vec![stream("rq", 8)],
            vec![stream("rs", 8)],
            stream("wq", 8),
        )
        .unwrap();
        let journal = TraceJournal::new(64);
        k.attach_tracing(&journal);
        k.tick(0);
        k.skip_to(1, 10_001); // a fast-forwarded quiescent span
        k.finish_tracing();
        let snap = journal.snapshot();
        let idle: Vec<_> = snap
            .spans()
            .into_iter()
            .filter(|s| s.name == "idle")
            .collect();
        assert_eq!(idle.len(), 1, "tick + 10k skipped cycles = one idle span");
        assert_eq!(idle[0].cycles(), 10_001);
    }

    #[test]
    fn idle_when_drained() {
        let (mut m, rq, rs, wq) = setup(1, 5);
        assert_eq!(m.run_until_idle(100), 0);
        wq.borrow_mut()
            .push((ParallelAccess::row(0, 0), vec![9; 8]));
        rq[0].borrow_mut().push(ParallelAccess::row(0, 0));
        let cycles = m.run_until_idle(100);
        assert!((6..100).contains(&cycles), "drained after {cycles}");
        assert!(!rs[0].borrow().is_empty());
    }
}
