//! PolyMem as a pipelined dataflow kernel.
//!
//! Wraps [`polymem::PolyMem`] with the port/timing behaviour of the MaxJ
//! implementation: one parallel access per port per cycle, with read results
//! emerging a fixed number of cycles later (the paper's STREAM design
//! measures this latency at **14 cycles**, "estimated by Maxeler's tools").
//! Within a cycle all reads observe the state *before* that cycle's write
//! commits (read-old port semantics).

use crate::kernel::{DelayLine, Kernel};
use crate::stream::StreamRef;
use polymem::{ParallelAccess, PolyMem, PolyMemConfig, PolyMemError};

/// The read latency of the paper's synthesized design, in cycles.
pub const PAPER_READ_LATENCY: u64 = 14;

/// A read request on a port.
pub type ReadRequest = ParallelAccess;
/// A read response: the `p*q` elements in canonical lane order.
pub type ReadResponse = Vec<u64>;
/// A write request: target access + lane data.
pub type WriteRequest = (ParallelAccess, Vec<u64>);

/// PolyMem wrapped as a ticked kernel with request/response streams.
pub struct PolyMemKernel {
    name: String,
    mem: PolyMem<u64>,
    read_latency: u64,
    read_req: Vec<StreamRef<ReadRequest>>,
    read_resp: Vec<StreamRef<ReadResponse>>,
    pipelines: Vec<DelayLine<ReadResponse>>,
    write_req: StreamRef<WriteRequest>,
    /// Reusable lane buffer: the compiled-plan gather lands here each cycle,
    /// so the steady-state read path performs no routing work per tick.
    scratch: Vec<u64>,
    /// Errors raised by invalid requests (surfaced, not panicking, so fault
    /// injection tests can observe them).
    errors: Vec<PolyMemError>,
    reads_served: u64,
    writes_served: u64,
}

impl PolyMemKernel {
    /// Build the kernel.
    ///
    /// `read_req`/`read_resp` must have one stream per configured read port.
    pub fn new(
        name: impl Into<String>,
        config: PolyMemConfig,
        read_latency: u64,
        read_req: Vec<StreamRef<ReadRequest>>,
        read_resp: Vec<StreamRef<ReadResponse>>,
        write_req: StreamRef<WriteRequest>,
    ) -> polymem::Result<Self> {
        let mem = PolyMem::new(config)?;
        assert_eq!(
            read_req.len(),
            config.read_ports,
            "one read-request stream per port"
        );
        assert_eq!(read_resp.len(), config.read_ports);
        let pipelines = (0..config.read_ports)
            .map(|_| DelayLine::new(read_latency))
            .collect();
        Ok(Self {
            name: name.into(),
            mem,
            read_latency,
            read_req,
            read_resp,
            pipelines,
            write_req,
            scratch: vec![0; config.lanes()],
            errors: Vec::new(),
            reads_served: 0,
            writes_served: 0,
        })
    }

    /// The configured read latency in cycles.
    pub fn read_latency(&self) -> u64 {
        self.read_latency
    }

    /// Direct access to the wrapped memory (host fill/drain between stages).
    pub fn mem(&mut self) -> &mut PolyMem<u64> {
        &mut self.mem
    }

    /// Enable or disable the memory's compiled-plan fast path (defaults on;
    /// see [`PolyMem::set_planning`]).
    pub fn set_planning(&mut self, enabled: bool) {
        self.mem.set_planning(enabled);
    }

    /// Plan-cache activity of the wrapped memory.
    pub fn plan_stats(&self) -> polymem::PlanCacheStats {
        self.mem.plan_stats()
    }

    /// Errors accumulated from invalid requests.
    pub fn errors(&self) -> &[PolyMemError] {
        &self.errors
    }

    /// Parallel reads served so far.
    pub fn reads_served(&self) -> u64 {
        self.reads_served
    }

    /// Parallel writes served so far.
    pub fn writes_served(&self) -> u64 {
        self.writes_served
    }

    /// Whether all read pipelines are drained and no requests are queued.
    pub fn pipelines_empty(&self) -> bool {
        self.pipelines.iter().all(DelayLine::is_empty)
            && self.read_req.iter().all(|s| s.borrow().is_empty())
            && self.write_req.borrow().is_empty()
    }
}

impl Kernel for PolyMemKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, cycle: u64) {
        // 1. Deliver read results whose latency has elapsed (head-of-line;
        //    stalls if the response FIFO is full, as the stream interconnect
        //    would).
        for (pipe, resp) in self.pipelines.iter_mut().zip(&self.read_resp) {
            if resp.borrow().can_push() {
                if let Some(data) = pipe.pop_ready(cycle) {
                    resp.borrow_mut().push(data);
                }
            }
        }
        // 2. Issue one read per port (reads see pre-write state: they are
        //    served before this cycle's write commits). Only issue when the
        //    response path has room for what is already in flight.
        for port in 0..self.read_req.len() {
            let room = {
                let resp = self.read_resp[port].borrow();
                resp.can_push()
            };
            if !room && self.pipelines[port].in_flight() as u64 >= self.read_latency {
                continue; // fully backed up
            }
            let req = self.read_req[port].borrow_mut().pop();
            if let Some(access) = req {
                match self.mem.read_into(port, access, &mut self.scratch) {
                    Ok(()) => {
                        self.pipelines[port].push(cycle, self.scratch.clone());
                        self.reads_served += 1;
                    }
                    Err(e) => self.errors.push(e),
                }
            }
        }
        // 3. Commit one write.
        let w = self.write_req.borrow_mut().pop();
        if let Some((access, data)) = w {
            match self.mem.write(access, &data) {
                Ok(()) => self.writes_served += 1,
                Err(e) => self.errors.push(e),
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.pipelines_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Manager;
    use crate::stream::stream;
    use polymem::AccessScheme;
    use std::rc::Rc;

    #[allow(clippy::type_complexity)]
    fn setup(
        ports: usize,
        latency: u64,
    ) -> (
        Manager,
        Vec<StreamRef<ReadRequest>>,
        Vec<StreamRef<ReadResponse>>,
        StreamRef<WriteRequest>,
    ) {
        let cfg = PolyMemConfig::new(16, 16, 2, 4, AccessScheme::RoCo, ports).unwrap();
        let rq: Vec<_> = (0..ports).map(|p| stream(format!("rq{p}"), 64)).collect();
        let rs: Vec<_> = (0..ports).map(|p| stream(format!("rs{p}"), 64)).collect();
        let wq = stream("wq", 64);
        let k = PolyMemKernel::new(
            "polymem",
            cfg,
            latency,
            rq.clone(),
            rs.clone(),
            Rc::clone(&wq),
        )
        .unwrap();
        let mut m = Manager::new(120.0);
        m.add_kernel(Box::new(k));
        (m, rq, rs, wq)
    }

    #[test]
    fn read_latency_is_exact() {
        let (mut m, rq, rs, wq) = setup(1, 14);
        let data: Vec<u64> = (0..8).collect();
        wq.borrow_mut()
            .push((ParallelAccess::row(0, 0), data.clone()));
        m.run_cycles(1); // write commits at cycle 0
        rq[0].borrow_mut().push(ParallelAccess::row(0, 0));
        // Request pops at cycle 1; result ready at cycle 1 + 14 = 15,
        // delivered by the tick of cycle 15.
        m.run_cycles(14); // through cycle 14: not yet delivered
        assert!(rs[0].borrow().is_empty());
        m.run_cycles(1); // cycle 15 delivers
        assert_eq!(rs[0].borrow_mut().pop(), Some(data));
    }

    #[test]
    fn fully_pipelined_one_access_per_cycle() {
        let (mut m, rq, rs, wq) = setup(1, 14);
        for r in 0..8u64 {
            let row: Vec<u64> = (0..8).map(|k| r * 10 + k).collect();
            wq.borrow_mut()
                .push((ParallelAccess::row(r as usize, 0), row));
        }
        m.run_cycles(8);
        for r in 0..8 {
            rq[0].borrow_mut().push(ParallelAccess::row(r, 0));
        }
        // 8 requests + 14 latency + slack.
        m.run_cycles(8 + 14 + 2);
        let mut got = Vec::new();
        while let Some(v) = rs[0].borrow_mut().pop() {
            got.push(v[0]);
        }
        assert_eq!(got, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn same_cycle_read_write_sees_old() {
        let (mut m, rq, rs, wq) = setup(1, 0);
        let old: Vec<u64> = vec![1; 8];
        let new: Vec<u64> = vec![2; 8];
        wq.borrow_mut()
            .push((ParallelAccess::row(0, 0), old.clone()));
        m.run_cycles(1);
        // Read and write of the same row land in the same cycle.
        rq[0].borrow_mut().push(ParallelAccess::row(0, 0));
        wq.borrow_mut()
            .push((ParallelAccess::row(0, 0), new.clone()));
        m.run_cycles(2);
        assert_eq!(rs[0].borrow_mut().pop(), Some(old), "read-old semantics");
        // Next read sees the new value.
        rq[0].borrow_mut().push(ParallelAccess::row(0, 0));
        m.run_cycles(2);
        assert_eq!(rs[0].borrow_mut().pop(), Some(new));
    }

    #[test]
    fn invalid_request_surfaces_error() {
        let cfg = PolyMemConfig::new(16, 16, 2, 4, AccessScheme::ReO, 1).unwrap();
        let rq = vec![stream("rq", 8)];
        let rs = vec![stream("rs", 8)];
        let wq = stream("wq", 8);
        let mut k = PolyMemKernel::new("pm", cfg, 0, rq.clone(), rs, Rc::clone(&wq)).unwrap();
        rq[0].borrow_mut().push(ParallelAccess::row(0, 0)); // ReO: rows unsupported
        k.tick(0);
        assert_eq!(k.errors().len(), 1);
        assert_eq!(k.reads_served(), 0);
    }

    #[test]
    fn two_ports_independent() {
        let (mut m, rq, rs, wq) = setup(2, 3);
        wq.borrow_mut()
            .push((ParallelAccess::row(0, 0), (0..8).collect()));
        wq.borrow_mut()
            .push((ParallelAccess::row(1, 0), (10..18).collect()));
        m.run_cycles(2);
        rq[0].borrow_mut().push(ParallelAccess::row(0, 0));
        rq[1].borrow_mut().push(ParallelAccess::row(1, 0));
        m.run_cycles(6);
        assert_eq!(rs[0].borrow_mut().pop().unwrap()[0], 0);
        assert_eq!(rs[1].borrow_mut().pop().unwrap()[0], 10);
    }

    #[test]
    fn kernel_reads_ride_the_plan_cache() {
        let cfg = PolyMemConfig::new(16, 16, 2, 4, AccessScheme::RoCo, 1).unwrap();
        let rq = vec![stream("rq", 64)];
        let rs = vec![stream("rs", 64)];
        let wq = stream("wq", 64);
        let mut k =
            PolyMemKernel::new("pm", cfg, 0, rq.clone(), rs.clone(), Rc::clone(&wq)).unwrap();
        for r in 0..8u64 {
            let row: Vec<u64> = (0..8).map(|x| r * 10 + x).collect();
            wq.borrow_mut()
                .push((ParallelAccess::row(r as usize, 0), row));
            k.tick(r);
        }
        // Same residue class every row access with i < 8 < p*q... rows 0..8
        // differ mod 8 in i, so 8 distinct classes; re-reading them hits.
        for pass in 0..2u64 {
            for r in 0..8u64 {
                rq[0].borrow_mut().push(ParallelAccess::row(r as usize, 0));
                k.tick(100 + pass * 8 + r);
            }
        }
        let stats = k.plan_stats();
        assert!(
            stats.hits >= 8,
            "second pass replays cached plans: {stats:?}"
        );
        // Parity: drain planned results, then replay interpreted.
        let mut planned = Vec::new();
        k.tick(900); // flush delivery
        while let Some(v) = rs[0].borrow_mut().pop() {
            planned.push(v);
        }
        k.set_planning(false);
        rq[0].borrow_mut().push(ParallelAccess::row(3, 0));
        k.tick(901);
        k.tick(902);
        let interp = rs[0].borrow_mut().pop().unwrap();
        assert_eq!(interp, planned[3], "interpreted path agrees with planned");
    }

    #[test]
    fn idle_when_drained() {
        let (mut m, rq, rs, wq) = setup(1, 5);
        assert_eq!(m.run_until_idle(100), 0);
        wq.borrow_mut()
            .push((ParallelAccess::row(0, 0), vec![9; 8]));
        rq[0].borrow_mut().push(ParallelAccess::row(0, 0));
        let cycles = m.run_until_idle(100);
        assert!((6..100).contains(&cycles), "drained after {cycles}");
        assert!(!rs[0].borrow().is_empty());
    }
}
