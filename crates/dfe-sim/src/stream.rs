//! Typed dataflow streams (the edges of a MaxJ kernel graph).
//!
//! A [`Fifo`] is a bounded queue with backpressure: producers check
//! [`Fifo::can_push`] (a full FIFO stalls the upstream kernel, exactly as
//! Maxeler's stream interconnect stalls a kernel whose output is not
//! drained). [`StreamRef`] is the shared handle kernels hold.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// A bounded FIFO of `T` with occupancy statistics.
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    name: String,
    queue: VecDeque<T>,
    capacity: usize,
    /// Total elements ever pushed (for throughput accounting).
    pushed: u64,
    /// Total elements ever popped.
    popped: u64,
    /// Number of rejected pushes (backpressure events).
    stalls: u64,
}

impl<T> Fifo<T> {
    /// Create a FIFO with the given capacity.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be positive");
        Self {
            name: name.into(),
            queue: VecDeque::with_capacity(capacity),
            capacity,
            pushed: 0,
            popped: 0,
            stalls: 0,
        }
    }

    /// Stream name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Elements currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the FIFO is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether the FIFO is full.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Slots available before backpressure kicks in.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.queue.len()
    }

    /// Whether a push would be accepted.
    pub fn can_push(&self) -> bool {
        !self.is_full()
    }

    /// Push one element; returns `false` (and records a stall) when full.
    pub fn push(&mut self, value: T) -> bool {
        if self.is_full() {
            self.stalls += 1;
            return false;
        }
        self.queue.push_back(value);
        self.pushed += 1;
        true
    }

    /// Pop one element.
    pub fn pop(&mut self) -> Option<T> {
        let v = self.queue.pop_front();
        if v.is_some() {
            self.popped += 1;
        }
        v
    }

    /// Peek at the head element.
    pub fn peek(&self) -> Option<&T> {
        self.queue.front()
    }

    /// Total elements pushed over the FIFO's lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total elements popped.
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Backpressure events observed.
    pub fn stall_count(&self) -> u64 {
        self.stalls
    }
}

/// Shared stream handle: the simulator is single-threaded and deterministic,
/// so `Rc<RefCell<...>>` is the right tool (no atomics on the hot path).
pub type StreamRef<T> = Rc<RefCell<Fifo<T>>>;

/// Create a shared stream.
pub fn stream<T>(name: impl Into<String>, capacity: usize) -> StreamRef<T> {
    Rc::new(RefCell::new(Fifo::new(name, capacity)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut f = Fifo::new("s", 4);
        assert!(f.push(1));
        assert!(f.push(2));
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn backpressure() {
        let mut f = Fifo::new("s", 2);
        assert!(f.push(1));
        assert!(f.push(2));
        assert!(f.is_full());
        assert!(!f.push(3));
        assert_eq!(f.stall_count(), 1);
        f.pop();
        assert!(f.can_push());
        assert!(f.push(3));
    }

    #[test]
    fn counters() {
        let mut f = Fifo::new("s", 8);
        for i in 0..5 {
            f.push(i);
        }
        f.pop();
        f.pop();
        assert_eq!(f.total_pushed(), 5);
        assert_eq!(f.total_popped(), 2);
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn capacity_and_free_slots() {
        let mut f = Fifo::new("s", 3);
        assert_eq!(f.capacity(), 3);
        assert_eq!(f.free_slots(), 3);
        f.push(1);
        f.push(2);
        assert_eq!(f.free_slots(), 1);
        f.pop();
        assert_eq!(f.free_slots(), 2);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut f = Fifo::new("s", 2);
        f.push(42);
        assert_eq!(f.peek(), Some(&42));
        assert_eq!(f.len(), 1);
        assert_eq!(f.pop(), Some(42));
    }

    #[test]
    fn shared_handle() {
        let s = stream::<u64>("x", 4);
        s.borrow_mut().push(7);
        let t = Rc::clone(&s);
        assert_eq!(t.borrow_mut().pop(), Some(7));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = Fifo::<u8>::new("bad", 0);
    }
}
