//! Generic dataflow components: the reusable blocks of a manager graph.
//!
//! The paper's Fig. 9 STREAM design wires a Controller to PolyMem through
//! **MUX**es (select the write-port input) and a **DEMUX** (route the output
//! to the right host stream). These exist here as real kernels, together
//! with [`Generator`] / [`Sink`] endpoints used for testing and for feeding
//! designs from host data.

use crate::kernel::Kernel;
use crate::stream::StreamRef;
use std::cell::Cell;
use std::rc::Rc;

/// Emits one element of a preloaded sequence per cycle.
pub struct Generator<T: Copy> {
    name: String,
    data: Vec<T>,
    pos: usize,
    out: StreamRef<T>,
}

impl<T: Copy> Generator<T> {
    /// A generator over `data` writing into `out`.
    pub fn new(name: impl Into<String>, data: Vec<T>, out: StreamRef<T>) -> Self {
        Self {
            name: name.into(),
            data,
            pos: 0,
            out,
        }
    }

    /// Elements not yet emitted.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

impl<T: Copy> Kernel for Generator<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _cycle: u64) {
        if self.pos < self.data.len() && self.out.borrow().can_push() {
            self.out.borrow_mut().push(self.data[self.pos]);
            self.pos += 1;
        }
    }

    fn is_idle(&self) -> bool {
        self.pos >= self.data.len()
    }

    fn next_event(&self) -> Option<u64> {
        // Done, or blocked on a full output: only an external pop can
        // unblock us, so there is no self-scheduled wake.
        if self.pos >= self.data.len() || !self.out.borrow().can_push() {
            None
        } else {
            Some(0)
        }
    }
}

/// Collects everything arriving on a stream.
pub struct Sink<T> {
    name: String,
    input: StreamRef<T>,
    collected: Vec<T>,
}

impl<T> Sink<T> {
    /// A sink draining `input`.
    pub fn new(name: impl Into<String>, input: StreamRef<T>) -> Self {
        Self {
            name: name.into(),
            input,
            collected: Vec::new(),
        }
    }

    /// Everything collected so far.
    pub fn collected(&self) -> &[T] {
        &self.collected
    }

    /// Take the collected elements out.
    pub fn take(&mut self) -> Vec<T> {
        std::mem::take(&mut self.collected)
    }
}

impl<T> Kernel for Sink<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _cycle: u64) {
        if let Some(v) = self.input.borrow_mut().pop() {
            self.collected.push(v);
        }
    }

    fn is_idle(&self) -> bool {
        self.input.borrow().is_empty()
    }

    fn next_event(&self) -> Option<u64> {
        // Anything queued can be drained immediately; an empty input is a
        // pure wait on upstream.
        if self.input.borrow().is_empty() {
            None
        } else {
            Some(0)
        }
    }
}

/// Shared select signal for [`Mux`] / [`Demux`] (driven by a controller,
/// like the paper's `Mode`-derived selects).
pub type Select = Rc<Cell<usize>>;

/// Create a select signal initialised to `v`.
pub fn select(v: usize) -> Select {
    Rc::new(Cell::new(v))
}

/// N-to-1 multiplexer: forwards one element per cycle from the selected
/// input to the output (the two MUXes feeding PolyMem's write port in
/// Fig. 9).
pub struct Mux<T> {
    name: String,
    inputs: Vec<StreamRef<T>>,
    out: StreamRef<T>,
    sel: Select,
}

impl<T> Mux<T> {
    /// Build an N-input mux.
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<StreamRef<T>>,
        out: StreamRef<T>,
        sel: Select,
    ) -> Self {
        assert!(!inputs.is_empty());
        Self {
            name: name.into(),
            inputs,
            out,
            sel,
        }
    }
}

impl<T> Kernel for Mux<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _cycle: u64) {
        let s = self.sel.get();
        assert!(s < self.inputs.len(), "mux select {s} out of range");
        if self.out.borrow().can_push() {
            if let Some(v) = self.inputs[s].borrow_mut().pop() {
                self.out.borrow_mut().push(v);
            }
        }
    }

    fn next_event(&self) -> Option<u64> {
        // Can forward only when the selected input has data and the output
        // has room; both are external conditions, so no future self-wake.
        let s = self.sel.get();
        match self.inputs.get(s) {
            Some(input) if !input.borrow().is_empty() && self.out.borrow().can_push() => Some(0),
            Some(_) => None,
            None => Some(0), // out-of-range select: let tick() report it
        }
    }
}

/// 1-to-N demultiplexer: routes one element per cycle from the input to the
/// selected output (the DEMUX splitting PolyMem's output into the A/B/C
/// offload streams in Fig. 9).
pub struct Demux<T> {
    name: String,
    input: StreamRef<T>,
    outputs: Vec<StreamRef<T>>,
    sel: Select,
}

impl<T> Demux<T> {
    /// Build an N-output demux.
    pub fn new(
        name: impl Into<String>,
        input: StreamRef<T>,
        outputs: Vec<StreamRef<T>>,
        sel: Select,
    ) -> Self {
        assert!(!outputs.is_empty());
        Self {
            name: name.into(),
            input,
            outputs,
            sel,
        }
    }
}

impl<T> Kernel for Demux<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _cycle: u64) {
        let s = self.sel.get();
        assert!(s < self.outputs.len(), "demux select {s} out of range");
        if self.outputs[s].borrow().can_push() {
            if let Some(v) = self.input.borrow_mut().pop() {
                self.outputs[s].borrow_mut().push(v);
            }
        }
    }

    fn next_event(&self) -> Option<u64> {
        let s = self.sel.get();
        match self.outputs.get(s) {
            Some(out) if out.borrow().can_push() && !self.input.borrow().is_empty() => Some(0),
            Some(_) => None,
            None => Some(0), // out-of-range select: let tick() report it
        }
    }
}

/// N-to-1 burst framer: collects `n` consecutive input elements (one per
/// cycle, the port width of the feeding stream) into one `Vec` burst —
/// the component that turns per-chunk host traffic into whole-region
/// bursts for PolyMem's region ports.
pub struct Batcher<T> {
    name: String,
    input: StreamRef<T>,
    out: StreamRef<Vec<T>>,
    n: usize,
    buf: Vec<T>,
}

impl<T> Batcher<T> {
    /// Build a framer emitting bursts of `n` elements.
    pub fn new(
        name: impl Into<String>,
        input: StreamRef<T>,
        out: StreamRef<Vec<T>>,
        n: usize,
    ) -> Self {
        assert!(n > 0, "burst size must be positive");
        Self {
            name: name.into(),
            input,
            out,
            n,
            buf: Vec::with_capacity(n),
        }
    }
}

impl<T> Kernel for Batcher<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _cycle: u64) {
        if self.buf.len() < self.n {
            if let Some(v) = self.input.borrow_mut().pop() {
                self.buf.push(v);
            }
        }
        if self.buf.len() == self.n && self.out.borrow().can_push() {
            let burst = std::mem::replace(&mut self.buf, Vec::with_capacity(self.n));
            self.out.borrow_mut().push(burst);
        }
    }

    fn is_idle(&self) -> bool {
        self.buf.is_empty() && self.input.borrow().is_empty()
    }

    fn next_event(&self) -> Option<u64> {
        let can_fill = self.buf.len() < self.n && !self.input.borrow().is_empty();
        let can_emit = self.buf.len() == self.n && self.out.borrow().can_push();
        if can_fill || can_emit {
            Some(0)
        } else {
            None
        }
    }
}

/// 1-to-N burst deframer: pops one burst and streams it out one element
/// per cycle — the offload side of a region burst, feeding the per-element
/// host streams at port rate.
pub struct Unbatcher<T> {
    name: String,
    input: StreamRef<Vec<T>>,
    out: StreamRef<T>,
    pending: std::collections::VecDeque<T>,
}

impl<T> Unbatcher<T> {
    /// Build a deframer.
    pub fn new(name: impl Into<String>, input: StreamRef<Vec<T>>, out: StreamRef<T>) -> Self {
        Self {
            name: name.into(),
            input,
            out,
            pending: std::collections::VecDeque::new(),
        }
    }
}

impl<T> Kernel for Unbatcher<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _cycle: u64) {
        if self.pending.is_empty() {
            if let Some(burst) = self.input.borrow_mut().pop() {
                self.pending.extend(burst);
            }
        }
        if !self.pending.is_empty() && self.out.borrow().can_push() {
            let v = self.pending.pop_front().expect("non-empty checked");
            self.out.borrow_mut().push(v);
        }
    }

    fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.input.borrow().is_empty()
    }

    fn next_event(&self) -> Option<u64> {
        let can_fill = self.pending.is_empty() && !self.input.borrow().is_empty();
        let can_emit = !self.pending.is_empty() && self.out.borrow().can_push();
        if can_fill || can_emit {
            Some(0)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Manager;
    use crate::stream::stream;
    use std::rc::Rc;

    #[test]
    fn generator_to_sink() {
        let s = stream::<u64>("s", 8);
        let mut m = Manager::new(100.0);
        m.add_kernel(Box::new(Generator::new(
            "gen",
            vec![1, 2, 3],
            Rc::clone(&s),
        )));
        let sink_stream = Rc::clone(&s);
        let mut sink = Sink::new("sink", sink_stream);
        for c in 0..10 {
            m.run_cycles(1);
            sink.tick(c);
        }
        assert_eq!(sink.collected(), &[1, 2, 3]);
        assert_eq!(sink.take(), vec![1, 2, 3]);
        assert!(sink.collected().is_empty());
    }

    #[test]
    fn generator_respects_backpressure() {
        let s = stream::<u64>("s", 2);
        let mut g = Generator::new("gen", vec![1, 2, 3, 4], Rc::clone(&s));
        for c in 0..10 {
            g.tick(c);
        }
        assert_eq!(s.borrow().len(), 2, "capacity-2 FIFO holds two");
        assert_eq!(g.remaining(), 2);
        s.borrow_mut().pop();
        g.tick(11);
        assert_eq!(g.remaining(), 1);
    }

    #[test]
    fn mux_routes_selected_input() {
        let a = stream::<u64>("a", 8);
        let b = stream::<u64>("b", 8);
        let out = stream::<u64>("out", 8);
        let sel = select(0);
        a.borrow_mut().push(10);
        b.borrow_mut().push(20);
        let mut mux = Mux::new(
            "mux",
            vec![Rc::clone(&a), Rc::clone(&b)],
            Rc::clone(&out),
            Rc::clone(&sel),
        );
        mux.tick(0);
        assert_eq!(out.borrow_mut().pop(), Some(10));
        sel.set(1);
        mux.tick(1);
        assert_eq!(out.borrow_mut().pop(), Some(20));
        assert!(a.borrow().is_empty() && b.borrow().is_empty());
    }

    #[test]
    fn demux_routes_selected_output() {
        let input = stream::<u64>("in", 8);
        let x = stream::<u64>("x", 8);
        let y = stream::<u64>("y", 8);
        let sel = select(1);
        input.borrow_mut().push(7);
        input.borrow_mut().push(8);
        let mut d = Demux::new(
            "demux",
            Rc::clone(&input),
            vec![Rc::clone(&x), Rc::clone(&y)],
            Rc::clone(&sel),
        );
        d.tick(0);
        sel.set(0);
        d.tick(1);
        assert_eq!(y.borrow_mut().pop(), Some(7));
        assert_eq!(x.borrow_mut().pop(), Some(8));
    }

    #[test]
    fn batcher_frames_and_unbatcher_deframes() {
        let elems = stream::<u64>("elems", 16);
        let bursts = stream::<Vec<u64>>("bursts", 4);
        let back = stream::<u64>("back", 16);
        let mut b = Batcher::new("frame", Rc::clone(&elems), Rc::clone(&bursts), 4);
        let mut u = Unbatcher::new("deframe", Rc::clone(&bursts), Rc::clone(&back));
        for v in 0..8u64 {
            elems.borrow_mut().push(v);
        }
        for c in 0..32 {
            b.tick(c);
            u.tick(c);
        }
        assert!(b.is_idle() && u.is_idle());
        let got: Vec<u64> = std::iter::from_fn(|| back.borrow_mut().pop()).collect();
        assert_eq!(got, (0..8).collect::<Vec<_>>(), "two 4-element bursts");
    }

    #[test]
    fn batcher_respects_downstream_backpressure() {
        let elems = stream::<u64>("elems", 16);
        let bursts = stream::<Vec<u64>>("bursts", 1);
        let mut b = Batcher::new("frame", Rc::clone(&elems), Rc::clone(&bursts), 2);
        for v in 0..6u64 {
            elems.borrow_mut().push(v);
        }
        for c in 0..32 {
            b.tick(c);
        }
        // Capacity-1 burst FIFO holds one burst; the framer holds a full
        // second burst and waits instead of dropping it.
        assert_eq!(bursts.borrow_mut().pop(), Some(vec![0, 1]));
        assert!(!b.is_idle());
        for c in 32..64 {
            b.tick(c);
        }
        assert_eq!(bursts.borrow_mut().pop(), Some(vec![2, 3]));
    }

    #[test]
    fn fig9_shape_pipeline() {
        // Generator A / Generator feedback -> MUX -> sink, switching select
        // mid-stream — the write-port input switching between host data
        // (Load) and the memory's own output (Copy) in Fig. 9.
        let host_in = stream::<u64>("host", 8);
        let feedback = stream::<u64>("fb", 8);
        let to_mem = stream::<u64>("to_mem", 8);
        let sel = select(0);
        let mut m = Manager::new(100.0);
        m.add_kernel(Box::new(Generator::new(
            "host",
            vec![1, 2],
            Rc::clone(&host_in),
        )));
        m.add_kernel(Box::new(Generator::new(
            "fb",
            vec![100, 200],
            Rc::clone(&feedback),
        )));
        m.add_kernel(Box::new(Mux::new(
            "write-mux",
            vec![host_in, feedback],
            Rc::clone(&to_mem),
            Rc::clone(&sel),
        )));
        m.run_cycles(3); // Load mode: host data flows
        sel.set(1);
        m.run_cycles(3); // Copy mode: feedback flows
        let got: Vec<u64> = std::iter::from_fn(|| to_mem.borrow_mut().pop()).collect();
        assert_eq!(got, vec![1, 2, 100, 200]);
    }
}
