//! LMem → PolyMem staging (the data path of the paper's Fig. 1).
//!
//! The envisioned system keeps bulk data in the board's DRAM (LMem) and
//! stages performance-critical regions into PolyMem, which then feeds the
//! kernel `p*q` elements per cycle. [`DramLoader`] is that staging engine:
//! it pulls burst-sized blocks from a [`crate::dram::Dram`] and pushes
//! lane-width chunks into PolyMem's write port, paced by the DRAM's
//! bandwidth. The complementary cost model ([`AccessCostModel`]) quantifies
//! the caching benefit the architecture exists for.

use crate::clock::SimClock;
use crate::dram::Dram;
use crate::kernel::Kernel;
use crate::polymem_kernel::WriteRequest;
use crate::stream::StreamRef;
use polymem::ParallelAccess;

/// Streams a contiguous LMem range into consecutive row accesses of a
/// PolyMem region.
pub struct DramLoader {
    name: String,
    dram: Dram,
    /// The staged data, prefetched as one streaming burst (DRAM latency is
    /// paid once per stream, not per chunk, matching the pacing model).
    buffer: Vec<u64>,
    /// Destination row accesses, one per chunk, in order.
    dst: Vec<ParallelAccess>,
    lanes: usize,
    next_chunk: usize,
    /// Cycles between chunk issues, derived from the DRAM bandwidth.
    interval: u64,
    last_issue: Option<u64>,
    write_req: StreamRef<WriteRequest>,
}

impl DramLoader {
    /// Build a loader for `chunks` destination accesses starting at LMem
    /// word `src_addr`, clocked at `clock`'s frequency.
    pub fn new(
        name: impl Into<String>,
        dram: Dram,
        src_addr: usize,
        dst: Vec<ParallelAccess>,
        lanes: usize,
        clock: &SimClock,
        write_req: StreamRef<WriteRequest>,
    ) -> Self {
        // One chunk = lanes * 8 bytes; DRAM delivers bandwidth_gbps B/ns.
        let chunk_ns = (lanes * 8) as f64 / dram.params().bandwidth_gbps;
        let interval = clock.ns_to_cycles(chunk_ns).max(1);
        // Prefetch the whole range as one streaming burst: the DRAM
        // accounting charges its first-word latency once per stream, which
        // is what the per-chunk pacing below models.
        let mut dram = dram;
        let mut buffer = vec![0u64; dst.len() * lanes];
        if !buffer.is_empty() {
            dram.read_burst(src_addr, &mut buffer);
        }
        Self {
            name: name.into(),
            dram,
            buffer,
            dst,
            lanes,
            next_chunk: 0,
            interval,
            last_issue: None,
            write_req,
        }
    }

    /// Chunks still to stage.
    pub fn remaining(&self) -> usize {
        self.dst.len() - self.next_chunk
    }

    /// The DRAM channel (for post-run accounting).
    pub fn dram(&self) -> &Dram {
        &self.dram
    }
}

impl Kernel for DramLoader {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, cycle: u64) {
        if self.next_chunk >= self.dst.len() {
            return;
        }
        if let Some(last) = self.last_issue {
            if cycle < last + self.interval {
                return;
            }
        }
        if !self.write_req.borrow().can_push() {
            return;
        }
        let base = self.next_chunk * self.lanes;
        let words = self.buffer[base..base + self.lanes].to_vec();
        self.write_req
            .borrow_mut()
            .push((self.dst[self.next_chunk], words));
        self.last_issue = Some(cycle);
        self.next_chunk += 1;
    }

    fn is_idle(&self) -> bool {
        self.remaining() == 0
    }

    fn next_event(&self) -> Option<u64> {
        if self.next_chunk >= self.dst.len() {
            return None;
        }
        // Paced: the next issue cycle is self-scheduled. A wake in the past
        // (pacing satisfied, possibly blocked on a full write FIFO) means
        // per-cycle ticking — exactly the ticked loop's behaviour.
        match self.last_issue {
            Some(last) => Some(last + self.interval),
            None => Some(0),
        }
    }
}

/// Per-access cost comparison: a kernel reading operands directly from
/// DRAM vs from PolyMem — the quantified version of Fig. 1's motivation.
#[derive(Debug, Clone, Copy)]
pub struct AccessCostModel {
    /// ns for one `lanes`-element group from DRAM (latency + burst).
    pub dram_access_ns: f64,
    /// ns for one group from PolyMem (one cycle).
    pub polymem_access_ns: f64,
    /// One-time staging cost per element group (amortized LMem streaming).
    pub staging_ns_per_group: f64,
}

impl AccessCostModel {
    /// Build from a DRAM channel, a clock, and a lane count.
    pub fn new(dram: &Dram, clock: &SimClock, lanes: usize) -> Self {
        let bytes = lanes * 8;
        Self {
            dram_access_ns: dram.access_time_ns(bytes),
            polymem_access_ns: clock.period_ns(),
            staging_ns_per_group: bytes as f64 / dram.params().bandwidth_gbps,
        }
    }

    /// Total time for `reuses` accesses to one group, served from DRAM.
    pub fn dram_total_ns(&self, reuses: u32) -> f64 {
        self.dram_access_ns * reuses as f64
    }

    /// Total for the same with PolyMem caching (stage once, then reuse).
    pub fn cached_total_ns(&self, reuses: u32) -> f64 {
        self.staging_ns_per_group + self.polymem_access_ns * reuses as f64
    }

    /// The reuse count beyond which caching wins.
    pub fn breakeven_reuses(&self) -> u32 {
        let denom = self.dram_access_ns - self.polymem_access_ns;
        if denom <= 0.0 {
            return u32::MAX;
        }
        (self.staging_ns_per_group / denom).ceil().max(1.0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramParams;
    use crate::polymem_kernel::PolyMemKernel;
    use crate::stream::stream;
    use polymem::{AccessScheme, PolyMemConfig};
    use std::rc::Rc;

    #[test]
    fn loader_stages_dram_into_polymem() {
        let mut dram = Dram::new(DramParams::vectis_lmem());
        let data: Vec<u64> = (0..64).map(|x| x * 5 + 1).collect();
        dram.write_burst(1000, &data);

        let cfg = PolyMemConfig::new(8, 8, 2, 4, AccessScheme::RoCo, 1).unwrap();
        let rq = vec![stream("rq", 8)];
        let rs = vec![stream("rs", 8)];
        let wq = stream("wq", 8);
        let mut pm = PolyMemKernel::new("pm", cfg, 0, rq, rs, Rc::clone(&wq)).unwrap();
        let clock = SimClock::new(120.0);
        let dst: Vec<ParallelAccess> = (0..8).map(|r| ParallelAccess::row(r, 0)).collect();
        let mut loader = DramLoader::new("lmem", dram, 1000, dst, 8, &clock, wq);
        let mut cycle = 0u64;
        while !(loader.is_idle() && pm.pipelines_empty()) {
            loader.tick(cycle);
            pm.tick(cycle);
            cycle += 1;
            assert!(cycle < 10_000);
        }
        // Whole matrix staged row-major.
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(pm.mem().get(i, j).unwrap(), (i * 8 + j) as u64 * 5 + 1);
            }
        }
        assert_eq!(loader.dram().bytes_read, 64 * 8);
        // Streaming accounting: one latency + one transfer for the whole
        // range, not one latency per 64 B chunk.
        let params = *loader.dram().params();
        let expected = params.latency_ns + (64.0 * 8.0 / params.bandwidth_gbps).max(0.0);
        assert!(
            loader.dram().busy_ns < expected + params.burst_bytes as f64,
            "busy_ns {} should reflect one streamed burst",
            loader.dram().busy_ns
        );
    }

    #[test]
    fn loader_paced_by_dram_bandwidth() {
        let dram = Dram::new(DramParams::vectis_lmem());
        let clock = SimClock::new(120.0);
        let wq = stream("wq", 1024);
        let dst: Vec<ParallelAccess> = (0..4).map(|r| ParallelAccess::row(r, 0)).collect();
        let mut loader = DramLoader::new("lmem", dram, 0, dst, 8, &clock, wq);
        // 64 B chunk at 15 B/ns = 4.3 ns = 1 cycle at 120 MHz -> min pacing.
        assert!(loader.interval >= 1);
        let mut issued_cycles = Vec::new();
        for c in 0..20u64 {
            let before = loader.next_chunk;
            loader.tick(c);
            if loader.next_chunk > before {
                issued_cycles.push(c);
            }
        }
        assert_eq!(issued_cycles.len(), 4);
        for w in issued_cycles.windows(2) {
            assert!(w[1] - w[0] >= loader.interval);
        }
    }

    #[test]
    fn cost_model_breakeven() {
        let dram = Dram::new(DramParams::vectis_lmem());
        let clock = SimClock::new(120.0);
        let model = AccessCostModel::new(&dram, &clock, 8);
        // A random 64-byte DRAM access pays ~225 ns; PolyMem pays 8.3 ns.
        assert!(model.dram_access_ns > 20.0 * model.polymem_access_ns);
        let be = model.breakeven_reuses();
        assert!(
            (1..5).contains(&be),
            "staging should pay off almost immediately, breakeven {be}"
        );
        // Caching wins at any reuse >= breakeven.
        assert!(model.cached_total_ns(be + 1) < model.dram_total_ns(be + 1));
        // Single-touch streaming (reuse = 0 extra) should NOT favour caching
        // vs streaming read... with reuse=1 caching already near-ties since
        // staging is a streamed burst while the direct access pays latency.
        assert!(model.cached_total_ns(1) < model.dram_total_ns(1) * 1.2);
    }
}
