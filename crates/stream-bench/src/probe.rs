//! Headless per-configuration probe for design-space sweeps.
//!
//! A DSE engine that wants *measured* bandwidth — not just the static
//! synthesis model — needs to run each candidate configuration through the
//! event-driven simulator and count cycles. This module packages that as a
//! single call: build a minimal region-burst STREAM-Copy design for the
//! configuration, run one pass under [`SchedulerMode::EventDriven`], and
//! return the cycle count next to the ideal (one chunk per cycle) count.
//!
//! The region-burst driver is used because region plans are scheme-agnostic:
//! every [`AccessScheme`] can execute a whole-region burst, so the probe
//! covers the full scheme axis of the grid (the per-chunk Fig. 9 controller
//! is hardwired to `Row` accesses and would reject most schemes).

use crate::app::StreamApp;
use crate::layout::StreamLayout;
use crate::op::StreamOp;
use dfe_sim::sched::{SchedulerMode, SchedulerStats};
use polymem::AccessScheme;

/// Nominal probe frequency in MHz. Cycle counts are frequency-independent;
/// this only scales the (unused) host-time model.
const PROBE_FREQ_MHZ: f64 = 100.0;

/// What one probe run measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeResult {
    /// Cycles the pass took (pipeline fill + drain included).
    pub cycles: u64,
    /// Ideal cycles: one full-width chunk per cycle, no latency.
    pub ideal_cycles: u64,
    /// What the event-driven scheduler did to get there.
    pub sched: SchedulerStats,
}

impl ProbeResult {
    /// Achieved fraction of the ideal one-chunk-per-cycle rate, in (0, 1].
    pub fn efficiency(&self) -> f64 {
        self.ideal_cycles as f64 / self.cycles as f64
    }
}

/// Run a `chunks`-chunk STREAM-Copy burst pass on a `p`×`q`-bank memory with
/// `read_ports` read ports under `scheme`, event-driven. Returns the
/// measured cycle count; errors if the configuration cannot host the layout
/// or if the memory rejected any access during the pass.
pub fn probe_burst_copy(
    p: usize,
    q: usize,
    scheme: AccessScheme,
    read_ports: usize,
    chunks: usize,
) -> polymem::Result<ProbeResult> {
    let lanes = p * q;
    // One lane-wide row per chunk keeps the layout valid for every lane
    // count (len % cols == 0 and cols % lanes == 0 both hold trivially).
    let cols = lanes;
    let len = chunks * lanes;
    let layout = StreamLayout::new(len, cols, p, q, scheme, read_ports)?;
    let mut app = StreamApp::new_burst(StreamOp::Copy, layout, PROBE_FREQ_MHZ)?;
    app.set_scheduler_mode(SchedulerMode::EventDriven);
    let zeros = vec![0.0; len];
    app.load(&zeros, &zeros, &zeros)?;
    let cycles = app.run_pass();
    if let Some(e) = app.errors().first() {
        return Err(e.clone());
    }
    Ok(ProbeResult {
        cycles,
        ideal_cycles: chunks as u64,
        sched: app.scheduler_stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_runs_every_scheme() {
        for scheme in AccessScheme::ALL {
            let r = probe_burst_copy(2, 4, scheme, 2, 64).unwrap();
            assert!(r.cycles >= r.ideal_cycles, "{scheme:?}: {r:?}");
            assert!(r.efficiency() > 0.5, "{scheme:?}: {r:?}");
        }
    }

    #[test]
    fn probe_cycles_deterministic() {
        let a = probe_burst_copy(2, 8, AccessScheme::RoCo, 2, 64).unwrap();
        let b = probe_burst_copy(2, 8, AccessScheme::RoCo, 2, 64).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn probe_scales_with_chunks() {
        let short = probe_burst_copy(2, 4, AccessScheme::ReO, 1, 32).unwrap();
        let long = probe_burst_copy(2, 4, AccessScheme::ReO, 1, 128).unwrap();
        assert!(long.cycles > short.cycles);
        // Fixed fill/drain overhead amortizes: longer runs are more
        // efficient.
        assert!(long.efficiency() > short.efficiency());
    }

    #[test]
    fn probe_32_lanes() {
        let r = probe_burst_copy(4, 8, AccessScheme::ReRo, 2, 64).unwrap();
        assert!(r.cycles >= 64);
    }
}
