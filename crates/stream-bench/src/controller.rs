//! The STREAM Controller kernel (paper Fig. 9).
//!
//! The Controller drives MAX-PolyMem: it generates the read signals
//! (`Ri, Rj, Rshape`) and write signals (`Wi, Wj, Wshape`), selects the
//! write-port input via the MUXes (here: computing the output chunk from
//! the read responses — the "feedback loop from the output port of
//! PolyMem") and sequences one chunk per cycle. The read latency is
//! absorbed naturally: writes are issued only when the corresponding read
//! data emerges from the memory's pipeline, which is the paper's
//! "delay ... applied on the output data ... 14 clock cycles" alignment.

use crate::layout::StreamLayout;
use crate::op::StreamOp;
use dfe_sim::kernel::Kernel;
use dfe_sim::polymem_kernel::{ReadRequest, ReadResponse, WriteRequest};
use dfe_sim::stream::StreamRef;
use std::cell::RefCell;
use std::rc::Rc;

/// Controller progress, shared with the host so stages can be restarted
/// (the `Mode` signal of Fig. 9).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerState {
    /// Chunks whose reads have been issued.
    pub issued: usize,
    /// Chunks whose writes have been issued.
    pub written: usize,
    /// Whether the stage is armed (Mode == compute).
    pub running: bool,
}

/// Shared handle to controller state.
pub type StateRef = Rc<RefCell<ControllerState>>;

/// The compute-stage controller.
pub struct Controller {
    op: StreamOp,
    layout: StreamLayout,
    chunks: usize,
    state: StateRef,
    read_req: Vec<StreamRef<ReadRequest>>,
    read_resp: Vec<StreamRef<ReadResponse>>,
    write_req: StreamRef<WriteRequest>,
}

impl Controller {
    /// Build a controller for `op` over `layout`.
    ///
    /// `read_req`/`read_resp` are the PolyMem kernel's port streams; the
    /// controller uses the first [`StreamOp::reads`] ports.
    pub fn new(
        op: StreamOp,
        layout: StreamLayout,
        state: StateRef,
        read_req: Vec<StreamRef<ReadRequest>>,
        read_resp: Vec<StreamRef<ReadResponse>>,
        write_req: StreamRef<WriteRequest>,
    ) -> Self {
        assert!(
            read_req.len() >= op.reads(),
            "{} needs {} read ports",
            op.name(),
            op.reads()
        );
        let chunks = layout.a.chunks();
        Self {
            op,
            layout,
            chunks,
            state,
            read_req,
            read_resp,
            write_req,
        }
    }

    /// Number of chunks per pass.
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// Whether the current pass is finished (all writes issued).
    pub fn pass_done(&self) -> bool {
        let s = self.state.borrow();
        !s.running || s.written >= self.chunks
    }

    /// Source vector(s) and destination for the configured op.
    fn source(&self, port: usize) -> crate::layout::VectorLayout {
        match (self.op, port) {
            (StreamOp::Copy, _) => self.layout.a,
            (StreamOp::Scale(_), _) => self.layout.b,
            (StreamOp::Sum, 0) | (StreamOp::Triad(_), 0) => self.layout.b,
            (StreamOp::Sum, _) | (StreamOp::Triad(_), _) => self.layout.c,
        }
    }

    fn dest(&self) -> crate::layout::VectorLayout {
        match self.op {
            StreamOp::Copy => self.layout.c,
            _ => self.layout.a,
        }
    }
}

impl Kernel for Controller {
    fn name(&self) -> &str {
        "stream-controller"
    }

    fn tick(&mut self, _cycle: u64) {
        let reads = self.op.reads();
        let mut st = self.state.borrow_mut();
        if !st.running {
            return;
        }
        // Issue phase: one chunk's reads per cycle, if all request FIFOs
        // have room (lockstep ports).
        if st.issued < self.chunks && (0..reads).all(|p| self.read_req[p].borrow().can_push()) {
            for (p, req) in self.read_req.iter().enumerate().take(reads) {
                req.borrow_mut().push(self.source(p).access(st.issued));
            }
            st.issued += 1;
        }
        // Collect phase: when a full operand set is available and the write
        // FIFO has room, combine and write one chunk.
        if st.written < st.issued
            && self.write_req.borrow().can_push()
            && (0..reads).all(|p| !self.read_resp[p].borrow().is_empty())
        {
            let x = self.read_resp[0].borrow_mut().pop().expect("checked");
            let y = if reads > 1 {
                self.read_resp[1].borrow_mut().pop().expect("checked")
            } else {
                Vec::new()
            };
            let data: Vec<u64> = x
                .iter()
                .enumerate()
                .map(|(k, &xb)| {
                    let xv = f64::from_bits(xb);
                    let yv = if reads > 1 { f64::from_bits(y[k]) } else { 0.0 };
                    self.op.apply(xv, yv).to_bits()
                })
                .collect();
            let access = self.dest().access(st.written);
            self.write_req.borrow_mut().push((access, data));
            st.written += 1;
            if st.written >= self.chunks {
                st.running = false;
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.pass_done()
    }

    fn next_event(&self) -> Option<u64> {
        // The per-chunk FSM re-evaluates its issue/collect conditions every
        // cycle while a pass is live — dense passes stay on the ticked path
        // by construction, so the event scheduler cannot change their cycle
        // counts. A finished pass never needs another tick.
        if self.pass_done() {
            None
        } else {
            Some(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymem::AccessScheme;

    fn tiny_layout() -> StreamLayout {
        StreamLayout::new(16, 8, 2, 4, AccessScheme::RoCo, 2).unwrap()
    }

    #[allow(clippy::type_complexity)]
    fn make(
        op: StreamOp,
    ) -> (
        Controller,
        Vec<StreamRef<ReadRequest>>,
        Vec<StreamRef<ReadResponse>>,
        StreamRef<WriteRequest>,
        StateRef,
    ) {
        let layout = tiny_layout();
        let rq: Vec<StreamRef<ReadRequest>> = (0..2)
            .map(|p| dfe_sim::stream(format!("rq{p}"), 16))
            .collect();
        let rs: Vec<StreamRef<ReadResponse>> = (0..2)
            .map(|p| dfe_sim::stream(format!("rs{p}"), 16))
            .collect();
        let wq = dfe_sim::stream("wq", 16);
        let state: StateRef = Rc::new(RefCell::new(ControllerState {
            running: true,
            ..Default::default()
        }));
        let c = Controller::new(
            op,
            layout,
            Rc::clone(&state),
            rq.clone(),
            rs.clone(),
            Rc::clone(&wq),
        );
        (c, rq, rs, wq, state)
    }

    #[test]
    fn issues_one_chunk_per_cycle() {
        let (mut c, rq, _rs, _wq, state) = make(StreamOp::Copy);
        for cyc in 0..2 {
            c.tick(cyc);
        }
        assert_eq!(state.borrow().issued, 2);
        assert_eq!(rq[0].borrow().len(), 2);
        assert!(rq[1].borrow().is_empty(), "Copy uses one port");
    }

    #[test]
    fn sum_issues_on_both_ports() {
        let (mut c, rq, _rs, _wq, _state) = make(StreamOp::Sum);
        c.tick(0);
        assert_eq!(rq[0].borrow().len(), 1);
        assert_eq!(rq[1].borrow().len(), 1);
        let b_req = rq[0].borrow_mut().pop().unwrap();
        let c_req = rq[1].borrow_mut().pop().unwrap();
        assert_ne!(b_req.i, c_req.i, "B and C live in different regions");
    }

    #[test]
    fn writes_after_responses() {
        let (mut c, _rq, rs, wq, state) = make(StreamOp::Scale(2.0));
        c.tick(0); // issue chunk 0
        assert_eq!(state.borrow().written, 0);
        // Hand it a response as the memory would.
        let resp: Vec<u64> = (0..8).map(|k| (k as f64).to_bits()).collect();
        rs[0].borrow_mut().push(resp);
        c.tick(1);
        assert_eq!(state.borrow().written, 1);
        let (access, data) = wq.borrow_mut().pop().unwrap();
        assert_eq!(access.i, c.dest().base_row, "Scale writes into A");
        assert_eq!(f64::from_bits(data[3]), 6.0, "2.0 * 3.0");
    }

    #[test]
    fn pass_completes_and_stops() {
        let (mut c, _rq, rs, _wq, state) = make(StreamOp::Copy);
        let chunks = c.chunks();
        for cyc in 0..(chunks as u64) {
            c.tick(cyc);
            rs[0].borrow_mut().push(vec![0u64; 8]);
        }
        for cyc in 0..(chunks as u64 + 4) {
            c.tick(1000 + cyc);
        }
        assert!(c.pass_done());
        assert!(!state.borrow().running);
        assert_eq!(state.borrow().written, chunks);
    }

    #[test]
    fn idle_when_not_running() {
        let (mut c, rq, _rs, _wq, state) = make(StreamOp::Copy);
        state.borrow_mut().running = false;
        assert!(c.is_idle());
        c.tick(0);
        assert!(rq[0].borrow().is_empty(), "no issue when Mode is idle");
    }
}
