//! Vector placement inside PolyMem (paper §V).
//!
//! The STREAM design splits PolyMem into three equally-sized regions holding
//! the vectors A, B and C. Each vector is stored row-major inside its
//! region; with 8 lanes and row accesses (the RoCo scheme), element chunk
//! `k` of a vector is one parallel access.
//!
//! The paper's exact geometry is reproduced as [`StreamLayout::paper_geometry`]:
//! 512-column rows, 170 rows per vector region (170 x 512 x 8 B ≈ 700 KB per
//! array, ~2 MB total — "the storage effectively available" for the 2-port
//! STREAM design).

use polymem::{AccessScheme, BankLayout, ParallelAccess, PolyMemConfig};
use serde::{Deserialize, Serialize};

/// Placement of one vector inside the 2D logical space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorLayout {
    /// First logical row of the vector's region.
    pub base_row: usize,
    /// Logical columns of the memory (elements per row).
    pub cols: usize,
    /// Lanes per access.
    pub lanes: usize,
    /// Vector length in elements.
    pub len: usize,
}

impl VectorLayout {
    /// Number of `lanes`-element chunks (parallel accesses) in the vector.
    /// The vector length must be a whole number of chunks and rows.
    pub fn chunks(&self) -> usize {
        self.len / self.lanes
    }

    /// Coordinates of element `k`.
    pub fn coord(&self, k: usize) -> (usize, usize) {
        (self.base_row + k / self.cols, k % self.cols)
    }

    /// The row access that moves chunk `c` (elements `c*lanes ..`).
    pub fn access(&self, c: usize) -> ParallelAccess {
        let k = c * self.lanes;
        let (i, j) = self.coord(k);
        ParallelAccess::row(i, j)
    }

    /// Rows occupied by this vector.
    pub fn rows_used(&self) -> usize {
        self.len.div_ceil(self.cols)
    }
}

/// The three-vector STREAM memory: configuration plus A/B/C layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamLayout {
    /// PolyMem configuration.
    pub config: PolyMemConfig,
    /// Vector A.
    pub a: VectorLayout,
    /// Vector B.
    pub b: VectorLayout,
    /// Vector C.
    pub c: VectorLayout,
}

impl StreamLayout {
    /// Build a layout for vectors of `len` elements each, on a memory with
    /// `cols` columns, `p x q` banks, `read_ports` ports.
    ///
    /// `len` must be a multiple of `cols`, and `cols` a multiple of
    /// `p*q`, so every chunk is one aligned row access.
    pub fn new(
        len: usize,
        cols: usize,
        p: usize,
        q: usize,
        scheme: AccessScheme,
        read_ports: usize,
    ) -> polymem::Result<Self> {
        let lanes = p * q;
        if !len.is_multiple_of(cols) || !cols.is_multiple_of(lanes) {
            return Err(polymem::PolyMemError::InvalidGeometry {
                reason: format!(
                    "vector length {len} must tile columns {cols}, columns must tile lanes {lanes}"
                ),
            });
        }
        let region_rows = (len / cols).next_multiple_of(p).max(p);
        let rows = 3 * region_rows;
        let config = PolyMemConfig::new(rows, cols, p, q, scheme, read_ports)?;
        let mk = |r: usize| VectorLayout {
            base_row: r * region_rows,
            cols,
            lanes,
            len,
        };
        Ok(Self {
            config,
            a: mk(0),
            b: mk(1),
            c: mk(2),
        })
    }

    /// The paper's synthesized geometry: RoCo, 2 x 4 banks, 512 columns,
    /// up to 170 rows per vector (87040 elements ≈ 680 KB per vector),
    /// 2 read ports. `len` must be a multiple of 512.
    pub fn paper_geometry(len: usize) -> polymem::Result<Self> {
        if len > 170 * 512 {
            return Err(polymem::PolyMemError::InvalidGeometry {
                reason: format!(
                    "paper geometry limits each vector to {} elements, got {len}",
                    170 * 512
                ),
            });
        }
        Self::new(len, 512, 2, 4, AccessScheme::RoCo, 2)
    }

    /// Maximum vector elements under the paper geometry.
    pub const PAPER_MAX_LEN: usize = 170 * 512;

    /// The same layout over a different flat backing layout. With
    /// `AddrInterleaved` the banks of one parallel access sit adjacent in
    /// host memory, so the region-copy replay's unit-stride runs span whole
    /// rows instead of per-bank segments.
    pub fn with_layout(mut self, layout: BankLayout) -> Self {
        self.config = self.config.with_layout(layout);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_capacity() {
        let l = StreamLayout::paper_geometry(170 * 512).unwrap();
        // ~2 MB total (paper: "2MB of storage effectively available").
        let mb = l.config.capacity_bytes() as f64 / (1024.0 * 1024.0);
        assert!(mb > 1.9 && mb < 2.1, "{mb} MB");
        assert_eq!(l.a.len * 8, 170 * 512 * 8); // ~700 KB per array
        assert_eq!(l.config.scheme, AccessScheme::RoCo);
        assert_eq!(l.config.lanes(), 8);
    }

    #[test]
    fn regions_disjoint() {
        let l = StreamLayout::paper_geometry(4 * 512).unwrap();
        let a_end = l.a.base_row + l.a.rows_used();
        assert!(a_end <= l.b.base_row);
        let b_end = l.b.base_row + l.b.rows_used();
        assert!(b_end <= l.c.base_row);
    }

    #[test]
    fn chunk_access_walks_rows() {
        let l = StreamLayout::new(2 * 512, 512, 2, 4, AccessScheme::RoCo, 1).unwrap();
        let v = l.b;
        assert_eq!(v.chunks(), 128);
        let first = v.access(0);
        assert_eq!((first.i, first.j), (v.base_row, 0));
        let last_in_row = v.access(63);
        assert_eq!((last_in_row.i, last_in_row.j), (v.base_row, 504));
        let next_row = v.access(64);
        assert_eq!((next_row.i, next_row.j), (v.base_row + 1, 0));
    }

    #[test]
    fn coord_of_element() {
        let l = StreamLayout::paper_geometry(512).unwrap();
        assert_eq!(l.c.coord(0), (l.c.base_row, 0));
        assert_eq!(l.c.coord(511), (l.c.base_row, 511));
    }

    #[test]
    fn oversize_rejected() {
        assert!(StreamLayout::paper_geometry(171 * 512).is_err());
        assert!(StreamLayout::new(100, 512, 2, 4, AccessScheme::RoCo, 1).is_err());
    }
}
