//! # polymem-stream-bench — the STREAM benchmark on MAX-PolyMem
//!
//! A faithful model of the paper's Fig. 9 design: a host-orchestrated
//! STREAM benchmark whose vectors live in PolyMem's three regions and whose
//! compute stage streams one 8-element chunk per cycle through the memory's
//! read port(s), feeding the write port from the memory's own output.
//!
//! * [`layout`] — vector placement (the paper's exact 170 x 512 x 8 B
//!   geometry is [`StreamLayout::paper_geometry`](layout::StreamLayout::paper_geometry));
//! * [`op`] — Copy (measured in the paper), Scale, Sum, Triad (the paper's
//!   future work, implemented as the extension);
//! * [`controller`] — the Fig. 9 Controller FSM as a simulator kernel;
//! * [`burst`] — the region-burst controller: whole-region bursts on the
//!   PolyMem kernel's region/copy/write ports instead of per-chunk
//!   requests, with identical cycle accounting;
//! * [`region_copy`] — STREAM-Copy as whole-vector region copies (compiled
//!   region plans vs the per-access baseline);
//! * [`probe`] — a headless one-call burst-Copy harness for design-space
//!   sweeps (measured cycles per configuration, any scheme);
//! * [`app`] — the assembled design with Load / Compute / Offload staging
//!   and the paper's measurement methodology (1000 blocking runs, ~300 ns
//!   host-call overhead, 14-cycle read latency);
//! * [`report`] — STREAM-standard output and the Fig. 10 series.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod app;
pub mod burst;
pub mod controller;
pub mod graph;
pub mod layout;
pub mod modular;
pub mod op;
pub mod probe;
pub mod region_copy;
pub mod report;
pub mod staged;

pub use app::{scalar_reference, StageTiming, StreamApp, PAPER_STREAM_FREQ_MHZ};
pub use burst::BurstController;
pub use controller::{Controller, ControllerState};
pub use layout::{StreamLayout, VectorLayout};
pub use modular::{run_modular, run_modular_burst, ModularRun};
pub use op::StreamOp;
pub use probe::{probe_burst_copy, ProbeResult};
pub use region_copy::{vector_regions, RegionCopy};
pub use report::{fig10_default_sizes, fig10_series, fig10_series_burst, Fig10Point, StreamRow};
pub use staged::{
    pcie_chunk_interval, BurstLoadKernel, BurstOffloadKernel, LoadKernel, OffloadKernel,
};
