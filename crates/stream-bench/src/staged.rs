//! Streamed Load and Offload stages (the full Fig. 9 data path).
//!
//! [`crate::app::StreamApp`] fills and drains PolyMem through the host
//! debug port, which is fine for measuring the Copy stage (the paper times
//! stages in isolation). This module implements the Load and Offload
//! stages as *real kernels*: host data enters through PolyMem's write port
//! chunk by chunk (throttled to the PCIe rate), and leaves through a read
//! port, so the complete benchmark runs on the simulated data path.

use crate::layout::VectorLayout;
use crate::region_copy::vector_regions;
use dfe_sim::kernel::Kernel;
use dfe_sim::pcie::PcieLink;
use dfe_sim::polymem_kernel::{
    ReadRequest, ReadResponse, RegionRequest, RegionResponse, RegionWriteRequest, WriteRequest,
};
use dfe_sim::stream::StreamRef;
use polymem::Region;
use std::cell::Cell;
use std::rc::Rc;

/// Cycles between host chunks at the PCIe bulk rate: one `lanes * 8`-byte
/// chunk every `ceil(chunk_bytes / (link_Bns * period_ns))` cycles.
pub fn pcie_chunk_interval(link: &PcieLink, lanes: usize, freq_mhz: f64) -> u64 {
    link.chunk_interval_cycles(lanes * 8, freq_mhz)
}

/// Streams one vector from the host into PolyMem through the write port,
/// paced at the PCIe rate.
pub struct LoadKernel {
    name: String,
    layout: VectorLayout,
    data: Vec<u64>,
    next_chunk: usize,
    interval: u64,
    last_issue: Option<u64>,
    write_req: StreamRef<WriteRequest>,
    pacing: Option<Rc<Cell<bool>>>,
}

impl LoadKernel {
    /// Build a loader for `data` into `layout`, pacing one chunk per
    /// `interval` cycles.
    pub fn new(
        name: impl Into<String>,
        layout: VectorLayout,
        data: Vec<u64>,
        interval: u64,
        write_req: StreamRef<WriteRequest>,
    ) -> Self {
        assert_eq!(data.len(), layout.len, "vector length mismatch");
        Self {
            name: name.into(),
            layout,
            data,
            next_chunk: 0,
            interval: interval.max(1),
            last_issue: None,
            write_req,
            pacing: None,
        }
    }

    /// Chunks still to send.
    pub fn remaining(&self) -> usize {
        self.layout.chunks() - self.next_chunk
    }

    /// Share a pacing flag with the downstream PolyMem kernel (see
    /// [`dfe_sim::polymem_kernel::PolyMemKernel::set_pcie_flag`]): the
    /// loader raises it while it is withholding a chunk for PCIe arrival
    /// timing, so the memory attributes those stalls to `pcie`, not `idle`.
    pub fn set_pacing_flag(&mut self, flag: Rc<Cell<bool>>) {
        self.pacing = Some(flag);
    }

    fn set_pacing(&self, on: bool) {
        if let Some(f) = &self.pacing {
            f.set(on);
        }
    }
}

impl Kernel for LoadKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, cycle: u64) {
        if self.next_chunk >= self.layout.chunks() {
            self.set_pacing(false);
            return;
        }
        if let Some(last) = self.last_issue {
            if cycle < last + self.interval {
                self.set_pacing(true);
                return;
            }
        }
        self.set_pacing(false);
        if !self.write_req.borrow().can_push() {
            return;
        }
        let lanes = self.layout.lanes;
        let base = self.next_chunk * lanes;
        let chunk = self.data[base..base + lanes].to_vec();
        self.write_req
            .borrow_mut()
            .push((self.layout.access(self.next_chunk), chunk));
        self.last_issue = Some(cycle);
        self.next_chunk += 1;
    }

    fn is_idle(&self) -> bool {
        self.remaining() == 0
    }

    fn next_event(&self) -> Option<u64> {
        if self.next_chunk >= self.layout.chunks() {
            return None;
        }
        // The next issue cycle is self-scheduled by the PCIe pacing; a wake
        // in the past (pacing satisfied, possibly blocked on a full write
        // FIFO) keeps the design on per-cycle ticks, as the ticked loop would.
        match self.last_issue {
            Some(last) => Some(last + self.interval),
            None => Some(0),
        }
    }

    fn skip_to(&mut self, _from: u64, _to: u64) {
        // A quiescent span can only fall inside this loader's own pacing
        // window (its wake bounds the jump), where the ticked loop holds the
        // PCIe flag high on every cycle; once the vector is sent, it holds
        // it low. Runs before the downstream PolyMem kernel's `skip_to` in
        // registration order, so the bulk attribution sees the right flag.
        self.set_pacing(self.next_chunk < self.layout.chunks());
    }
}

/// Streams one vector out of PolyMem through a read port into a host
/// buffer (the DEMUX target of Fig. 9).
pub struct OffloadKernel {
    name: String,
    layout: VectorLayout,
    issued: usize,
    collected: Vec<u64>,
    read_req: StreamRef<ReadRequest>,
    read_resp: StreamRef<ReadResponse>,
}

impl OffloadKernel {
    /// Build an offloader for `layout` on the given port streams.
    pub fn new(
        name: impl Into<String>,
        layout: VectorLayout,
        read_req: StreamRef<ReadRequest>,
        read_resp: StreamRef<ReadResponse>,
    ) -> Self {
        Self {
            name: name.into(),
            layout,
            issued: 0,
            collected: Vec::with_capacity(layout.len),
            read_req,
            read_resp,
        }
    }

    /// Elements received so far.
    pub fn collected(&self) -> &[u64] {
        &self.collected
    }

    /// Take the full vector once complete.
    pub fn take(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.collected)
    }

    /// Whether the whole vector has been received.
    pub fn done(&self) -> bool {
        self.collected.len() >= self.layout.len
    }
}

impl Kernel for OffloadKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _cycle: u64) {
        if self.issued < self.layout.chunks() && self.read_req.borrow().can_push() {
            self.read_req
                .borrow_mut()
                .push(self.layout.access(self.issued));
            self.issued += 1;
        }
        if let Some(chunk) = self.read_resp.borrow_mut().pop() {
            self.collected.extend_from_slice(&chunk);
        }
    }

    fn is_idle(&self) -> bool {
        self.done()
    }

    fn next_event(&self) -> Option<u64> {
        // Wakes only on external input: room to issue or a response to
        // collect. The memory's pipeline wake bounds every in-flight span.
        let can_issue = self.issued < self.layout.chunks() && self.read_req.borrow().can_push();
        if can_issue || !self.read_resp.borrow().is_empty() {
            Some(0)
        } else {
            None
        }
    }
}

/// Streams one vector from the host into PolyMem as **region-write
/// bursts**, still paced at the PCIe rate: a burst is released only once
/// all of its chunks have arrived over the link (store-and-forward at
/// region granularity), so the load stage stays PCIe-bound while issuing
/// a handful of bursts instead of one request per chunk.
pub struct BurstLoadKernel {
    name: String,
    regions: Vec<Region>,
    /// Per-region data slices, in vector order.
    data: Vec<Vec<u64>>,
    next: usize,
    /// Cycle at which each region's last PCIe chunk has arrived.
    arrival: Vec<u64>,
    write_req: StreamRef<RegionWriteRequest>,
    pacing: Option<Rc<Cell<bool>>>,
}

impl BurstLoadKernel {
    /// Build a burst loader for `data` into `layout` on a `p`-row bank
    /// grid, with one PCIe chunk (`lanes` elements) arriving every
    /// `interval` cycles.
    pub fn new(
        name: impl Into<String>,
        layout: VectorLayout,
        p: usize,
        data: Vec<u64>,
        interval: u64,
        write_req: StreamRef<RegionWriteRequest>,
    ) -> Self {
        assert_eq!(data.len(), layout.len, "vector length mismatch");
        let name = name.into();
        let regions = vector_regions(&layout, p, &name);
        let interval = interval.max(1);
        let mut slices = Vec::with_capacity(regions.len());
        let mut arrival = Vec::with_capacity(regions.len());
        let mut offset = 0usize;
        let mut chunks_seen = 0u64;
        for r in &regions {
            let len = r.len();
            slices.push(data[offset..offset + len].to_vec());
            offset += len;
            chunks_seen += (len / layout.lanes) as u64;
            arrival.push(chunks_seen * interval);
        }
        Self {
            name,
            regions,
            data: slices,
            next: 0,
            arrival,
            write_req,
            pacing: None,
        }
    }

    /// Bursts still to send.
    pub fn remaining(&self) -> usize {
        self.regions.len() - self.next
    }

    /// Share a pacing flag with the downstream PolyMem kernel (see
    /// [`dfe_sim::polymem_kernel::PolyMemKernel::set_pcie_flag`]): raised
    /// while the next burst's tail chunk is still on the PCIe wire.
    pub fn set_pacing_flag(&mut self, flag: Rc<Cell<bool>>) {
        self.pacing = Some(flag);
    }

    fn set_pacing(&self, on: bool) {
        if let Some(f) = &self.pacing {
            f.set(on);
        }
    }
}

impl Kernel for BurstLoadKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, cycle: u64) {
        if self.next >= self.regions.len() {
            self.set_pacing(false);
            return;
        }
        if cycle < self.arrival[self.next] {
            self.set_pacing(true);
            return; // the burst's tail chunk is still on the wire
        }
        self.set_pacing(false);
        if !self.write_req.borrow().can_push() {
            return;
        }
        let region = self.regions[self.next].clone();
        let values = std::mem::take(&mut self.data[self.next]);
        self.write_req.borrow_mut().push((region, values));
        self.next += 1;
    }

    fn is_idle(&self) -> bool {
        self.remaining() == 0
    }

    fn next_event(&self) -> Option<u64> {
        if self.next >= self.regions.len() {
            return None;
        }
        // Store-and-forward: the next burst is releasable exactly when its
        // tail chunk lands, a cycle known at construction time. An arrival
        // in the past (burst ready, blocked on FIFO room) degenerates to
        // per-cycle ticking.
        Some(self.arrival[self.next])
    }

    fn skip_to(&mut self, _from: u64, _to: u64) {
        // A skipped span sits strictly before the next burst's arrival
        // cycle — the ticked loop would have flagged PCIe pacing throughout.
        self.set_pacing(self.next < self.regions.len());
    }

    fn busy_reason(&self) -> Option<String> {
        if self.is_idle() {
            None
        } else {
            Some(format!("{} load bursts unsent", self.remaining()))
        }
    }
}

/// Streams one vector out of PolyMem as **region read bursts** through the
/// kernel's region port, collecting the canonical-order elements.
pub struct BurstOffloadKernel {
    name: String,
    regions: Vec<Region>,
    expected: usize,
    issued: usize,
    collected: Vec<u64>,
    region_req: StreamRef<RegionRequest>,
    region_resp: StreamRef<RegionResponse>,
}

impl BurstOffloadKernel {
    /// Build a burst offloader for `layout` on a `p`-row bank grid, using
    /// the kernel's region port streams.
    pub fn new(
        name: impl Into<String>,
        layout: VectorLayout,
        p: usize,
        region_req: StreamRef<RegionRequest>,
        region_resp: StreamRef<RegionResponse>,
    ) -> Self {
        let name = name.into();
        let regions = vector_regions(&layout, p, &name);
        Self {
            name,
            regions,
            expected: layout.len,
            issued: 0,
            collected: Vec::with_capacity(layout.len),
            region_req,
            region_resp,
        }
    }

    /// Elements received so far.
    pub fn collected(&self) -> &[u64] {
        &self.collected
    }

    /// Take the full vector once complete.
    pub fn take(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.collected)
    }

    /// Whether the whole vector has been received.
    pub fn done(&self) -> bool {
        self.collected.len() >= self.expected
    }
}

impl Kernel for BurstOffloadKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _cycle: u64) {
        if self.issued < self.regions.len() && self.region_req.borrow().can_push() {
            self.region_req
                .borrow_mut()
                .push(self.regions[self.issued].clone());
            self.issued += 1;
        }
        if let Some(burst) = self.region_resp.borrow_mut().pop() {
            self.collected.extend_from_slice(&burst);
        }
    }

    fn is_idle(&self) -> bool {
        self.done()
    }

    fn next_event(&self) -> Option<u64> {
        let can_issue = self.issued < self.regions.len() && self.region_req.borrow().can_push();
        if can_issue || !self.region_resp.borrow().is_empty() {
            Some(0)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::StreamLayout;
    use dfe_sim::manager::Manager;
    use dfe_sim::polymem_kernel::PolyMemKernel;
    use dfe_sim::stream::stream;
    use polymem::AccessScheme;
    use std::rc::Rc;

    #[allow(clippy::type_complexity)]
    fn build(
        n: usize,
    ) -> (
        StreamLayout,
        Vec<StreamRef<ReadRequest>>,
        Vec<StreamRef<ReadResponse>>,
        StreamRef<WriteRequest>,
        PolyMemKernel,
    ) {
        let layout = StreamLayout::new(n, 64, 2, 4, AccessScheme::RoCo, 2).unwrap();
        let rq: Vec<_> = (0..2).map(|p| stream(format!("rq{p}"), 8)).collect();
        let rs: Vec<_> = (0..2).map(|p| stream(format!("rs{p}"), 32)).collect();
        let wq = stream("wq", 8);
        let pm = PolyMemKernel::new(
            "pm",
            layout.config,
            14,
            rq.clone(),
            rs.clone(),
            Rc::clone(&wq),
        )
        .unwrap();
        (layout, rq, rs, wq, pm)
    }

    #[test]
    fn pcie_interval_math() {
        let link = PcieLink::vectis();
        // 64 B chunks at 120 MHz: 2 B/ns * 8.33 ns = 16.7 B/cycle -> 4 cycles.
        assert_eq!(pcie_chunk_interval(&link, 8, 120.0), 4);
        // Faster clock -> fewer bytes per cycle -> longer interval.
        assert!(pcie_chunk_interval(&link, 8, 240.0) >= 8);
    }

    #[test]
    fn load_streams_vector_through_write_port() {
        let n = 4 * 64;
        let (layout, _rq, _rs, wq, pm) = build(n);
        let data: Vec<u64> = (0..n as u64).map(|x| x * 7).collect();
        let mut mgr = Manager::new(120.0);
        mgr.add_kernel(Box::new(LoadKernel::new(
            "load-a",
            layout.a,
            data.clone(),
            4,
            Rc::clone(&wq),
        )));
        mgr.add_kernel(Box::new(pm));
        let cycles = mgr.run_until_idle(10_000);
        // PCIe-paced: 32 chunks at 1 per 4 cycles.
        assert!(
            cycles >= 4 * (n as u64 / 8 - 1),
            "load must be PCIe-bound, took {cycles}"
        );
        let _ = cycles;
    }

    #[test]
    fn load_then_offload_roundtrip() {
        let n = 4 * 64;
        let (layout, rq, rs, wq, mut pm) = build(n);
        let data: Vec<u64> = (0..n as u64).map(|x| x * 13 + 1).collect();
        // Load stage: tick loader + memory manually to keep ownership of pm.
        {
            let mut loader = LoadKernel::new("load-b", layout.b, data.clone(), 4, Rc::clone(&wq));
            let mut cycle = 0u64;
            while !(loader.is_idle() && pm.pipelines_empty()) {
                loader.tick(cycle);
                pm.tick(cycle);
                cycle += 1;
                assert!(cycle < 20_000);
            }
        }
        // Offload stage through port 1.
        let mut off = OffloadKernel::new("off-b", layout.b, Rc::clone(&rq[1]), Rc::clone(&rs[1]));
        let mut cycle = 100_000u64;
        while !off.done() {
            off.tick(cycle);
            pm.tick(cycle);
            cycle += 1;
            assert!(cycle < 200_000);
        }
        assert_eq!(off.take(), data);
    }

    #[test]
    fn burst_load_is_pcie_paced_and_lands() {
        let n = 4 * 64;
        let (layout, _rq, _rs, _wq, mut pm) = build(n);
        let bwq = stream("bwq", 4);
        pm.attach_region_write_port(Rc::clone(&bwq));
        let data: Vec<u64> = (0..n as u64).map(|x| x * 3 + 2).collect();
        let mut loader = BurstLoadKernel::new("A", layout.a, layout.config.p, data.clone(), 4, bwq);
        assert_eq!(loader.remaining(), 1, "4 rows over p=2 is one Block burst");
        assert!(loader.busy_reason().is_some());
        let mut cycle = 0u64;
        while !(loader.is_idle() && pm.pipelines_empty()) {
            loader.tick(cycle);
            pm.tick(cycle);
            cycle += 1;
            assert!(cycle < 20_000);
        }
        // Store-and-forward: the single burst waits for all 32 chunks at
        // one per 4 cycles.
        assert!(cycle >= 32 * 4, "load must stay PCIe-bound, took {cycle}");
        for (k, &want) in data.iter().enumerate() {
            let (i, j) = layout.a.coord(k);
            assert_eq!(pm.mem().get(i, j).unwrap(), want);
        }
        assert_eq!(pm.region_writes_served(), 1);
    }

    #[test]
    fn burst_load_then_burst_offload_roundtrip_ragged() {
        // 3 rows with p = 2 -> a Row cover: three bursts, each paced.
        let n = 3 * 64;
        let (layout, _rq, _rs, _wq, mut pm) = build(n);
        let bwq = stream("bwq", 4);
        let rreq = stream("rreq", 4);
        let rresp = stream("rresp", 2);
        pm.attach_region_write_port(Rc::clone(&bwq));
        pm.attach_region_port(Rc::clone(&rreq), Rc::clone(&rresp));
        let data: Vec<u64> = (0..n as u64).map(|x| x * 13 + 1).collect();
        let mut loader = BurstLoadKernel::new("B", layout.b, layout.config.p, data.clone(), 4, bwq);
        assert_eq!(loader.remaining(), 3);
        let mut cycle = 0u64;
        while !(loader.is_idle() && pm.pipelines_empty()) {
            loader.tick(cycle);
            pm.tick(cycle);
            cycle += 1;
            assert!(cycle < 20_000);
        }
        let mut off = BurstOffloadKernel::new("B", layout.b, layout.config.p, rreq, rresp);
        let mut cycle = 100_000u64;
        while !off.done() {
            off.tick(cycle);
            pm.tick(cycle);
            cycle += 1;
            assert!(cycle < 200_000);
        }
        assert_eq!(off.take(), data);
        assert_eq!(pm.region_reads_served(), 3);
    }

    #[test]
    fn pcie_pacing_attributed_to_pcie_not_idle() {
        let n = 4 * 64;
        let (layout, _rq, _rs, _wq, mut pm) = build(n);
        let bwq = stream("bwq", 4);
        pm.attach_region_write_port(Rc::clone(&bwq));
        let reg = polymem::TelemetryRegistry::new();
        pm.attach_telemetry(&reg);
        let pacing = Rc::new(Cell::new(false));
        pm.set_pcie_flag(Rc::clone(&pacing));
        let data: Vec<u64> = (0..n as u64).collect();
        let mut loader = BurstLoadKernel::new("A", layout.a, layout.config.p, data, 4, bwq);
        loader.set_pacing_flag(Rc::clone(&pacing));
        let mut cycle = 0u64;
        while !(loader.is_idle() && pm.pipelines_empty()) {
            loader.tick(cycle);
            pm.tick(cycle);
            cycle += 1;
            assert!(cycle < 20_000);
        }
        let snap = reg.snapshot();
        let state = |s: &str| {
            snap.counter_value("dfe_kernel_cycles_total", &[("kernel", "pm"), ("state", s)])
                .unwrap_or(0)
        };
        // Store-and-forward: most of the load is spent waiting on the link.
        assert!(state("pcie") > 0, "pacing stalls must land in pcie");
        assert!(
            state("pcie") > state("idle"),
            "PCIe-bound load: pcie {} vs idle {}",
            state("pcie"),
            state("idle")
        );
        let total = state("active")
            + state("contention")
            + state("pipeline")
            + state("pcie")
            + state("idle");
        assert_eq!(total, cycle, "every tick lands in exactly one bucket");
    }

    #[test]
    fn offload_preserves_chunk_order() {
        let n = 2 * 64;
        let (layout, rq, rs, wq, mut pm) = build(n);
        // Fill via host port for speed.
        for k in 0..n {
            let (i, j) = layout.c.coord(k);
            pm.mem().set(i, j, k as u64).unwrap();
        }
        let _ = wq;
        let mut off = OffloadKernel::new("off-c", layout.c, Rc::clone(&rq[0]), Rc::clone(&rs[0]));
        let mut cycle = 0u64;
        while !off.done() {
            off.tick(cycle);
            pm.tick(cycle);
            cycle += 1;
            assert!(cycle < 10_000);
        }
        assert_eq!(off.collected(), (0..n as u64).collect::<Vec<_>>());
    }
}
