//! The assembled STREAM design and its staged execution (paper §V).
//!
//! The design runs in three host-orchestrated stages, each a blocking call:
//!
//! 1. **Load** — the host streams vectors A, B, C into PolyMem's three
//!    regions over PCIe;
//! 2. **Compute** (the measured stage — "Copy" in the paper) — the
//!    Controller streams chunks through PolyMem's read port(s), applies the
//!    op, and feeds the write port from the memory's own output (the
//!    feedback loop), fully pipelined;
//! 3. **Offload** — the host retrieves the result vector.
//!
//! Stage timing follows the paper's measurement methodology: the compute
//! stage costs `cycles / f` plus the ~300 ns blocking-call overhead, and is
//! repeated (1000 runs in the paper) for resolution; the simulator verifies
//! run-to-run determinism instead of re-simulating all 1000.

use crate::burst::BurstController;
use crate::controller::{Controller, ControllerState, StateRef};
use crate::layout::StreamLayout;
use crate::op::StreamOp;
use dfe_sim::clock::SimClock;
use dfe_sim::kernel::Kernel;
use dfe_sim::pcie::{Host, PcieLink};
use dfe_sim::polymem_kernel::{PolyMemKernel, PAPER_READ_LATENCY};
use dfe_sim::sched::{self, SchedulerMode, SchedulerStats, Step};
use dfe_sim::stream::stream;
use polymem::telemetry::{Counter, Histogram, TelemetryRegistry};
use polymem::tracing::{NameId, TraceJournal, TraceWriter};
use std::cell::RefCell;
use std::rc::Rc;

/// The paper's synthesized STREAM clock: 120 MHz.
pub const PAPER_STREAM_FREQ_MHZ: f64 = 120.0;

/// Bucket bounds for per-pass cycle counts: paper-size passes land in the
/// thousands, toy geometries in the tens.
static PASS_CYCLE_BOUNDS: [u64; 8] = [64, 128, 256, 512, 1024, 4096, 16384, 65536];

/// Bucket bounds for per-pass achieved bandwidth in MB/s; the top finite
/// bucket sits just under the paper's 15 360 MB/s peak.
static PASS_BANDWIDTH_BOUNDS: [u64; 6] = [1000, 2000, 4000, 8000, 12000, 15360];

/// Per-pass app telemetry: pass-level histograms plus the simulated-cycle
/// accumulator that the exact-sum stall check reconciles against
/// `dfe_kernel_cycles_total` (the kernel ticks exactly once per simulated
/// cycle in [`StreamApp::run_pass`], so the state buckets must sum to
/// `stream_sim_cycles_total` when telemetry was attached before the first
/// pass).
struct AppTelemetry {
    pass_cycles: Histogram,
    pass_bandwidth: Histogram,
    passes: Counter,
    sim_cycles: Counter,
    /// Span-journal ring overwrites, mirrored from the journal's drop
    /// counter at each pass end (stays 0 when no journal is attached —
    /// registered unconditionally so the committed telemetry schema is
    /// satisfiable by `attach_telemetry` alone).
    trace_dropped: Counter,
}

/// Span-journal wiring for the whole design (see
/// [`StreamApp::attach_tracing`]): the PolyMem kernel instruments itself;
/// the app keeps the journal's logical clock in step with the simulation
/// clock, renders scheduler fast-forwards as `sched`-track spans, and
/// mirrors the journal's drop counter into telemetry.
struct AppTracing {
    journal: TraceJournal,
    sched: TraceWriter,
    fast_forward: NameId,
    /// Drops already mirrored into `stream_trace_dropped_total`.
    synced_drops: u64,
}

/// Timing result of a measured compute stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageTiming {
    /// Cycles per run (deterministic across runs).
    pub cycles_per_run: u64,
    /// Number of runs accounted.
    pub runs: usize,
    /// Wall time per run in ns, including the host-call overhead.
    pub time_per_run_ns: f64,
    /// Aggregated bandwidth in MB/s (reads + writes, STREAM counting).
    pub bandwidth_mbps: f64,
    /// The theoretical peak for this op/geometry/frequency in MB/s.
    pub peak_mbps: f64,
}

impl StageTiming {
    /// Fraction of theoretical peak achieved.
    pub fn fraction_of_peak(&self) -> f64 {
        self.bandwidth_mbps / self.peak_mbps
    }
}

/// The compute-stage driver: the per-chunk Fig. 9 Controller FSM, or the
/// region-burst controller that streams whole vectors per request.
enum Driver {
    PerChunk(Controller),
    Burst(BurstController),
}

impl Driver {
    fn pass_done(&self) -> bool {
        match self {
            Driver::PerChunk(c) => c.pass_done(),
            Driver::Burst(b) => b.pass_done(),
        }
    }

    fn begin_pass(&mut self) {
        if let Driver::Burst(b) = self {
            b.begin_pass();
        }
    }

    /// Work units per pass (chunks or bursts), for the wedge diagnostic.
    fn units(&self) -> usize {
        match self {
            Driver::PerChunk(c) => c.chunks(),
            Driver::Burst(b) => b.bursts(),
        }
    }
}

/// Both controller flavours are kernels, so the driver is one too — this is
/// what lets [`StreamApp::run_pass`] hand the whole design to the shared
/// [`sched::advance`] engine.
impl Kernel for Driver {
    fn name(&self) -> &str {
        match self {
            Driver::PerChunk(c) => c.name(),
            Driver::Burst(b) => b.name(),
        }
    }

    fn tick(&mut self, cycle: u64) {
        match self {
            Driver::PerChunk(c) => c.tick(cycle),
            Driver::Burst(b) => b.tick(cycle),
        }
    }

    fn is_idle(&self) -> bool {
        self.pass_done()
    }

    fn next_event(&self) -> Option<u64> {
        match self {
            Driver::PerChunk(c) => c.next_event(),
            Driver::Burst(b) => b.next_event(),
        }
    }

    fn skip_to(&mut self, from: u64, to: u64) {
        match self {
            Driver::PerChunk(c) => c.skip_to(from, to),
            Driver::Burst(b) => b.skip_to(from, to),
        }
    }

    fn busy_reason(&self) -> Option<String> {
        match self {
            Driver::PerChunk(c) => c.busy_reason(),
            Driver::Burst(b) => b.busy_reason(),
        }
    }
}

/// The assembled design: PolyMem kernel + Controller + host endpoint.
pub struct StreamApp {
    op: StreamOp,
    layout: StreamLayout,
    clock: SimClock,
    driver: Driver,
    polymem: PolyMemKernel,
    state: StateRef,
    host: Host,
    mode: SchedulerMode,
    sched_stats: SchedulerStats,
    tlm: Option<AppTelemetry>,
    trc: Option<AppTracing>,
}

impl StreamApp {
    /// Build the design for `op` on `layout` at `freq_mhz` with the paper's
    /// 14-cycle read latency.
    pub fn new(op: StreamOp, layout: StreamLayout, freq_mhz: f64) -> polymem::Result<Self> {
        Self::with_latency(op, layout, freq_mhz, PAPER_READ_LATENCY)
    }

    /// Build with an explicit read latency (for latency-sensitivity studies).
    pub fn with_latency(
        op: StreamOp,
        layout: StreamLayout,
        freq_mhz: f64,
        read_latency: u64,
    ) -> polymem::Result<Self> {
        Self::build(op, layout, freq_mhz, read_latency, false)
    }

    /// Build the **region-burst** design for `op` on `layout`: the compute
    /// stage issues whole-region bursts on the PolyMem kernel's region
    /// ports instead of per-chunk requests (see [`crate::burst`]). Cycle
    /// accounting is identical; the host-side modelling cost per pass is
    /// not.
    pub fn new_burst(op: StreamOp, layout: StreamLayout, freq_mhz: f64) -> polymem::Result<Self> {
        Self::with_latency_burst(op, layout, freq_mhz, PAPER_READ_LATENCY)
    }

    /// Build the region-burst design with an explicit read latency.
    pub fn with_latency_burst(
        op: StreamOp,
        layout: StreamLayout,
        freq_mhz: f64,
        read_latency: u64,
    ) -> polymem::Result<Self> {
        Self::build(op, layout, freq_mhz, read_latency, true)
    }

    fn build(
        op: StreamOp,
        layout: StreamLayout,
        freq_mhz: f64,
        read_latency: u64,
        burst: bool,
    ) -> polymem::Result<Self> {
        let ports = layout.config.read_ports;
        let rq: Vec<_> = (0..ports)
            .map(|p| stream(format!("read-req-{p}"), 8))
            .collect();
        let rs: Vec<_> = (0..ports)
            .map(|p| stream(format!("read-resp-{p}"), read_latency as usize + 8))
            .collect();
        let wq = stream("write-req", 8);
        let mut polymem = PolyMemKernel::new(
            "polymem",
            layout.config,
            read_latency,
            rq.clone(),
            rs.clone(),
            Rc::clone(&wq),
        )?;
        let state: StateRef = Rc::new(RefCell::new(ControllerState::default()));
        let driver = if burst {
            let region_req = stream("region-req", 4);
            let region_resp = stream("region-resp", 2);
            let copy_req = stream("copy-req", 4);
            let copy_resp = stream("copy-resp", 2);
            let burst_wq = stream("region-write-req", 2);
            polymem.attach_region_port(Rc::clone(&region_req), Rc::clone(&region_resp));
            polymem.attach_region_copy_port(Rc::clone(&copy_req), Rc::clone(&copy_resp));
            polymem.attach_region_write_port(Rc::clone(&burst_wq));
            Driver::Burst(BurstController::new(
                op,
                layout,
                Rc::clone(&state),
                copy_req,
                copy_resp,
                region_req,
                region_resp,
                burst_wq,
            ))
        } else {
            Driver::PerChunk(Controller::new(op, layout, Rc::clone(&state), rq, rs, wq))
        };
        Ok(Self {
            op,
            layout,
            clock: SimClock::new(freq_mhz),
            driver,
            polymem,
            state,
            host: Host::new(PcieLink::vectis()),
            mode: SchedulerMode::default(),
            sched_stats: SchedulerStats::default(),
            tlm: None,
            trc: None,
        })
    }

    /// Select the driving loop for [`Self::run_pass`]: the event-driven
    /// scheduler (default) or the legacy per-cycle ticked loop. Cycle counts
    /// are identical in both modes; only host time differs.
    pub fn set_scheduler_mode(&mut self, mode: SchedulerMode) {
        self.mode = mode;
    }

    /// The active scheduling mode.
    pub fn scheduler_mode(&self) -> SchedulerMode {
        self.mode
    }

    /// What the event-driven loop actually did (ticks vs fast-forward jumps),
    /// accumulated across passes.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.sched_stats
    }

    /// Wire the whole design into `registry`: the PolyMem kernel's cycle
    /// attribution and datapath counters, the burst controller's occupancy
    /// histogram (burst mode only), and the app's own per-pass cycle and
    /// bandwidth histograms. Attach before the first [`Self::run_pass`] so
    /// the attribution buckets cover every simulated cycle.
    pub fn attach_telemetry(&mut self, registry: &TelemetryRegistry) {
        self.polymem.attach_telemetry(registry);
        if let Driver::Burst(b) = &mut self.driver {
            b.attach_telemetry(registry);
        }
        let labels = vec![("op", self.op.name().to_string())];
        self.tlm = Some(AppTelemetry {
            pass_cycles: registry.histogram(
                "stream_pass_cycles",
                labels.clone(),
                &PASS_CYCLE_BOUNDS,
            ),
            pass_bandwidth: registry.histogram(
                "stream_pass_bandwidth_mbps",
                labels.clone(),
                &PASS_BANDWIDTH_BOUNDS,
            ),
            passes: registry.counter("stream_passes_total", labels.clone()),
            sim_cycles: registry.counter("stream_sim_cycles_total", labels.clone()),
            trace_dropped: registry.counter("stream_trace_dropped_total", labels),
        });
    }

    /// Record the whole design into `journal`: the PolyMem kernel's
    /// cycle-attribution strip, per-kind burst tracks and memory replay
    /// spans (see [`PolyMemKernel::attach_tracing`]), plus `sched`-track
    /// fast-forward spans for every event-driven jump. Attach before the
    /// first [`Self::run_pass`]; each pass end flushes the open
    /// attribution run, so the journal's per-state span sums for the
    /// `polymem` track reconcile exactly with `dfe_kernel_cycles_total`.
    pub fn attach_tracing(&mut self, journal: &TraceJournal) {
        journal.set_cycle(self.clock.cycle());
        self.polymem.attach_tracing(journal);
        self.trc = Some(AppTracing {
            journal: journal.clone(),
            sched: journal.writer("sched"),
            fast_forward: journal.intern("fast-forward"),
            synced_drops: 0,
        });
    }

    /// The op being benchmarked.
    pub fn op(&self) -> StreamOp {
        self.op
    }

    /// The memory layout.
    pub fn layout(&self) -> &StreamLayout {
        &self.layout
    }

    /// Host-side statistics (PCIe traffic and time).
    pub fn host_stats(&self) -> dfe_sim::pcie::HostStats {
        self.host.stats()
    }

    /// **Load stage**: fill A, B and C with the given values (lengths must
    /// equal the layout's vector length). Returns the stage's host time in ns.
    pub fn load(&mut self, a: &[f64], b: &[f64], c: &[f64]) -> polymem::Result<f64> {
        let n = self.layout.a.len;
        for (vals, lay) in [(a, self.layout.a), (b, self.layout.b), (c, self.layout.c)] {
            assert_eq!(vals.len(), n, "vector length mismatch");
            for (k, &v) in vals.iter().enumerate() {
                let (i, j) = lay.coord(k);
                self.polymem.mem().set(i, j, v.to_bits())?;
            }
        }
        Ok(self.host.send(3 * n * 8))
    }

    /// Run one compute pass to completion; returns the cycle count.
    /// Returns an error-free count only if the memory accepted every access
    /// (invalid accesses are surfaced via [`Self::errors`]).
    pub fn run_pass(&mut self) -> u64 {
        {
            let mut st = self.state.borrow_mut();
            *st = ControllerState {
                running: true,
                ..Default::default()
            };
        }
        self.driver.begin_pass();
        let start = self.clock.cycle();
        let max = 4 * self.layout.a.chunks() as u64 + 1000;
        while !(self.driver.pass_done() && self.polymem.pipelines_empty()) {
            match self.mode {
                SchedulerMode::Ticked => {
                    let c = self.clock.cycle();
                    if let Some(tr) = &self.trc {
                        tr.journal.set_cycle(c);
                    }
                    self.driver.tick(c);
                    self.polymem.tick(c);
                    self.clock.tick();
                }
                SchedulerMode::EventDriven => {
                    let before = self.clock.cycle();
                    if let Some(tr) = &self.trc {
                        tr.journal.set_cycle(before);
                    }
                    let mut kernels: [&mut dyn Kernel; 2] = [&mut self.driver, &mut self.polymem];
                    let step = sched::advance(
                        &mut self.clock,
                        &mut kernels,
                        start + max + 1,
                        &mut self.sched_stats,
                    );
                    if let (Some(tr), Step::Jumped(span) | Step::Stuck(span)) = (&self.trc, step) {
                        tr.sched.span_at(before, before + span, tr.fast_forward);
                        tr.journal.set_cycle(before + span);
                    }
                }
            }
            if self.clock.cycle() - start > max {
                panic!(
                    "STREAM pass wedged after {} cycles ({} of {} units written)",
                    max,
                    self.state.borrow().written,
                    self.driver.units()
                );
            }
        }
        let cycles = self.clock.cycle() - start;
        if let Some(tr) = &mut self.trc {
            self.polymem.finish_tracing();
            tr.journal.set_cycle(self.clock.cycle());
            if let Some(t) = &self.tlm {
                let dropped = tr.journal.dropped();
                t.trace_dropped.add(dropped - tr.synced_drops);
                tr.synced_drops = dropped;
            }
        }
        if let Some(t) = &self.tlm {
            t.passes.inc();
            t.sim_cycles.add(cycles);
            t.pass_cycles.observe(cycles);
            let ns = cycles as f64 * self.clock.period_ns();
            let bytes = (self.op.bytes_per_element() * self.layout.a.len) as f64;
            t.pass_bandwidth.observe((bytes / ns * 1000.0) as u64);
        }
        cycles
    }

    /// **Compute stage**, measured as the paper does: `runs` blocking
    /// invocations. The first `verify_runs` (min(3, runs)) are actually
    /// simulated and must agree cycle-for-cycle (the design is
    /// deterministic); the rest are accounted arithmetically.
    pub fn measure(&mut self, runs: usize) -> StageTiming {
        assert!(runs > 0);
        let first = self.run_pass();
        for r in 1..runs.min(3) {
            let again = self.run_pass();
            assert_eq!(again, first, "run {r} diverged from run 0");
        }
        let overhead = self.host.link().call_overhead_ns;
        for _ in 0..runs {
            self.host.signal();
        }
        let time_per_run_ns = first as f64 * self.clock.period_ns() + overhead;
        let n = self.layout.a.len;
        let bytes_per_run = (self.op.bytes_per_element() * n) as f64;
        let bandwidth_mbps = bytes_per_run / time_per_run_ns * 1000.0;
        // Peak: every cycle moves lanes*8 bytes per active port (reads) plus
        // lanes*8 written.
        let lanes = self.layout.config.lanes() as f64;
        let streams = (self.op.reads() + 1) as f64;
        let peak_mbps = streams * lanes * 8.0 * self.clock.freq_mhz();
        StageTiming {
            cycles_per_run: first,
            runs,
            time_per_run_ns,
            bandwidth_mbps,
            peak_mbps,
        }
    }

    /// **Offload stage**: read back the op's destination vector. Returns
    /// (values, host time ns).
    pub fn offload(&mut self) -> (Vec<f64>, f64) {
        let lay = match self.op {
            StreamOp::Copy => self.layout.c,
            _ => self.layout.a,
        };
        let n = lay.len;
        let mut out = Vec::with_capacity(n);
        for k in 0..n {
            let (i, j) = lay.coord(k);
            let bits = self.polymem.mem().get(i, j).expect("in-bounds");
            out.push(f64::from_bits(bits));
        }
        let t = self.host.receive(n * 8);
        (out, t)
    }

    /// Errors surfaced by the memory (empty in a correct design).
    pub fn errors(&self) -> &[polymem::PolyMemError] {
        self.polymem.errors()
    }
}

/// Scalar reference implementation for verification.
pub fn scalar_reference(op: StreamOp, a: &[f64], b: &[f64], c: &[f64]) -> Vec<f64> {
    match op {
        StreamOp::Copy => a.to_vec(),
        StreamOp::Scale(_) => b.iter().map(|&x| op.apply(x, 0.0)).collect(),
        StreamOp::Sum | StreamOp::Triad(_) => {
            b.iter().zip(c).map(|(&x, &y)| op.apply(x, y)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymem::AccessScheme;

    fn vectors(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let a: Vec<f64> = (0..n).map(|k| k as f64 + 0.5).collect();
        let b: Vec<f64> = (0..n).map(|k| (k as f64) * 2.0).collect();
        let c: Vec<f64> = (0..n).map(|k| 1000.0 - k as f64).collect();
        (a, b, c)
    }

    fn run(op: StreamOp, len: usize) -> (Vec<f64>, StageTiming) {
        let layout = StreamLayout::new(len, 64, 2, 4, AccessScheme::RoCo, 2).unwrap();
        let mut app = StreamApp::new(op, layout, PAPER_STREAM_FREQ_MHZ).unwrap();
        let (a, b, c) = vectors(len);
        app.load(&a, &b, &c).unwrap();
        let timing = app.measure(3);
        assert!(app.errors().is_empty(), "memory errors: {:?}", app.errors());
        let (out, _) = app.offload();
        let want = scalar_reference(op, &a, &b, &c);
        assert_eq!(out, want, "{} result mismatch", op.name());
        (out, timing)
    }

    #[test]
    fn copy_correct_and_pipelined() {
        let (_, t) = run(StreamOp::Copy, 512);
        // 64 chunks + ~15 pipeline cycles.
        assert!(t.cycles_per_run < 64 + 25, "cycles {}", t.cycles_per_run);
        assert!(t.fraction_of_peak() > 0.5);
    }

    #[test]
    fn scale_correct() {
        run(StreamOp::Scale(3.25), 256);
    }

    #[test]
    fn sum_correct() {
        run(StreamOp::Sum, 256);
    }

    #[test]
    fn triad_correct() {
        run(StreamOp::Triad(2.5), 512);
    }

    #[test]
    fn bandwidth_approaches_peak_for_large_vectors() {
        let layout = StreamLayout::paper_geometry(StreamLayout::PAPER_MAX_LEN).unwrap();
        let mut app = StreamApp::new(StreamOp::Copy, layout, PAPER_STREAM_FREQ_MHZ).unwrap();
        let n = StreamLayout::PAPER_MAX_LEN;
        let (a, b, c) = vectors(n);
        app.load(&a, &b, &c).unwrap();
        let t = app.measure(1000);
        // The paper's headline: >99% of the 15360 MB/s theoretical peak.
        assert!((t.peak_mbps - 15360.0).abs() < 1.0, "peak {}", t.peak_mbps);
        assert!(
            t.fraction_of_peak() > 0.99,
            "achieved {} of peak {}",
            t.bandwidth_mbps,
            t.peak_mbps
        );
        assert!(t.bandwidth_mbps > 15200.0 && t.bandwidth_mbps < 15360.0);
    }

    #[test]
    fn small_vectors_dominated_by_overhead() {
        let layout = StreamLayout::paper_geometry(512).unwrap();
        let mut app = StreamApp::new(StreamOp::Copy, layout, PAPER_STREAM_FREQ_MHZ).unwrap();
        let (a, b, c) = vectors(512);
        app.load(&a, &b, &c).unwrap();
        let t = app.measure(10);
        // 64 chunks ~ 80 cycles ~ 667 ns; +300 ns overhead -> well below peak.
        assert!(
            t.fraction_of_peak() < 0.8,
            "small run should be overhead-bound, got {}",
            t.fraction_of_peak()
        );
    }

    #[test]
    fn latency_affects_fixed_cost_not_steady_state() {
        let mk = |lat| {
            let layout = StreamLayout::new(2048, 64, 2, 4, AccessScheme::RoCo, 2).unwrap();
            let mut app = StreamApp::with_latency(StreamOp::Copy, layout, 120.0, lat).unwrap();
            let (a, b, c) = vectors(2048);
            app.load(&a, &b, &c).unwrap();
            app.measure(1).cycles_per_run
        };
        let fast = mk(1);
        let slow = mk(28);
        assert_eq!(slow - fast, 27, "latency is a pure pipeline-fill cost");
    }

    fn run_burst(op: StreamOp, len: usize) -> (Vec<f64>, StageTiming) {
        let layout = StreamLayout::new(len, 64, 2, 4, AccessScheme::RoCo, 2).unwrap();
        let mut app = StreamApp::new_burst(op, layout, PAPER_STREAM_FREQ_MHZ).unwrap();
        let (a, b, c) = vectors(len);
        app.load(&a, &b, &c).unwrap();
        let timing = app.measure(3);
        assert!(app.errors().is_empty(), "memory errors: {:?}", app.errors());
        let (out, _) = app.offload();
        let want = scalar_reference(op, &a, &b, &c);
        assert_eq!(out, want, "burst {} result mismatch", op.name());
        (out, timing)
    }

    #[test]
    fn burst_all_ops_match_scalar_reference() {
        run_burst(StreamOp::Copy, 512);
        run_burst(StreamOp::Scale(3.25), 256);
        run_burst(StreamOp::Sum, 256);
        run_burst(StreamOp::Triad(2.5), 512);
    }

    #[test]
    fn burst_copy_cycle_count_matches_per_chunk_model() {
        // The burst datapath charges the same ceil(len/lanes) access cycles
        // plus one pipeline fill, so simulated bandwidth is preserved: a
        // 512-element Copy is 64 access cycles + 14-cycle latency + a few
        // handshake cycles in either mode.
        let (_, burst) = run_burst(StreamOp::Copy, 512);
        let (_, chunked) = run(StreamOp::Copy, 512);
        assert!(burst.cycles_per_run < 64 + 25, "{}", burst.cycles_per_run);
        let delta = burst.cycles_per_run.abs_diff(chunked.cycles_per_run);
        assert!(
            delta <= 10,
            "burst {} vs per-chunk {} cycles",
            burst.cycles_per_run,
            chunked.cycles_per_run
        );
    }

    #[test]
    fn burst_bandwidth_approaches_peak_for_large_vectors() {
        let layout = StreamLayout::paper_geometry(StreamLayout::PAPER_MAX_LEN).unwrap();
        let mut app = StreamApp::new_burst(StreamOp::Copy, layout, PAPER_STREAM_FREQ_MHZ).unwrap();
        let n = StreamLayout::PAPER_MAX_LEN;
        let (a, b, c) = vectors(n);
        app.load(&a, &b, &c).unwrap();
        let t = app.measure(1000);
        assert!(
            t.fraction_of_peak() > 0.99,
            "achieved {} of peak {}",
            t.bandwidth_mbps,
            t.peak_mbps
        );
    }

    #[test]
    fn burst_run_to_run_determinism_enforced() {
        let layout = StreamLayout::new(512, 64, 2, 4, AccessScheme::RoCo, 2).unwrap();
        let mut app = StreamApp::new_burst(StreamOp::Triad(1.5), layout, 120.0).unwrap();
        let (a, b, c) = vectors(512);
        app.load(&a, &b, &c).unwrap();
        let c1 = app.run_pass();
        let c2 = app.run_pass();
        assert_eq!(c1, c2);
    }

    #[test]
    fn attribution_buckets_sum_to_simulated_cycles_exactly() {
        // The invariant polymem-top renders: with telemetry attached before
        // the first pass, every simulated cycle lands in exactly one
        // dfe_kernel_cycles_total state bucket.
        for burst in [false, true] {
            let layout = StreamLayout::new(512, 64, 2, 4, AccessScheme::RoCo, 2).unwrap();
            let mut app = if burst {
                StreamApp::new_burst(StreamOp::Triad(1.5), layout, 120.0).unwrap()
            } else {
                StreamApp::new(StreamOp::Triad(1.5), layout, 120.0).unwrap()
            };
            let reg = polymem::TelemetryRegistry::new();
            app.attach_telemetry(&reg);
            let (a, b, c) = vectors(512);
            app.load(&a, &b, &c).unwrap();
            let c1 = app.run_pass();
            let c2 = app.run_pass();
            let snap = reg.snapshot();
            let state = |s: &str| {
                snap.counter_value(
                    "dfe_kernel_cycles_total",
                    &[("kernel", "polymem"), ("state", s)],
                )
                .unwrap_or(0)
            };
            let attributed = state("active")
                + state("contention")
                + state("pipeline")
                + state("pcie")
                + state("idle");
            let sim = snap
                .counter_value("stream_sim_cycles_total", &[("op", "Triad")])
                .expect("sim cycle accumulator registered");
            assert_eq!(sim, c1 + c2, "accumulator tracks run_pass (burst={burst})");
            assert_eq!(attributed, sim, "exact-sum attribution (burst={burst})");
            assert_eq!(
                snap.counter_value("stream_passes_total", &[("op", "Triad")]),
                Some(2)
            );
        }
    }

    #[test]
    fn pass_histograms_record_each_pass() {
        let layout = StreamLayout::new(512, 64, 2, 4, AccessScheme::RoCo, 2).unwrap();
        let mut app = StreamApp::new(StreamOp::Copy, layout, PAPER_STREAM_FREQ_MHZ).unwrap();
        let reg = polymem::TelemetryRegistry::new();
        app.attach_telemetry(&reg);
        let (a, b, c) = vectors(512);
        app.load(&a, &b, &c).unwrap();
        app.measure(3);
        let prom = reg.snapshot().to_prometheus();
        assert!(prom.contains("stream_pass_cycles"), "{prom}");
        assert!(prom.contains("stream_pass_bandwidth_mbps"), "{prom}");
    }

    #[test]
    fn ticked_and_event_modes_agree_cycle_for_cycle() {
        // The tentpole invariant: the event scheduler is a host-time
        // optimisation, never a semantic change. Both driver flavours must
        // produce identical per-pass cycle counts in both modes.
        for burst in [false, true] {
            let mk = |mode| {
                let layout = StreamLayout::new(512, 64, 2, 4, AccessScheme::RoCo, 2).unwrap();
                let mut app = if burst {
                    StreamApp::new_burst(StreamOp::Triad(1.5), layout, 120.0).unwrap()
                } else {
                    StreamApp::new(StreamOp::Triad(1.5), layout, 120.0).unwrap()
                };
                app.set_scheduler_mode(mode);
                let (a, b, c) = vectors(512);
                app.load(&a, &b, &c).unwrap();
                let cycles = app.run_pass();
                let (out, _) = app.offload();
                (cycles, out, app.scheduler_stats())
            };
            let (ticked_cycles, ticked_out, ticked_stats) = mk(SchedulerMode::Ticked);
            let (event_cycles, event_out, event_stats) = mk(SchedulerMode::EventDriven);
            assert_eq!(ticked_cycles, event_cycles, "cycle parity (burst={burst})");
            assert_eq!(ticked_out, event_out, "result parity (burst={burst})");
            assert_eq!(
                ticked_stats,
                SchedulerStats::default(),
                "ticked loop bypasses sched"
            );
            assert_eq!(
                event_stats.total_cycles(),
                event_cycles,
                "scheduler accounts every simulated cycle (burst={burst})"
            );
            if burst {
                // Burst mode has real quiescent spans (engine-busy windows)
                // for the scheduler to fast-forward.
                assert!(
                    event_stats.jumps > 0 && event_stats.skipped_cycles > 0,
                    "burst pass should fast-forward, stats {event_stats:?}"
                );
            }
        }
    }

    #[test]
    #[cfg(not(feature = "tracing-off"))]
    fn traced_burst_copy_pass_reconciles_spans_with_telemetry() {
        use polymem::tracing::{TraceJournal, TraceSnapshot};
        // The acceptance-criteria scenario: a traced STREAM-Copy burst
        // pass. The journal's per-state span sums on the kernel's track
        // must equal the dfe_kernel_cycles_total buckets EXACTLY, and the
        // Chrome export must round-trip.
        let layout = StreamLayout::new(512, 64, 2, 4, AccessScheme::RoCo, 2).unwrap();
        let mut app = StreamApp::new_burst(StreamOp::Copy, layout, PAPER_STREAM_FREQ_MHZ).unwrap();
        let reg = polymem::TelemetryRegistry::new();
        app.attach_telemetry(&reg);
        let journal = TraceJournal::new(1 << 14);
        app.attach_tracing(&journal);
        let (a, b, c) = vectors(512);
        app.load(&a, &b, &c).unwrap();
        let cycles = app.run_pass();

        let snap = journal.snapshot();
        assert_eq!(snap.dropped, 0, "journal sized for the pass");
        assert_eq!(snap.torn, 0);
        assert_eq!(snap.validate_spans(), Vec::<String>::new());
        let by_state = snap.span_cycles_by_name("polymem");
        let reg_snap = reg.snapshot();
        for state in ["active", "contention", "pipeline", "pcie", "idle"] {
            let counted = reg_snap
                .counter_value(
                    "dfe_kernel_cycles_total",
                    &[("kernel", "polymem"), ("state", state)],
                )
                .unwrap_or(0);
            assert_eq!(
                by_state.get(state).copied().unwrap_or(0),
                counted,
                "span sum vs counter for state {state}"
            );
        }
        let total: u64 = by_state.values().sum();
        assert_eq!(total, cycles, "the attribution strip covers every cycle");
        // The copy bursts themselves appear on their own track, and the
        // scheduler's fast-forwards are collapsed spans on `sched`.
        let spans = snap.spans();
        assert!(spans.iter().any(|s| s.track == "polymem/copy-bursts"));
        assert!(spans
            .iter()
            .any(|s| s.track == "sched" && s.name == "fast-forward"));
        // Perfetto loadability proxy: the Chrome export parses back to the
        // identical event set. (The exporter stably sorts by timestamp;
        // retroactively flushed spans make journal order differ from
        // timestamp order, so compare in timestamp order.)
        let round = TraceSnapshot::from_chrome_json(&snap.to_chrome_json()).unwrap();
        let mut want = snap.events.clone();
        want.sort_by_key(|e| e.cycle);
        assert_eq!(round.events, want);
        assert_eq!((round.dropped, round.torn), (snap.dropped, snap.torn));
        // No drops -> the telemetry mirror stays 0.
        assert_eq!(
            reg_snap.counter_value("stream_trace_dropped_total", &[("op", "Copy")]),
            Some(0)
        );
    }

    #[test]
    #[cfg(not(feature = "tracing-off"))]
    fn journal_overflow_surfaces_in_trace_dropped_counter() {
        use polymem::tracing::TraceJournal;
        // A deliberately tiny journal: the pass overflows the ring and the
        // loss must surface in stream_trace_dropped_total instead of
        // silently truncating the timeline.
        let layout = StreamLayout::new(512, 64, 2, 4, AccessScheme::RoCo, 2).unwrap();
        let mut app = StreamApp::new_burst(StreamOp::Copy, layout, PAPER_STREAM_FREQ_MHZ).unwrap();
        let reg = polymem::TelemetryRegistry::new();
        app.attach_telemetry(&reg);
        let journal = TraceJournal::new(8);
        app.attach_tracing(&journal);
        let (a, b, c) = vectors(512);
        app.load(&a, &b, &c).unwrap();
        app.run_pass();
        let dropped = journal.dropped();
        assert!(dropped > 0, "an 8-slot ring must overflow");
        assert_eq!(
            reg.snapshot()
                .counter_value("stream_trace_dropped_total", &[("op", "Copy")]),
            Some(dropped)
        );
        assert_eq!(journal.snapshot().dropped, dropped);
    }

    #[test]
    fn run_to_run_determinism_enforced() {
        let layout = StreamLayout::new(512, 64, 2, 4, AccessScheme::RoCo, 2).unwrap();
        let mut app = StreamApp::new(StreamOp::Copy, layout, 120.0).unwrap();
        let (a, b, c) = vectors(512);
        app.load(&a, &b, &c).unwrap();
        let c1 = app.run_pass();
        let c2 = app.run_pass();
        assert_eq!(c1, c2);
    }
}
