//! STREAM-Copy through compiled region plans.
//!
//! The paper's measured STREAM stage moves vector A into vector C one
//! parallel access per cycle. On the CPU model that per-chunk loop pays a
//! plan-cache lookup, a bounds check and a scheme check *per 8-element
//! chunk*. This module expresses the same transfer as whole-vector region
//! copies: each vector is one [`Region`] (or a handful of row strips), so
//! the entire A→C movement compiles once into a flat gather/scatter map and
//! replays as a single loop — the region-plan analogue of the hardware's
//! "the controller just streams the burst".
//!
//! [`RegionCopy`] packages both paths over the same [`StreamLayout`] so
//! benches can report region-planned vs per-access STREAM-Copy bandwidth on
//! identical data.

use crate::layout::{StreamLayout, VectorLayout};
use polymem::{PolyMem, Region, RegionShape};

/// The regions covering one vector of a [`StreamLayout`], in element order.
///
/// A vector is row-major inside its region, so when its rows tile the bank
/// grid (`rows_used % p == 0`) the whole vector is a single `Block` region
/// whose canonical order *is* the vector order. Otherwise each occupied row
/// becomes one `Row` region (layouts guarantee `cols % lanes == 0`, so every
/// row strip is plannable).
pub fn vector_regions(v: &VectorLayout, p: usize, tag: &str) -> Vec<Region> {
    let rows = v.rows_used();
    if rows.is_multiple_of(p) {
        return vec![Region::new(
            tag,
            v.base_row,
            0,
            RegionShape::Block { rows, cols: v.cols },
        )];
    }
    (0..rows)
        .map(|r| {
            Region::new(
                format!("{tag}-row{r}"),
                v.base_row + r,
                0,
                RegionShape::Row { len: v.cols },
            )
        })
        .collect()
}

/// STREAM-Copy (C = A) executed inside one PolyMem, with a region-planned
/// path and a per-access path over the same layout.
pub struct RegionCopy {
    mem: PolyMem<f64>,
    layout: StreamLayout,
    src: Vec<Region>,
    dst: Vec<Region>,
    chunk: Vec<f64>,
}

impl RegionCopy {
    /// Build the memory and the A/C region covers for `layout`.
    pub fn new(layout: StreamLayout) -> polymem::Result<Self> {
        let mem = PolyMem::new(layout.config)?;
        let p = layout.config.p;
        let src = vector_regions(&layout.a, p, "A");
        let dst = vector_regions(&layout.c, p, "C");
        debug_assert_eq!(src.len(), dst.len(), "A and C share a geometry");
        let lanes = layout.config.lanes();
        Ok(Self {
            mem,
            layout,
            src,
            dst,
            chunk: vec![0.0; lanes],
        })
    }

    /// The layout.
    pub fn layout(&self) -> &StreamLayout {
        &self.layout
    }

    /// The wrapped memory (for cache stats and planning toggles).
    pub fn mem(&mut self) -> &mut PolyMem<f64> {
        &mut self.mem
    }

    /// Fill vector A element-wise.
    pub fn load_a(&mut self, vals: &[f64]) -> polymem::Result<()> {
        assert_eq!(vals.len(), self.layout.a.len);
        for (k, &v) in vals.iter().enumerate() {
            let (i, j) = self.layout.a.coord(k);
            self.mem.set(i, j, v)?;
        }
        Ok(())
    }

    /// Read back vector C element-wise.
    pub fn read_c(&self) -> Vec<f64> {
        (0..self.layout.c.len)
            .map(|k| {
                let (i, j) = self.layout.c.coord(k);
                self.mem.get(i, j).expect("in-bounds")
            })
            .collect()
    }

    /// C = A through whole-region copies: one compiled plan per region pair,
    /// replayed as a flat gather/scatter.
    pub fn copy_via_regions(&mut self) -> polymem::Result<()> {
        for (s, d) in self.src.iter().zip(&self.dst) {
            self.mem.copy_region(0, s, d)?;
        }
        Ok(())
    }

    /// C = A one parallel access at a time — the PR-1 baseline the region
    /// path is measured against (per-chunk plan lookup + checks).
    pub fn copy_per_access(&mut self) -> polymem::Result<()> {
        for c in 0..self.layout.a.chunks() {
            let ra = self.layout.a.access(c);
            let wc = self.layout.c.access(c);
            self.mem.read_into(0, ra, &mut self.chunk)?;
            self.mem.write(wc, &self.chunk)?;
        }
        Ok(())
    }

    /// Bytes moved per copy pass under STREAM counting (read A + write C).
    pub fn bytes_per_pass(&self) -> usize {
        2 * self.layout.a.len * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymem::AccessScheme;

    fn layout(len: usize, cols: usize) -> StreamLayout {
        StreamLayout::new(len, cols, 2, 4, AccessScheme::RoCo, 1).unwrap()
    }

    fn a_vals(n: usize) -> Vec<f64> {
        (0..n).map(|k| k as f64 * 0.25 + 1.0).collect()
    }

    #[test]
    fn block_cover_when_rows_tile_banks() {
        // 4 rows of 64, p = 2 -> one Block region.
        let l = layout(4 * 64, 64);
        let regions = vector_regions(&l.a, l.config.p, "A");
        assert_eq!(regions.len(), 1);
        assert!(matches!(
            regions[0].shape,
            RegionShape::Block { rows: 4, cols: 64 }
        ));
    }

    #[test]
    fn row_cover_when_rows_ragged() {
        // 3 rows of 64, p = 2 -> three Row regions.
        let l = layout(3 * 64, 64);
        let regions = vector_regions(&l.a, l.config.p, "A");
        assert_eq!(regions.len(), 3);
        assert!(regions
            .iter()
            .all(|r| matches!(r.shape, RegionShape::Row { len: 64 })));
    }

    #[test]
    fn region_copy_matches_per_access_copy() {
        for rows in [3usize, 4] {
            let l = layout(rows * 64, 64);
            let vals = a_vals(rows * 64);

            let mut via_regions = RegionCopy::new(l).unwrap();
            via_regions.load_a(&vals).unwrap();
            via_regions.copy_via_regions().unwrap();

            let mut per_access = RegionCopy::new(l).unwrap();
            per_access.load_a(&vals).unwrap();
            per_access.copy_per_access().unwrap();

            assert_eq!(via_regions.read_c(), vals, "rows={rows}");
            assert_eq!(per_access.read_c(), vals, "rows={rows}");
        }
    }

    #[test]
    fn region_copy_compiles_each_cover_once() {
        let l = layout(4 * 64, 64);
        let mut rc = RegionCopy::new(l).unwrap();
        rc.load_a(&a_vals(4 * 64)).unwrap();
        for _ in 0..5 {
            rc.copy_via_regions().unwrap();
        }
        let stats = rc.mem().region_plan_stats();
        // A-block and C-block share a residue class modulo the bank grid
        // only if their base rows agree mod p; either way at most 2 compiles.
        assert!(stats.misses <= 2, "{stats:?}");
        assert!(stats.hits >= 8, "{stats:?}");
    }

    #[test]
    fn region_copy_matches_under_interleaved_layout() {
        use polymem::BankLayout;
        for rows in [3usize, 4] {
            let l = layout(rows * 64, 64).with_layout(BankLayout::AddrInterleaved);
            let vals = a_vals(rows * 64);
            let mut rc = RegionCopy::new(l).unwrap();
            rc.load_a(&vals).unwrap();
            rc.copy_via_regions().unwrap();
            assert_eq!(rc.read_c(), vals, "rows={rows}");
        }
    }

    #[test]
    fn bytes_per_pass_is_stream_counting() {
        let l = layout(256, 64);
        let rc = RegionCopy::new(l).unwrap();
        assert_eq!(rc.bytes_per_pass(), 2 * 256 * 8);
    }
}
