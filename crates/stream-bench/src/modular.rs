//! The *modular* multi-kernel Copy design (paper §III-C).
//!
//! During development the authors first built PolyMem as separate kernels
//! "using a custom manager to connect the different modules", then fused it
//! when the modular version proved to cost ~2x the resources. This module
//! rebuilds that modular organisation on the simulator: the controller is
//! split into an issue kernel, a compute kernel and a write kernel, linked
//! by streams — functionally identical to the fused
//! [`crate::app::StreamApp`], but with the extra inter-kernel FIFO hops the
//! paper paid area for (and, observable here, extra pipeline cycles). The
//! resource side of the comparison lives in
//! `fpga_model::resources::DesignStyle`.

use crate::layout::StreamLayout;
use crate::op::StreamOp;
use crate::region_copy::vector_regions;
use dfe_sim::kernel::Kernel;
use dfe_sim::polymem_kernel::{
    PolyMemKernel, ReadRequest, ReadResponse, RegionRequest, RegionResponse, RegionWriteRequest,
    WriteRequest, PAPER_READ_LATENCY,
};
use dfe_sim::stream::{stream, StreamRef};
use polymem::Region;
use std::rc::Rc;

/// Issues source-vector read requests, one chunk per cycle.
struct IssueKernel {
    layout: StreamLayout,
    op: StreamOp,
    next: usize,
    read_req: Vec<StreamRef<ReadRequest>>,
}

impl Kernel for IssueKernel {
    fn name(&self) -> &str {
        "modular-issue"
    }

    fn tick(&mut self, _cycle: u64) {
        let chunks = self.layout.a.chunks();
        let reads = self.op.reads();
        if self.next >= chunks {
            return;
        }
        if !(0..reads).all(|p| self.read_req[p].borrow().can_push()) {
            return;
        }
        for (p, rq) in self.read_req.iter().enumerate().take(reads) {
            let src = match (self.op, p) {
                (StreamOp::Copy, _) => self.layout.a,
                (StreamOp::Scale(_), _) => self.layout.b,
                (StreamOp::Sum, 0) | (StreamOp::Triad(_), 0) => self.layout.b,
                _ => self.layout.c,
            };
            rq.borrow_mut().push(src.access(self.next));
        }
        self.next += 1;
    }

    fn is_idle(&self) -> bool {
        self.next >= self.layout.a.chunks()
    }
}

/// Applies the op to response chunks; a pure dataflow stage.
struct ComputeKernel {
    op: StreamOp,
    read_resp: Vec<StreamRef<ReadResponse>>,
    out: StreamRef<Vec<u64>>,
}

impl Kernel for ComputeKernel {
    fn name(&self) -> &str {
        "modular-compute"
    }

    fn tick(&mut self, _cycle: u64) {
        let reads = self.op.reads();
        if !self.out.borrow().can_push() {
            return;
        }
        if (0..reads).any(|p| self.read_resp[p].borrow().is_empty()) {
            return;
        }
        let x = self.read_resp[0].borrow_mut().pop().expect("checked");
        let y = if reads > 1 {
            self.read_resp[1].borrow_mut().pop().expect("checked")
        } else {
            Vec::new()
        };
        let data: Vec<u64> = x
            .iter()
            .enumerate()
            .map(|(k, &xb)| {
                let yv = if reads > 1 { f64::from_bits(y[k]) } else { 0.0 };
                self.op.apply(f64::from_bits(xb), yv).to_bits()
            })
            .collect();
        self.out.borrow_mut().push(data);
    }
}

/// Pairs computed chunks with destination addresses and writes them.
struct WriteKernel {
    layout: StreamLayout,
    op: StreamOp,
    next: usize,
    input: StreamRef<Vec<u64>>,
    write_req: StreamRef<WriteRequest>,
}

impl WriteKernel {
    fn done(&self) -> bool {
        self.next >= self.layout.a.chunks()
    }
}

impl Kernel for WriteKernel {
    fn name(&self) -> &str {
        "modular-write"
    }

    fn tick(&mut self, _cycle: u64) {
        if !self.write_req.borrow().can_push() {
            return;
        }
        if let Some(data) = self.input.borrow_mut().pop() {
            let dst = match self.op {
                StreamOp::Copy => self.layout.c,
                _ => self.layout.a,
            };
            self.write_req
                .borrow_mut()
                .push((dst.access(self.next), data));
            self.next += 1;
        }
    }
}

/// Outcome of a modular pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModularRun {
    /// Cycles the pass took.
    pub cycles: u64,
    /// Chunks written.
    pub chunks: usize,
}

/// Build and run the modular design once: load `a`/`b`/`c`, run `op` to
/// completion, return the destination vector and the cycle count.
pub fn run_modular(
    op: StreamOp,
    layout: StreamLayout,
    a: &[f64],
    b: &[f64],
    c: &[f64],
) -> polymem::Result<(Vec<f64>, ModularRun)> {
    let ports = layout.config.read_ports;
    let rq: Vec<_> = (0..ports).map(|p| stream(format!("m-rq{p}"), 8)).collect();
    let rs: Vec<_> = (0..ports)
        .map(|p| stream(format!("m-rs{p}"), PAPER_READ_LATENCY as usize + 8))
        .collect();
    let wq = stream("m-wq", 8);
    let mid = stream("m-mid", 8);
    let mut pm = PolyMemKernel::new(
        "polymem",
        layout.config,
        PAPER_READ_LATENCY,
        rq.clone(),
        rs.clone(),
        Rc::clone(&wq),
    )?;
    let n = layout.a.len;
    for (vals, lay) in [(a, layout.a), (b, layout.b), (c, layout.c)] {
        assert_eq!(vals.len(), n, "vector length mismatch");
        for (k, &v) in vals.iter().enumerate() {
            let (i, j) = lay.coord(k);
            pm.mem().set(i, j, v.to_bits())?;
        }
    }
    let mut issue = IssueKernel {
        layout,
        op,
        next: 0,
        read_req: rq,
    };
    let mut compute = ComputeKernel {
        op,
        read_resp: rs,
        out: Rc::clone(&mid),
    };
    let mut write = WriteKernel {
        layout,
        op,
        next: 0,
        input: mid,
        write_req: wq,
    };
    let chunks = layout.a.chunks();
    let max = 8 * chunks as u64 + 2000;
    let mut cycle = 0u64;
    // Tick order registers the compute->write stream: a chunk produced by
    // the compute kernel at cycle c is consumed by the write kernel at
    // c + 1, modelling Maxeler's registered inter-kernel links — the extra
    // pipeline depth the modular organisation pays.
    while !(write.done() && pm.pipelines_empty()) {
        issue.tick(cycle);
        pm.tick(cycle);
        write.tick(cycle);
        compute.tick(cycle);
        cycle += 1;
        assert!(
            cycle < max,
            "modular pass wedged: {} of {} chunks written",
            write.next,
            chunks
        );
    }
    assert!(pm.errors().is_empty(), "memory errors: {:?}", pm.errors());

    let dst = match op {
        StreamOp::Copy => layout.c,
        _ => layout.a,
    };
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let (i, j) = dst.coord(k);
        out.push(f64::from_bits(pm.mem().get(i, j)?));
    }
    Ok((
        out,
        ModularRun {
            cycles: cycle,
            chunks,
        },
    ))
}

/// Issues operand **region read bursts** in order (B[r], then C[r] for the
/// 2-read ops) on the single region port.
struct BurstIssueKernel {
    reads_per_burst: usize,
    src: Vec<Region>,
    src2: Vec<Region>,
    next: usize,
    region_req: StreamRef<RegionRequest>,
}

impl Kernel for BurstIssueKernel {
    fn name(&self) -> &str {
        "modular-burst-issue"
    }

    fn tick(&mut self, _cycle: u64) {
        let total = self.src.len() * self.reads_per_burst;
        if self.next >= total || !self.region_req.borrow().can_push() {
            return;
        }
        let r = self.next / self.reads_per_burst;
        let region = if self.next.is_multiple_of(self.reads_per_burst) {
            &self.src[r]
        } else {
            &self.src2[r]
        };
        self.region_req.borrow_mut().push(region.clone());
        self.next += 1;
    }

    fn is_idle(&self) -> bool {
        self.next >= self.src.len() * self.reads_per_burst
    }
}

/// Applies the op to whole operand bursts; a pure dataflow stage.
struct BurstComputeKernel {
    op: StreamOp,
    region_resp: StreamRef<RegionResponse>,
    stash: Option<Vec<u64>>,
    out: StreamRef<Vec<u64>>,
}

impl Kernel for BurstComputeKernel {
    fn name(&self) -> &str {
        "modular-burst-compute"
    }

    fn tick(&mut self, _cycle: u64) {
        if !self.out.borrow().can_push() {
            return;
        }
        let Some(data) = self.region_resp.borrow_mut().pop() else {
            return;
        };
        if self.op.reads() > 1 && self.stash.is_none() {
            self.stash = Some(data);
            return;
        }
        let burst: Vec<u64> = match self.stash.take() {
            Some(x) => x
                .iter()
                .zip(&data)
                .map(|(&xb, &yb)| {
                    self.op
                        .apply(f64::from_bits(xb), f64::from_bits(yb))
                        .to_bits()
                })
                .collect(),
            None => data
                .iter()
                .map(|&xb| self.op.apply(f64::from_bits(xb), 0.0).to_bits())
                .collect(),
        };
        self.out.borrow_mut().push(burst);
    }
}

/// Pairs computed bursts with destination regions and writes them.
struct BurstWriteKernel {
    dst: Vec<Region>,
    next: usize,
    input: StreamRef<Vec<u64>>,
    write_req: StreamRef<RegionWriteRequest>,
}

impl BurstWriteKernel {
    fn done(&self) -> bool {
        self.next >= self.dst.len()
    }
}

impl Kernel for BurstWriteKernel {
    fn name(&self) -> &str {
        "modular-burst-write"
    }

    fn tick(&mut self, _cycle: u64) {
        if !self.write_req.borrow().can_push() {
            return;
        }
        if let Some(burst) = self.input.borrow_mut().pop() {
            self.write_req
                .borrow_mut()
                .push((self.dst[self.next].clone(), burst));
            self.next += 1;
        }
    }
}

/// Build and run the modular design in **region-burst** mode: the same
/// issue / compute / write split, but each inter-kernel token is a whole
/// region burst rather than an 8-element chunk. Returns the destination
/// vector and the cycle count.
pub fn run_modular_burst(
    op: StreamOp,
    layout: StreamLayout,
    a: &[f64],
    b: &[f64],
    c: &[f64],
) -> polymem::Result<(Vec<f64>, ModularRun)> {
    let ports = layout.config.read_ports;
    let rq: Vec<_> = (0..ports).map(|p| stream(format!("mb-rq{p}"), 8)).collect();
    let rs: Vec<_> = (0..ports)
        .map(|p| stream(format!("mb-rs{p}"), PAPER_READ_LATENCY as usize + 8))
        .collect();
    let wq = stream("mb-wq", 8);
    let region_req = stream("mb-region-req", 4);
    let region_resp = stream("mb-region-resp", 2);
    let burst_wq = stream("mb-region-wq", 2);
    let mid = stream("mb-mid", 2);
    let mut pm = PolyMemKernel::new(
        "polymem",
        layout.config,
        PAPER_READ_LATENCY,
        rq,
        rs,
        Rc::clone(&wq),
    )?;
    pm.attach_region_port(Rc::clone(&region_req), Rc::clone(&region_resp));
    pm.attach_region_write_port(Rc::clone(&burst_wq));
    let n = layout.a.len;
    for (vals, lay) in [(a, layout.a), (b, layout.b), (c, layout.c)] {
        assert_eq!(vals.len(), n, "vector length mismatch");
        for (k, &v) in vals.iter().enumerate() {
            let (i, j) = lay.coord(k);
            pm.mem().set(i, j, v.to_bits())?;
        }
    }
    let p = layout.config.p;
    let (src, src2, dst) = match op {
        StreamOp::Copy => (
            vector_regions(&layout.a, p, "A"),
            Vec::new(),
            vector_regions(&layout.c, p, "C"),
        ),
        StreamOp::Scale(_) => (
            vector_regions(&layout.b, p, "B"),
            Vec::new(),
            vector_regions(&layout.a, p, "A"),
        ),
        StreamOp::Sum | StreamOp::Triad(_) => (
            vector_regions(&layout.b, p, "B"),
            vector_regions(&layout.c, p, "C"),
            vector_regions(&layout.a, p, "A"),
        ),
    };
    let mut issue = BurstIssueKernel {
        reads_per_burst: op.reads(),
        src,
        src2,
        next: 0,
        region_req,
    };
    let mut compute = BurstComputeKernel {
        op,
        region_resp,
        stash: None,
        out: Rc::clone(&mid),
    };
    let mut write = BurstWriteKernel {
        dst,
        next: 0,
        input: mid,
        write_req: burst_wq,
    };
    let chunks = layout.a.chunks();
    let max = 8 * chunks as u64 + 2000;
    let mut cycle = 0u64;
    // Same registered inter-kernel ordering as the per-chunk modular chain.
    while !(write.done() && pm.pipelines_empty()) {
        issue.tick(cycle);
        pm.tick(cycle);
        write.tick(cycle);
        compute.tick(cycle);
        cycle += 1;
        assert!(
            cycle < max,
            "modular burst pass wedged: {} of {} bursts written",
            write.next,
            write.dst.len()
        );
    }
    assert!(pm.errors().is_empty(), "memory errors: {:?}", pm.errors());

    let out_lay = match op {
        StreamOp::Copy => layout.c,
        _ => layout.a,
    };
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let (i, j) = out_lay.coord(k);
        out.push(f64::from_bits(pm.mem().get(i, j)?));
    }
    Ok((
        out,
        ModularRun {
            cycles: cycle,
            chunks,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{scalar_reference, StreamApp, PAPER_STREAM_FREQ_MHZ};
    use polymem::AccessScheme;

    fn vectors(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let a: Vec<f64> = (0..n).map(|k| k as f64 * 0.75).collect();
        let b: Vec<f64> = (0..n).map(|k| ((k * 3) % 41) as f64).collect();
        let c: Vec<f64> = (0..n).map(|k| ((k * 11) % 29) as f64 - 5.0).collect();
        (a, b, c)
    }

    #[test]
    fn modular_copy_matches_scalar_reference() {
        let n = 8 * 64;
        let layout = StreamLayout::new(n, 64, 2, 4, AccessScheme::RoCo, 2).unwrap();
        let (a, b, c) = vectors(n);
        let (out, run) = run_modular(StreamOp::Copy, layout, &a, &b, &c).unwrap();
        assert_eq!(out, scalar_reference(StreamOp::Copy, &a, &b, &c));
        assert_eq!(run.chunks, n / 8);
        assert!(run.cycles as usize >= n / 8);
    }

    #[test]
    fn modular_all_ops_verified() {
        let n = 4 * 64;
        for op in [
            StreamOp::Copy,
            StreamOp::Scale(1.5),
            StreamOp::Sum,
            StreamOp::Triad(-0.5),
        ] {
            let layout = StreamLayout::new(n, 64, 2, 4, AccessScheme::RoCo, 2).unwrap();
            let (a, b, c) = vectors(n);
            let (out, _) = run_modular(op, layout, &a, &b, &c).unwrap();
            assert_eq!(out, scalar_reference(op, &a, &b, &c), "{}", op.name());
        }
    }

    #[test]
    fn modular_burst_all_ops_verified() {
        let n = 4 * 64;
        for op in [
            StreamOp::Copy,
            StreamOp::Scale(1.5),
            StreamOp::Sum,
            StreamOp::Triad(-0.5),
        ] {
            let layout = StreamLayout::new(n, 64, 2, 4, AccessScheme::RoCo, 2).unwrap();
            let (a, b, c) = vectors(n);
            let (out, _) = run_modular_burst(op, layout, &a, &b, &c).unwrap();
            assert_eq!(out, scalar_reference(op, &a, &b, &c), "burst {}", op.name());
        }
    }

    #[test]
    fn modular_burst_keeps_the_cycle_model() {
        // The burst variant pays the same ceil(len/lanes) access cycles per
        // burst plus a constant number of inter-kernel hops: within a small
        // constant of the per-chunk modular chain.
        let n = 16 * 64;
        let layout = StreamLayout::new(n, 64, 2, 4, AccessScheme::RoCo, 2).unwrap();
        let (a, b, c) = vectors(n);
        let (_, chunked) = run_modular(StreamOp::Copy, layout, &a, &b, &c).unwrap();
        let (_, burst) = run_modular_burst(StreamOp::Copy, layout, &a, &b, &c).unwrap();
        let delta = burst.cycles.abs_diff(chunked.cycles);
        assert!(
            delta <= 25,
            "burst {} vs per-chunk {} modular cycles",
            burst.cycles,
            chunked.cycles
        );
    }

    #[test]
    fn modular_costs_more_cycles_than_fused() {
        // The fused controller computes and writes in the same kernel; the
        // modular chain adds inter-kernel FIFO hops (the cycle-side analogue
        // of the paper's 2x resource observation).
        let n = 16 * 64;
        let layout = StreamLayout::new(n, 64, 2, 4, AccessScheme::RoCo, 2).unwrap();
        let (a, b, c) = vectors(n);

        let mut fused = StreamApp::new(StreamOp::Copy, layout, PAPER_STREAM_FREQ_MHZ).unwrap();
        fused.load(&a, &b, &c).unwrap();
        let fused_cycles = fused.measure(1).cycles_per_run;

        let (_, modular) = run_modular(StreamOp::Copy, layout, &a, &b, &c).unwrap();
        assert!(
            modular.cycles > fused_cycles,
            "modular {} should exceed fused {}",
            modular.cycles,
            fused_cycles
        );
        // But the overhead is a constant pipeline depth, not a throughput
        // loss: within a few cycles plus the same chunk count.
        assert!(modular.cycles < fused_cycles + 20);
    }
}
