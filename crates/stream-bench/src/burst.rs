//! The region-burst streaming controller (the "just stream the burst" mode).
//!
//! The per-chunk [`crate::controller::Controller`] re-derives one parallel
//! access per cycle — a faithful model of Fig. 9, but on the CPU every chunk
//! pays a plan lookup, a bounds check and a FIFO round-trip. The hardware
//! controller does none of that in steady state: once the AGU is programmed
//! it *streams the burst*. [`BurstController`] is that mode on the
//! simulator: each vector is covered by a handful of [`Region`]s (usually
//! one `Block`, see [`crate::region_copy::vector_regions`]), and the
//! controller issues whole-region bursts on the PolyMem kernel's region
//! ports:
//!
//! * **Copy** becomes fused `(src, dst)` copy bursts on the
//!   [region-copy port](dfe_sim::polymem_kernel::PolyMemKernel::attach_region_copy_port) —
//!   the data never crosses back into the controller at all;
//! * **Scale / Sum / Triad** read operand regions through the
//!   [region port](dfe_sim::polymem_kernel::PolyMemKernel::attach_region_port),
//!   apply the op to the whole burst, and issue one region-write burst.
//!
//! Cycle accounting is unchanged — a burst of `len` elements still occupies
//! the datapath for `ceil(len / lanes)` cycles plus the pipeline latency —
//! so the *simulated* bandwidth matches the per-chunk design; what the
//! burst mode removes is the per-chunk modelling overhead on the host,
//! which is exactly the gap `BENCH_stream_region.json` measures.

use crate::controller::StateRef;
use crate::layout::StreamLayout;
use crate::op::StreamOp;
use crate::region_copy::vector_regions;
use dfe_sim::kernel::Kernel;
use dfe_sim::polymem_kernel::{
    RegionCopyRequest, RegionCopyResponse, RegionRequest, RegionResponse, RegionWriteRequest,
};
use dfe_sim::stream::StreamRef;
use polymem::telemetry::{Counter, Histogram, TelemetryRegistry};
use polymem::Region;

/// Bucket bounds for the in-flight-burst occupancy histogram: real covers
/// are a handful of regions, so small powers of two resolve the whole range.
static OUTSTANDING_BOUNDS: [u64; 6] = [1, 2, 4, 8, 16, 32];

/// Per-event controller telemetry: how many bursts are in flight each time
/// one is issued or retired, plus the issue count itself. Observations
/// happen on *events* (issue / completion), not every tick, so an idle
/// controller costs nothing.
struct BurstTelemetry {
    outstanding: Histogram,
    issued: Counter,
}

impl BurstTelemetry {
    fn observe(&self, issued: usize, written: usize) {
        self.outstanding
            .observe(issued.saturating_sub(written) as u64);
    }
}

/// The burst-mode compute-stage controller.
///
/// Progress is tracked in the shared [`crate::controller::ControllerState`]
/// with burst (region) granularity: `issued`/`written` count bursts, and a
/// pass covers [`BurstController::bursts`] of them.
pub struct BurstController {
    op: StreamOp,
    /// First-operand cover (A for Copy, B otherwise), in vector order.
    src: Vec<Region>,
    /// Second-operand cover (C), used by the 2-read ops.
    src2: Vec<Region>,
    /// Destination cover (C for Copy, A otherwise).
    dst: Vec<Region>,
    state: StateRef,
    copy_req: StreamRef<RegionCopyRequest>,
    copy_resp: StreamRef<RegionCopyResponse>,
    region_req: StreamRef<RegionRequest>,
    region_resp: StreamRef<RegionResponse>,
    write_req: StreamRef<RegionWriteRequest>,
    /// Region read requests issued this pass (compute ops only).
    reads_issued: usize,
    /// First-operand burst awaiting its partner (2-read ops only).
    stash: Option<Vec<u64>>,
    /// Computed burst held back by write-FIFO backpressure.
    pending_write: Option<(usize, Vec<u64>)>,
    /// Occupancy/issue telemetry, when attached.
    tlm: Option<BurstTelemetry>,
}

impl BurstController {
    /// Build a burst controller for `op` over `layout`.
    ///
    /// The streams are the PolyMem kernel's region read, fused-copy and
    /// region-write ports (attach them all; Copy uses the copy port, the
    /// compute ops use read + write).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        op: StreamOp,
        layout: StreamLayout,
        state: StateRef,
        copy_req: StreamRef<RegionCopyRequest>,
        copy_resp: StreamRef<RegionCopyResponse>,
        region_req: StreamRef<RegionRequest>,
        region_resp: StreamRef<RegionResponse>,
        write_req: StreamRef<RegionWriteRequest>,
    ) -> Self {
        let p = layout.config.p;
        let (src, src2, dst) = match op {
            StreamOp::Copy => (
                vector_regions(&layout.a, p, "A"),
                Vec::new(),
                vector_regions(&layout.c, p, "C"),
            ),
            StreamOp::Scale(_) => (
                vector_regions(&layout.b, p, "B"),
                Vec::new(),
                vector_regions(&layout.a, p, "A"),
            ),
            StreamOp::Sum | StreamOp::Triad(_) => (
                vector_regions(&layout.b, p, "B"),
                vector_regions(&layout.c, p, "C"),
                vector_regions(&layout.a, p, "A"),
            ),
        };
        debug_assert_eq!(src.len(), dst.len(), "operand and result share a cover");
        Self {
            op,
            src,
            src2,
            dst,
            state,
            copy_req,
            copy_resp,
            region_req,
            region_resp,
            write_req,
            reads_issued: 0,
            stash: None,
            pending_write: None,
            tlm: None,
        }
    }

    /// Register the controller's occupancy histogram
    /// (`stream_burst_outstanding{op=...}`) and issue counter
    /// (`stream_bursts_issued_total{op=...}`) with `registry`. Observations
    /// are per burst event, so the steady-state tick path is untouched.
    pub fn attach_telemetry(&mut self, registry: &TelemetryRegistry) {
        let labels = vec![("op", self.op.name().to_string())];
        self.tlm = Some(BurstTelemetry {
            outstanding: registry.histogram(
                "stream_burst_outstanding",
                labels.clone(),
                &OUTSTANDING_BOUNDS,
            ),
            issued: registry.counter("stream_bursts_issued_total", labels),
        });
    }

    /// Bursts (regions) per pass.
    pub fn bursts(&self) -> usize {
        self.dst.len()
    }

    /// Reset per-pass bookkeeping (the shared state is reset by the host).
    pub fn begin_pass(&mut self) {
        self.reads_issued = 0;
        self.stash = None;
        self.pending_write = None;
    }

    /// Whether the current pass is finished (all bursts completed).
    pub fn pass_done(&self) -> bool {
        let s = self.state.borrow();
        !s.running || s.written >= self.bursts()
    }

    /// Copy path: fused copy bursts out, completion tokens back.
    fn tick_copy(&mut self) {
        let mut st = self.state.borrow_mut();
        if st.issued < self.bursts() && self.copy_req.borrow().can_push() {
            let r = st.issued;
            self.copy_req
                .borrow_mut()
                .push((self.src[r].clone(), self.dst[r].clone()));
            st.issued += 1;
            if let Some(t) = &self.tlm {
                t.issued.inc();
                t.observe(st.issued, st.written);
            }
        }
        if self.copy_resp.borrow_mut().pop().is_some() {
            st.written += 1;
            if st.written >= self.bursts() {
                st.running = false;
            }
            if let Some(t) = &self.tlm {
                t.observe(st.issued, st.written);
            }
        }
    }

    /// Compute path: region reads out, op applied per burst, region write
    /// bursts in vector order.
    fn tick_compute(&mut self) {
        let reads_per_burst = self.op.reads();
        let total_reads = self.bursts() * reads_per_burst;
        // Issue phase: operand regions in order (B[r], then C[r] for the
        // 2-read ops); the single region port serves them back in order.
        if self.reads_issued < total_reads && self.region_req.borrow().can_push() {
            let r = self.reads_issued / reads_per_burst;
            let which = self.reads_issued % reads_per_burst;
            let region = if which == 0 {
                &self.src[r]
            } else {
                &self.src2[r]
            };
            self.region_req.borrow_mut().push(region.clone());
            self.reads_issued += 1;
            let mut st = self.state.borrow_mut();
            let issued = self.reads_issued.div_ceil(reads_per_burst);
            if issued > st.issued {
                st.issued = issued;
                if let Some(t) = &self.tlm {
                    t.issued.inc();
                    t.observe(st.issued, st.written);
                }
            }
        }
        // Collect phase: combine a full operand set into one write burst.
        if self.pending_write.is_none() {
            if let Some(data) = self.region_resp.borrow_mut().pop() {
                if reads_per_burst > 1 && self.stash.is_none() {
                    self.stash = Some(data);
                } else {
                    let burst = match self.stash.take() {
                        Some(x) => x
                            .iter()
                            .zip(&data)
                            .map(|(&xb, &yb)| {
                                self.op
                                    .apply(f64::from_bits(xb), f64::from_bits(yb))
                                    .to_bits()
                            })
                            .collect(),
                        None => data
                            .iter()
                            .map(|&xb| self.op.apply(f64::from_bits(xb), 0.0).to_bits())
                            .collect(),
                    };
                    let r = self.state.borrow().written;
                    self.pending_write = Some((r, burst));
                }
            }
        }
        // Drain phase: the computed burst waits for write-FIFO room.
        if let Some((r, _)) = self.pending_write {
            if self.write_req.borrow().can_push() {
                let (_, burst) = self.pending_write.take().expect("checked");
                self.write_req
                    .borrow_mut()
                    .push((self.dst[r].clone(), burst));
                let mut st = self.state.borrow_mut();
                st.written += 1;
                if st.written >= self.bursts() {
                    st.running = false;
                }
                if let Some(t) = &self.tlm {
                    t.observe(st.issued, st.written);
                }
            }
        }
    }
}

impl Kernel for BurstController {
    fn name(&self) -> &str {
        "stream-burst-controller"
    }

    fn tick(&mut self, _cycle: u64) {
        if !self.state.borrow().running {
            return;
        }
        match self.op {
            StreamOp::Copy => self.tick_copy(),
            _ => self.tick_compute(),
        }
    }

    fn is_idle(&self) -> bool {
        self.pass_done()
    }

    fn next_event(&self) -> Option<u64> {
        // Mirror `tick`'s can-act conditions exactly: the controller wakes
        // only on external input (a burst completion or freed FIFO slot),
        // and every such change is bounded by the PolyMem kernel's own
        // `next_event`, so returning `None` here lets the scheduler
        // fast-forward engine-busy spans without perturbing cycle counts.
        let st = self.state.borrow();
        if !st.running {
            return None;
        }
        let can_act = match self.op {
            StreamOp::Copy => {
                (st.issued < self.bursts() && self.copy_req.borrow().can_push())
                    || !self.copy_resp.borrow().is_empty()
            }
            _ => {
                let total_reads = self.bursts() * self.op.reads();
                (self.reads_issued < total_reads && self.region_req.borrow().can_push())
                    || (self.pending_write.is_none() && !self.region_resp.borrow().is_empty())
                    || (self.pending_write.is_some() && self.write_req.borrow().can_push())
            }
        };
        if can_act {
            Some(0)
        } else {
            None
        }
    }

    fn busy_reason(&self) -> Option<String> {
        let s = self.state.borrow();
        if !s.running || s.written >= self.bursts() {
            return None;
        }
        Some(format!(
            "{}: burst {} of {} outstanding",
            self.op.name(),
            s.written + 1,
            self.bursts()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerState;
    use polymem::AccessScheme;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn tiny_layout() -> StreamLayout {
        StreamLayout::new(16, 8, 2, 4, AccessScheme::RoCo, 2).unwrap()
    }

    struct Rig {
        ctrl: BurstController,
        copy_req: StreamRef<RegionCopyRequest>,
        copy_resp: StreamRef<RegionCopyResponse>,
        region_req: StreamRef<RegionRequest>,
        region_resp: StreamRef<RegionResponse>,
        write_req: StreamRef<RegionWriteRequest>,
        state: StateRef,
    }

    fn make(op: StreamOp) -> Rig {
        let layout = tiny_layout();
        let copy_req = dfe_sim::stream("cq", 4);
        let copy_resp = dfe_sim::stream("cr", 4);
        let region_req = dfe_sim::stream("rq", 4);
        let region_resp = dfe_sim::stream("rr", 4);
        let write_req = dfe_sim::stream("wq", 4);
        let state: StateRef = Rc::new(RefCell::new(ControllerState {
            running: true,
            ..Default::default()
        }));
        let ctrl = BurstController::new(
            op,
            layout,
            Rc::clone(&state),
            Rc::clone(&copy_req),
            Rc::clone(&copy_resp),
            Rc::clone(&region_req),
            Rc::clone(&region_resp),
            Rc::clone(&write_req),
        );
        Rig {
            ctrl,
            copy_req,
            copy_resp,
            region_req,
            region_resp,
            write_req,
            state,
        }
    }

    #[test]
    fn copy_issues_fused_bursts_and_counts_tokens() {
        let mut rig = make(StreamOp::Copy);
        assert_eq!(rig.ctrl.bursts(), 1, "16 elems over 2 rows is one Block");
        rig.ctrl.tick(0);
        let (src, dst) = rig.copy_req.borrow_mut().pop().expect("one fused burst");
        assert_eq!(src.name, "A");
        assert_eq!(dst.name, "C");
        assert_eq!(src.len(), 16);
        assert!(!rig.ctrl.pass_done());
        rig.copy_resp.borrow_mut().push(16);
        rig.ctrl.tick(1);
        assert!(rig.ctrl.pass_done());
        assert!(!rig.state.borrow().running);
    }

    #[test]
    fn scale_reads_b_and_writes_scaled_burst_to_a() {
        let mut rig = make(StreamOp::Scale(2.0));
        rig.ctrl.tick(0);
        let req = rig.region_req.borrow_mut().pop().expect("B read burst");
        assert_eq!(req.name, "B");
        let data: Vec<u64> = (0..16).map(|k| (k as f64).to_bits()).collect();
        rig.region_resp.borrow_mut().push(data);
        rig.ctrl.tick(1);
        let (dst, burst) = rig.write_req.borrow_mut().pop().expect("write burst");
        assert_eq!(dst.name, "A");
        assert_eq!(f64::from_bits(burst[5]), 10.0, "2.0 * 5.0");
        assert!(rig.ctrl.pass_done());
    }

    #[test]
    fn sum_pairs_two_operand_bursts_in_order() {
        let mut rig = make(StreamOp::Sum);
        rig.ctrl.tick(0);
        rig.ctrl.tick(1);
        let first = rig.region_req.borrow_mut().pop().unwrap();
        let second = rig.region_req.borrow_mut().pop().unwrap();
        assert_eq!((first.name.as_str(), second.name.as_str()), ("B", "C"));
        let b: Vec<u64> = (0..16).map(|k| (k as f64).to_bits()).collect();
        let c: Vec<u64> = (0..16).map(|k| (100.0 - k as f64).to_bits()).collect();
        rig.region_resp.borrow_mut().push(b);
        rig.ctrl.tick(2); // stashes B
        assert!(rig.write_req.borrow().is_empty());
        rig.region_resp.borrow_mut().push(c);
        rig.ctrl.tick(3); // combines and writes
        let (dst, burst) = rig.write_req.borrow_mut().pop().expect("write burst");
        assert_eq!(dst.name, "A");
        assert!(burst.iter().all(|&v| f64::from_bits(v) == 100.0));
        assert!(rig.ctrl.pass_done());
    }

    #[test]
    fn write_backpressure_holds_the_burst() {
        let layout = tiny_layout();
        let state: StateRef = Rc::new(RefCell::new(ControllerState {
            running: true,
            ..Default::default()
        }));
        let write_req: StreamRef<RegionWriteRequest> = dfe_sim::stream("wq-tight", 1);
        // Pre-fill the capacity-1 write FIFO so the controller must hold.
        write_req.borrow_mut().push((
            Region::new("X", 0, 0, polymem::RegionShape::Row { len: 8 }),
            vec![0; 8],
        ));
        let region_resp = dfe_sim::stream("rr", 4);
        let mut ctrl = BurstController::new(
            StreamOp::Scale(3.0),
            layout,
            Rc::clone(&state),
            dfe_sim::stream("cq", 4),
            dfe_sim::stream("cr", 4),
            dfe_sim::stream("rq", 4),
            Rc::clone(&region_resp),
            Rc::clone(&write_req),
        );
        region_resp
            .borrow_mut()
            .push((0..16).map(|k| (k as f64).to_bits()).collect());
        ctrl.tick(0);
        ctrl.tick(1);
        assert!(!ctrl.pass_done(), "burst held under backpressure");
        write_req.borrow_mut().pop();
        ctrl.tick(2);
        assert!(ctrl.pass_done(), "burst drains once the FIFO has room");
    }

    #[test]
    fn telemetry_counts_issues_and_occupancy_events() {
        let mut rig = make(StreamOp::Copy);
        let reg = TelemetryRegistry::new();
        rig.ctrl.attach_telemetry(&reg);
        rig.ctrl.tick(0); // issue event: outstanding = 1
        rig.copy_resp.borrow_mut().push(16);
        rig.ctrl.tick(1); // completion event: outstanding = 0
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter_value("stream_bursts_issued_total", &[("op", "Copy")]),
            Some(1)
        );
        let prom = snap.to_prometheus();
        assert!(
            prom.contains("stream_burst_outstanding"),
            "histogram exported: {prom}"
        );
    }

    #[test]
    fn idle_when_not_running() {
        let mut rig = make(StreamOp::Copy);
        rig.state.borrow_mut().running = false;
        assert!(rig.ctrl.is_idle());
        assert!(rig.ctrl.busy_reason().is_none());
        rig.ctrl.tick(0);
        assert!(rig.copy_req.borrow().is_empty(), "no issue when idle");
    }
}
