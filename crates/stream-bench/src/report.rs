//! STREAM-standard reporting, plus the Fig. 10 bandwidth-vs-size series.

use crate::app::{StageTiming, StreamApp, PAPER_STREAM_FREQ_MHZ};
use crate::layout::StreamLayout;
use crate::op::StreamOp;
use serde::{Deserialize, Serialize};

/// One row of the STREAM summary table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamRow {
    /// Operation name.
    pub function: String,
    /// Best (and, deterministically, only) rate in MB/s.
    pub best_rate_mbps: f64,
    /// Average time per run, seconds.
    pub avg_time_s: f64,
    /// Minimum time per run, seconds.
    pub min_time_s: f64,
    /// Maximum time per run, seconds.
    pub max_time_s: f64,
}

impl StreamRow {
    /// Build from a stage timing (deterministic: avg == min == max).
    pub fn from_timing(op: StreamOp, t: &StageTiming) -> Self {
        let secs = t.time_per_run_ns * 1e-9;
        Self {
            function: op.name().to_string(),
            best_rate_mbps: t.bandwidth_mbps,
            avg_time_s: secs,
            min_time_s: secs,
            max_time_s: secs,
        }
    }

    /// Format in the layout of the reference STREAM benchmark output.
    pub fn format(&self) -> String {
        format!(
            "{:<10}{:>14.1}{:>14.6}{:>14.6}{:>14.6}",
            self.function, self.best_rate_mbps, self.avg_time_s, self.min_time_s, self.max_time_s
        )
    }
}

/// The header matching [`StreamRow::format`].
pub fn header() -> String {
    format!(
        "{:<10}{:>14}{:>14}{:>14}{:>14}",
        "Function", "Best MB/s", "Avg time", "Min time", "Max time"
    )
}

/// One point of the Fig. 10 series.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig10Point {
    /// Data copied per run, KB (the x-axis).
    pub copied_kb: f64,
    /// Measured aggregated bandwidth, MB/s (the y-axis).
    pub bandwidth_mbps: f64,
    /// Fraction of the 15360 MB/s theoretical peak.
    pub fraction_of_peak: f64,
}

/// Reproduce Fig. 10: sweep the copied-vector size over the paper geometry
/// and measure Copy bandwidth with `runs` blocking runs per point.
pub fn fig10_series(sizes_elems: &[usize], runs: usize) -> Vec<Fig10Point> {
    fig10_series_mode(sizes_elems, runs, false)
}

/// The Fig. 10 sweep driven by the region-burst controller instead of the
/// per-chunk FSM. The cycle model is shared, so the simulated bandwidth
/// matches [`fig10_series`]; this variant exists so the bench suite can
/// compare the host-side cost of the two controllers on identical sweeps.
pub fn fig10_series_burst(sizes_elems: &[usize], runs: usize) -> Vec<Fig10Point> {
    fig10_series_mode(sizes_elems, runs, true)
}

fn fig10_series_mode(sizes_elems: &[usize], runs: usize, burst: bool) -> Vec<Fig10Point> {
    sizes_elems
        .iter()
        .map(|&n| {
            let layout = StreamLayout::paper_geometry(n).expect("size within paper geometry");
            let mut app = if burst {
                StreamApp::new_burst(StreamOp::Copy, layout, PAPER_STREAM_FREQ_MHZ)
            } else {
                StreamApp::new(StreamOp::Copy, layout, PAPER_STREAM_FREQ_MHZ)
            }
            .expect("valid app");
            let a: Vec<f64> = (0..n).map(|k| k as f64).collect();
            let zeros = vec![0.0; n];
            app.load(&a, &zeros, &zeros).expect("load");
            let t = app.measure(runs);
            Fig10Point {
                copied_kb: (n * 8) as f64 / 1024.0,
                bandwidth_mbps: t.bandwidth_mbps,
                fraction_of_peak: t.fraction_of_peak(),
            }
        })
        .collect()
}

/// The default Fig. 10 x-axis: vector sizes from 4 KB to the paper's
/// ~680 KB maximum.
pub fn fig10_default_sizes() -> Vec<usize> {
    // Multiples of 512 elements (one logical row) up to 170 rows.
    [1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128, 160, 170]
        .iter()
        .map(|rows| rows * 512)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_format_is_aligned() {
        let t = StageTiming {
            cycles_per_run: 100,
            runs: 10,
            time_per_run_ns: 1133.3,
            bandwidth_mbps: 14_500.0,
            peak_mbps: 15_360.0,
        };
        let row = StreamRow::from_timing(StreamOp::Copy, &t);
        let s = row.format();
        assert!(s.starts_with("Copy"));
        assert!(s.contains("14500.0"));
        assert!(header().len() >= s.len() - 5);
    }

    #[test]
    fn fig10_series_rises_to_99_percent() {
        let pts = fig10_series(&[512, 8 * 512, 170 * 512], 1000);
        assert_eq!(pts.len(), 3);
        assert!(
            pts[0].bandwidth_mbps < pts[1].bandwidth_mbps
                && pts[1].bandwidth_mbps < pts[2].bandwidth_mbps,
            "bandwidth must rise with size"
        );
        assert!(pts[2].fraction_of_peak > 0.99, "paper headline");
        assert!((pts[2].copied_kb - 680.0).abs() < 1.0);
    }

    #[test]
    fn burst_series_matches_per_chunk_bandwidth() {
        let sizes = [8 * 512, 64 * 512];
        let chunked = fig10_series(&sizes, 10);
        let burst = fig10_series_burst(&sizes, 10);
        for (c, b) in chunked.iter().zip(&burst) {
            let rel = (c.bandwidth_mbps - b.bandwidth_mbps).abs() / c.bandwidth_mbps;
            assert!(
                rel < 0.02,
                "shared cycle model: {} vs {} MB/s",
                c.bandwidth_mbps,
                b.bandwidth_mbps
            );
        }
    }

    #[test]
    fn default_sizes_within_geometry() {
        for n in fig10_default_sizes() {
            assert!(n <= StreamLayout::PAPER_MAX_LEN);
            assert_eq!(n % 512, 0);
        }
    }
}
