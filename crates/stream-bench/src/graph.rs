//! The STREAM designs' stream wiring, as data.
//!
//! [`crate::app::StreamApp`] wires its kernels together with bounded
//! streams. This module states the same wiring declaratively — each edge
//! names its producer kernel, its consumer kernel, and whether the path is
//! **latency-registered**: PolyMem's read pipeline puts a [`DelayLine`] of
//! at least one cycle between a response's computation and its arrival, so
//! a consumer waiting on a registered stream can never be waiting on
//! combinational work it must itself unblock.
//!
//! `polymem-verify` runs a static deadlock-freedom pass over this graph: a
//! wait-cycle composed entirely of *unregistered* edges can wedge the
//! design, while any cycle crossing a registered edge drains on its own.
//! Keeping the declaration next to the wiring code it mirrors
//! ([`crate::app`]'s `build`) is what makes drift between the two a
//! reviewable one-file diff.
//!
//! [`DelayLine`]: dfe_sim::kernel::DelayLine

/// Node name of the pass controller (per-chunk or burst flavour).
pub const CONTROLLER: &str = "stream-controller";
/// Node name of the PolyMem memory kernel.
pub const POLYMEM: &str = "polymem";

/// One declared stream: `producer` pushes, `consumer` pops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamEdge {
    /// Stream name as created by the app builder.
    pub stream: String,
    /// Kernel that pushes into the stream.
    pub producer: &'static str,
    /// Kernel that pops from the stream.
    pub consumer: &'static str,
    /// Whether at least one pipeline register sits between push and pop
    /// (PolyMem's read [`DelayLine`](dfe_sim::kernel::DelayLine)), breaking
    /// any combinational wait-cycle through this edge.
    pub registered: bool,
}

impl StreamEdge {
    fn new(
        stream: impl Into<String>,
        producer: &'static str,
        consumer: &'static str,
        registered: bool,
    ) -> Self {
        Self {
            stream: stream.into(),
            producer,
            consumer,
            registered,
        }
    }
}

/// The declared wiring of one STREAM design flavour, mirroring
/// `StreamApp::build`: per-chunk drives the scalar read/write ports, burst
/// drives the region ports. Response paths are registered (they cross
/// PolyMem's read delay line); request paths are not.
pub fn declared_graph(burst: bool, read_ports: usize) -> Vec<StreamEdge> {
    let mut edges = Vec::new();
    if burst {
        edges.push(StreamEdge::new("region-req", CONTROLLER, POLYMEM, false));
        edges.push(StreamEdge::new("region-resp", POLYMEM, CONTROLLER, true));
        edges.push(StreamEdge::new("copy-req", CONTROLLER, POLYMEM, false));
        edges.push(StreamEdge::new("copy-resp", POLYMEM, CONTROLLER, true));
        edges.push(StreamEdge::new(
            "region-write-req",
            CONTROLLER,
            POLYMEM,
            false,
        ));
    } else {
        for p in 0..read_ports {
            edges.push(StreamEdge::new(
                format!("read-req-{p}"),
                CONTROLLER,
                POLYMEM,
                false,
            ));
            edges.push(StreamEdge::new(
                format!("read-resp-{p}"),
                POLYMEM,
                CONTROLLER,
                true,
            ));
        }
        edges.push(StreamEdge::new("write-req", CONTROLLER, POLYMEM, false));
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_chunk_graph_matches_builder_wiring() {
        let g = declared_graph(false, 2);
        assert_eq!(g.len(), 5); // 2 req + 2 resp + write
        assert!(g.iter().any(|e| e.stream == "read-req-1" && !e.registered));
        assert!(g.iter().any(|e| e.stream == "read-resp-0" && e.registered));
        assert!(g
            .iter()
            .all(|e| e.producer != e.consumer && !e.stream.is_empty()));
    }

    #[test]
    fn burst_graph_registers_every_response() {
        let g = declared_graph(true, 2);
        assert_eq!(g.len(), 5);
        for e in &g {
            assert_eq!(e.registered, e.stream.ends_with("-resp"));
        }
    }
}
