//! The four STREAM operations (paper §V).
//!
//! The paper's definitions: Copy `c(i) = a(i)`; Scale `a(i) = q*b(i)`;
//! Sum `a(i) = b(i) + c(i)`; Triad `a(i) = b(i) + q*c(i)`. The paper
//! synthesizes and measures **Copy**; Scale/Sum/Triad are listed as future
//! work and implemented here as the extension.

use serde::{Deserialize, Serialize};

/// One STREAM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StreamOp {
    /// `c(i) = a(i)` — one read, one write per element.
    Copy,
    /// `a(i) = q * b(i)` — one read, one write, one multiply.
    Scale(f64),
    /// `a(i) = b(i) + c(i)` — two reads, one write, one add.
    Sum,
    /// `a(i) = b(i) + q * c(i)` — two reads, one write, mul + add.
    Triad(f64),
}

impl StreamOp {
    /// Benchmark-standard name.
    pub fn name(&self) -> &'static str {
        match self {
            StreamOp::Copy => "Copy",
            StreamOp::Scale(_) => "Scale",
            StreamOp::Sum => "Sum",
            StreamOp::Triad(_) => "Triad",
        }
    }

    /// Read streams needed per element (1 or 2) — i.e. read ports used.
    pub fn reads(&self) -> usize {
        match self {
            StreamOp::Copy | StreamOp::Scale(_) => 1,
            StreamOp::Sum | StreamOp::Triad(_) => 2,
        }
    }

    /// Memory traffic per element in bytes (STREAM counting: each read and
    /// each write of a 64-bit element moves 8 bytes).
    pub fn bytes_per_element(&self) -> usize {
        8 * (self.reads() + 1)
    }

    /// Floating-point operations per element.
    pub fn flops_per_element(&self) -> usize {
        match self {
            StreamOp::Copy => 0,
            StreamOp::Scale(_) | StreamOp::Sum => 1,
            StreamOp::Triad(_) => 2,
        }
    }

    /// Combine one element's operands. `x` is the first operand (A for
    /// Copy, B otherwise); `y` the second (C), ignored for 1-read ops.
    #[inline]
    pub fn apply(&self, x: f64, y: f64) -> f64 {
        match *self {
            StreamOp::Copy => x,
            StreamOp::Scale(q) => q * x,
            StreamOp::Sum => x + y,
            StreamOp::Triad(q) => x + q * y,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_counting() {
        assert_eq!(StreamOp::Copy.bytes_per_element(), 16);
        assert_eq!(StreamOp::Scale(2.0).bytes_per_element(), 16);
        assert_eq!(StreamOp::Sum.bytes_per_element(), 24);
        assert_eq!(StreamOp::Triad(2.0).bytes_per_element(), 24);
    }

    #[test]
    fn flops() {
        assert_eq!(StreamOp::Copy.flops_per_element(), 0);
        assert_eq!(StreamOp::Triad(3.0).flops_per_element(), 2);
    }

    #[test]
    fn apply_semantics() {
        assert_eq!(StreamOp::Copy.apply(5.0, 99.0), 5.0);
        assert_eq!(StreamOp::Scale(3.0).apply(5.0, 99.0), 15.0);
        assert_eq!(StreamOp::Sum.apply(5.0, 7.0), 12.0);
        assert_eq!(StreamOp::Triad(3.0).apply(5.0, 7.0), 26.0);
    }

    #[test]
    fn names_and_reads() {
        assert_eq!(StreamOp::Sum.name(), "Sum");
        assert_eq!(StreamOp::Copy.reads(), 1);
        assert_eq!(StreamOp::Triad(1.0).reads(), 2);
    }
}
