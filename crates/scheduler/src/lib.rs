//! # polymem-scheduler — access-schedule optimization for PolyMem
//!
//! The design-flow half of the paper (§III-A, expanded in the authors'
//! companion work "The Case for Custom Parallel Memories"): given the memory
//! access pattern of an application, find the **optimal parallel access
//! schedule** — the shortest sequence of conflict-free parallel accesses
//! that covers it — and use it to pick the best PolyMem configuration.
//!
//! * [`pattern`] — application access traces;
//! * [`cover`] — the set-covering formulation (ref \[10\] of the paper);
//! * [`greedy`] — the `H_n`-approximate baseline;
//! * [`bnb`] — exact branch-and-bound (substituting for the paper's ILP
//!   solver), with a brute-force ground-truth checker for tests;
//! * [`metrics`] — speedup and efficiency;
//! * [`dse`] — configuration sweep and selection;
//! * [`support`] — the paper's Table I transcribed literally, the
//!   support-matrix source of truth cross-checked by `polymem-verify`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod anneal;
pub mod bitset;
pub mod bnb;
pub mod codegen;
pub mod cover;
pub mod dse;
pub mod greedy;
pub mod lp;
pub mod metrics;
pub mod pattern;
pub mod ports;
pub mod support;

pub use anneal::{solve as solve_anneal, AnnealOptions};
pub use bitset::BitSet;
pub use bnb::{brute_force, solve as solve_exact, ExactResult};
pub use codegen::{execute_gather, render_maxj, render_rust};
pub use cover::{Candidate, CoverInstance, Schedule};
pub use dse::{best, sweep, ConfigResult, SweepOptions};
pub use greedy::solve as solve_greedy;
pub use lp::{dual_bound, lower_bound};
pub use metrics::{evaluate, ScheduleMetrics};
pub use pattern::AccessTrace;
pub use ports::{mixed_cycles, multiport_speedup, pack_reads, PortOp, PortSchedule};
pub use support::{aligned_only, support_matrix, table1};
