//! A compact fixed-universe bitset used by the set-covering solvers.
//!
//! Cover sets are dense over small universes (an access covers up to `p*q`
//! of at most a few thousand trace elements), so a `Vec<u64>` of words with
//! popcount-based counting is both simple and fast — no dependencies needed.

/// Fixed-size bitset over a universe of `len` elements.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over a universe of `len` elements.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Insert element `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Remove element `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of elements present.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self |= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self &= !other` (set subtraction).
    pub fn subtract(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `|self & other|` without allocating.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Whether `self` and `other` are disjoint.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Index of the first set bit, if any.
    pub fn first(&self) -> Option<usize> {
        for (w, &word) in self.words.iter().enumerate() {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterate over set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(w * 64 + b)
                }
            })
        })
    }

    /// A set containing every universe element.
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        if !len.is_multiple_of(64) {
            if let Some(last) = s.words.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn union_and_subtract() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        a.insert(2);
        b.insert(2);
        b.insert(3);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 3);
        u.subtract(&a);
        assert!(u.contains(3) && !u.contains(1) && !u.contains(2));
    }

    #[test]
    fn intersection_count_and_disjoint() {
        let mut a = BitSet::new(200);
        let mut b = BitSet::new(200);
        for i in (0..200).step_by(3) {
            a.insert(i);
        }
        for i in (0..200).step_by(5) {
            b.insert(i);
        }
        // multiples of 15 under 200: 0,15,...,195 -> 14 of them.
        assert_eq!(a.intersection_count(&b), 14);
        assert!(!a.is_disjoint(&b));
        let mut c = BitSet::new(200);
        c.insert(1);
        assert!(a.is_disjoint(&c) != a.contains(1));
    }

    #[test]
    fn iter_ascending() {
        let mut s = BitSet::new(70);
        s.insert(69);
        s.insert(3);
        s.insert(64);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64, 69]);
        assert_eq!(s.first(), Some(3));
    }

    #[test]
    fn full_set() {
        let s = BitSet::full(67);
        assert_eq!(s.count(), 67);
        assert!(s.contains(66));
        let e = BitSet::new(0);
        assert!(e.is_empty());
        assert_eq!(e.first(), None);
    }
}
