//! Exact minimum set cover by branch-and-bound.
//!
//! Substitutes for the ILP solver of the paper's design flow (§III-A / ref
//! \[11\]): 0/1 branch-and-bound over candidates with
//!
//! * the greedy solution as the incumbent upper bound,
//! * a density lower bound (`ceil(uncovered / max_cover)`) for pruning,
//! * branching on the uncovered element with the fewest covering candidates
//!   (the most constrained element first), trying candidates in decreasing
//!   cover order.
//!
//! Exponential in the worst case; the node budget keeps it predictable — on
//! budget exhaustion the incumbent (a valid, possibly suboptimal cover) is
//! returned with `proved_optimal == false`.

use crate::bitset::BitSet;
use crate::cover::{CoverInstance, Schedule};
use crate::greedy;
use polymem::ParallelAccess;

/// Result of an exact search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactResult {
    /// The best schedule found.
    pub schedule: Schedule,
    /// Whether optimality was proven within the node budget.
    pub proved_optimal: bool,
    /// Branch-and-bound nodes explored.
    pub nodes: u64,
}

/// Solve `inst` exactly (within `node_budget` search nodes).
pub fn solve(inst: &CoverInstance, node_budget: u64) -> ExactResult {
    let n = inst.trace.len();
    if n == 0 {
        return ExactResult {
            schedule: Schedule {
                accesses: Vec::new(),
                complete: true,
            },
            proved_optimal: true,
            nodes: 0,
        };
    }
    // Incumbent from greedy.
    let greedy_sol = greedy::solve(inst);
    if !greedy_sol.complete {
        // Universe not coverable at all: exact search cannot help.
        return ExactResult {
            schedule: greedy_sol,
            proved_optimal: true,
            nodes: 0,
        };
    }
    // Per-element candidate lists for most-constrained branching.
    let mut element_cands: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ci, c) in inst.candidates.iter().enumerate() {
        for e in c.cover.iter() {
            element_cands[e].push(ci);
        }
    }
    let max_cover = inst
        .candidates
        .iter()
        .map(|c| c.cover.count())
        .max()
        .unwrap_or(1);

    struct Search<'a> {
        inst: &'a CoverInstance,
        element_cands: &'a [Vec<usize>],
        best_len: usize,
        best: Vec<ParallelAccess>,
        nodes: u64,
        budget: u64,
        max_cover: usize,
        exhausted: bool,
    }

    impl Search<'_> {
        fn dfs(&mut self, uncovered: &BitSet, chosen: &mut Vec<ParallelAccess>) {
            self.nodes += 1;
            if self.nodes > self.budget {
                self.exhausted = true;
                return;
            }
            let remaining = uncovered.count();
            if remaining == 0 {
                if chosen.len() < self.best_len {
                    self.best_len = chosen.len();
                    self.best = chosen.clone();
                }
                return;
            }
            // Density bound.
            let lb = chosen.len() + remaining.div_ceil(self.max_cover);
            if lb >= self.best_len {
                return;
            }
            // Most-constrained uncovered element.
            let (elem, cands) = uncovered
                .iter()
                .map(|e| (e, &self.element_cands[e]))
                .min_by_key(|(_, cs)| {
                    cs.iter()
                        .filter(|&&ci| !self.inst.candidates[ci].cover.is_disjoint(uncovered))
                        .count()
                })
                .expect("nonempty uncovered set");
            // Try covering `elem`, best-gain candidates first.
            let mut options: Vec<(usize, usize)> = cands
                .iter()
                .map(|&ci| {
                    (
                        ci,
                        self.inst.candidates[ci].cover.intersection_count(uncovered),
                    )
                })
                .filter(|&(_, gain)| gain > 0)
                .collect();
            options.sort_by_key(|opt| std::cmp::Reverse(opt.1));
            let _ = elem;
            for (ci, _) in options {
                let mut next = uncovered.clone();
                next.subtract(&self.inst.candidates[ci].cover);
                chosen.push(self.inst.candidates[ci].access);
                self.dfs(&next, chosen);
                chosen.pop();
                if self.exhausted {
                    return;
                }
            }
        }
    }

    let mut search = Search {
        inst,
        element_cands: &element_cands,
        best_len: greedy_sol.len(),
        best: greedy_sol.accesses.clone(),
        nodes: 0,
        budget: node_budget,
        max_cover,
        exhausted: false,
    };
    // Root bound: the stronger of the density bound and the LP dual-ascent
    // bound. If it already meets the greedy incumbent, greedy is optimal.
    let lb = crate::lp::lower_bound(inst).max(n.div_ceil(max_cover));
    if lb < search.best_len {
        search.dfs(&BitSet::full(n), &mut Vec::new());
    }
    ExactResult {
        schedule: Schedule {
            accesses: search.best,
            complete: true,
        },
        proved_optimal: !search.exhausted,
        nodes: search.nodes,
    }
}

/// Brute-force minimum cover by subset enumeration — ground truth for tests
/// on tiny instances (exponential in candidate count; keep `candidates < 20`).
pub fn brute_force(inst: &CoverInstance) -> Option<Schedule> {
    let n = inst.trace.len();
    let m = inst.candidates.len();
    assert!(m <= 24, "brute force limited to tiny instances");
    let mut best: Option<Vec<usize>> = None;
    for mask in 0u32..(1 << m) {
        if let Some(ref b) = best {
            if (mask.count_ones() as usize) >= b.len() {
                continue;
            }
        }
        let mut covered = BitSet::new(n);
        for ci in 0..m {
            if mask & (1 << ci) != 0 {
                covered.union_with(&inst.candidates[ci].cover);
            }
        }
        if covered.count() == n {
            best = Some((0..m).filter(|ci| mask & (1 << ci) != 0).collect());
        }
    }
    best.map(|sel| Schedule {
        accesses: sel.iter().map(|&ci| inst.candidates[ci].access).collect(),
        complete: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::AccessTrace;
    use polymem::AccessScheme;

    #[test]
    fn exact_matches_dense_bound_on_tiled_block() {
        let trace = AccessTrace::block(0, 0, 4, 8);
        let inst = CoverInstance::build(trace, AccessScheme::ReO, 2, 4, 8, 16);
        let r = solve(&inst, 100_000);
        assert!(r.proved_optimal);
        assert_eq!(r.schedule.len(), 4);
        assert!(inst.verify(&r.schedule));
    }

    #[test]
    fn exact_beats_or_ties_greedy() {
        for stride in 1..=4 {
            let trace = AccessTrace::strided(6, 12, stride);
            let inst = CoverInstance::build(trace, AccessScheme::RoCo, 2, 4, 8, 16);
            let g = greedy::solve(&inst);
            let e = solve(&inst, 200_000);
            if g.complete {
                assert!(e.schedule.len() <= g.len(), "stride {stride}");
                assert!(inst.verify(&e.schedule));
            }
        }
    }

    #[test]
    fn exact_matches_brute_force_on_tiny_instance() {
        let trace = AccessTrace::block(0, 1, 2, 3); // ragged 2x3 block
        let mut inst = CoverInstance::build(trace, AccessScheme::ReO, 2, 2, 4, 8);
        inst.prune_dominated();
        assert!(
            inst.candidates.len() <= 24,
            "{} candidates",
            inst.candidates.len()
        );
        let bf = brute_force(&inst).expect("coverable");
        let e = solve(&inst, 1_000_000);
        assert!(e.proved_optimal);
        assert_eq!(e.schedule.len(), bf.len());
    }

    #[test]
    fn budget_exhaustion_returns_valid_incumbent() {
        let trace = AccessTrace::strided(8, 16, 2);
        let inst = CoverInstance::build(trace, AccessScheme::RoCo, 2, 4, 16, 16);
        let r = solve(&inst, 3); // absurdly small budget
        assert!(inst.verify(&r.schedule), "incumbent must still be a cover");
    }

    #[test]
    fn empty_trace() {
        let inst =
            CoverInstance::build(AccessTrace::from_coords([]), AccessScheme::ReO, 2, 4, 8, 16);
        let r = solve(&inst, 10);
        assert!(r.proved_optimal);
        assert!(r.schedule.is_empty());
    }

    #[test]
    fn multiview_needs_fewer_accesses_than_single_view() {
        // A trace of one row + one column: RoCo covers it in 2 accesses;
        // ReO (rectangles only) needs more.
        let mut coords: Vec<(usize, usize)> = (0..8).map(|j| (0, j)).collect();
        coords.extend((0..8).map(|i| (i, 0)));
        let trace = AccessTrace::from_coords(coords);
        let roco = solve(
            &CoverInstance::build(trace.clone(), AccessScheme::RoCo, 2, 4, 8, 8),
            100_000,
        );
        let reo = solve(
            &CoverInstance::build(trace, AccessScheme::ReO, 2, 4, 8, 8),
            100_000,
        );
        assert_eq!(roco.schedule.len(), 2, "row + column in two accesses");
        assert!(
            reo.schedule.len() > roco.schedule.len(),
            "ReO {} vs RoCo {}",
            reo.schedule.len(),
            roco.schedule.len()
        );
    }
}
