//! Greedy set-cover baseline.
//!
//! The classical `H_n`-approximate algorithm: repeatedly pick the candidate
//! covering the most still-uncovered elements. This is the baseline the
//! exact solver ([`crate::bnb`]) is compared against in the scheduler
//! ablation experiment.

use crate::bitset::BitSet;
use crate::cover::{CoverInstance, Schedule};

/// Solve `inst` greedily. Always returns a complete schedule when the
/// candidates can cover the universe; `complete == false` otherwise.
pub fn solve(inst: &CoverInstance) -> Schedule {
    let n = inst.trace.len();
    let mut uncovered = BitSet::full(n);
    let mut accesses = Vec::new();
    while !uncovered.is_empty() {
        let best = inst
            .candidates
            .iter()
            .map(|c| (c, c.cover.intersection_count(&uncovered)))
            .max_by_key(|&(_, gain)| gain);
        match best {
            Some((cand, gain)) if gain > 0 => {
                uncovered.subtract(&cand.cover);
                accesses.push(cand.access);
            }
            _ => {
                return Schedule {
                    accesses,
                    complete: false,
                };
            }
        }
    }
    Schedule {
        accesses,
        complete: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::AccessTrace;
    use polymem::AccessScheme;

    #[test]
    fn covers_tiled_block_optimally() {
        let trace = AccessTrace::block(0, 0, 4, 8); // 32 elements, 4 tiles
        let inst = CoverInstance::build(trace, AccessScheme::ReO, 2, 4, 8, 16);
        let s = solve(&inst);
        assert!(s.complete);
        assert_eq!(
            s.len(),
            4,
            "aligned tiled block should need exactly 4 accesses"
        );
        assert!(inst.verify(&s));
    }

    #[test]
    fn handles_unaligned_block() {
        let trace = AccessTrace::block(1, 3, 2, 4);
        let inst = CoverInstance::build(trace, AccessScheme::ReO, 2, 4, 8, 16);
        let s = solve(&inst);
        assert!(s.complete);
        // ReO rectangles are position-free, so one access suffices.
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn incomplete_when_uncoverable() {
        // RoCo covers rows/cols/aligned rects; a lone off-grid element at the
        // far corner of a space too small for the row/col patterns is
        // uncoverable... use an element outside all candidate reach by
        // making the space exactly one tile and the trace outside it.
        let trace = AccessTrace::from_coords([(0, 0), (30, 60)]);
        let inst = CoverInstance::build(trace, AccessScheme::ReO, 2, 4, 8, 16);
        // (30, 60) is outside the 8x16 space: no candidate covers it.
        let s = solve(&inst);
        assert!(!s.complete);
    }

    #[test]
    fn empty_trace_empty_schedule() {
        let trace = AccessTrace::from_coords([]);
        let inst = CoverInstance::build(trace, AccessScheme::ReO, 2, 4, 8, 16);
        let s = solve(&inst);
        assert!(s.complete);
        assert!(s.is_empty());
    }

    #[test]
    fn strided_trace_scheduled() {
        // Every 4th column over 2 rows in a RoCo memory: column accesses
        // gather the sparse pattern.
        let trace = AccessTrace::strided(8, 16, 4);
        let inst = CoverInstance::build(trace.clone(), AccessScheme::RoCo, 2, 4, 16, 16);
        let s = solve(&inst);
        assert!(s.complete);
        assert!(inst.verify(&s));
        // 32 elements; dense bound is 4; column accesses of 8 hit one stride
        // column each -> 4 accesses achievable.
        assert!(s.len() <= 8, "got {}", s.len());
    }
}
