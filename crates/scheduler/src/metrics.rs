//! Schedule quality metrics (paper §III-A): **speedup** and **efficiency**.
//!
//! A scalar memory serves one element per cycle, so a trace of `n` elements
//! costs `n` cycles. A PolyMem schedule of `k` parallel accesses costs `k`
//! cycles. Speedup is `n / k`; efficiency normalizes by the lane count
//! (`speedup / (p*q)`), i.e. the fraction of delivered lanes that carried
//! useful data.

use crate::cover::Schedule;
use serde::{Deserialize, Serialize};

/// Quality metrics of a schedule for a given trace and geometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleMetrics {
    /// Trace size (scalar access count).
    pub trace_len: usize,
    /// Parallel accesses in the schedule.
    pub schedule_len: usize,
    /// Lanes of the geometry (`p*q`).
    pub lanes: usize,
    /// `trace_len / schedule_len`.
    pub speedup: f64,
    /// `speedup / lanes` in `[0, 1]`.
    pub efficiency: f64,
}

/// Compute metrics. Returns `None` for an incomplete schedule (it cannot
/// serve the application) or an empty trace.
pub fn evaluate(trace_len: usize, lanes: usize, schedule: &Schedule) -> Option<ScheduleMetrics> {
    if !schedule.complete || trace_len == 0 {
        return None;
    }
    let k = schedule.len().max(1);
    let speedup = trace_len as f64 / k as f64;
    Some(ScheduleMetrics {
        trace_len,
        schedule_len: schedule.len(),
        lanes,
        speedup,
        efficiency: speedup / lanes as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymem::ParallelAccess;

    fn sched(n: usize) -> Schedule {
        Schedule {
            accesses: (0..n).map(|k| ParallelAccess::rect(2 * k, 0)).collect(),
            complete: true,
        }
    }

    #[test]
    fn perfect_schedule_efficiency_one() {
        let m = evaluate(32, 8, &sched(4)).unwrap();
        assert_eq!(m.speedup, 8.0);
        assert_eq!(m.efficiency, 1.0);
    }

    #[test]
    fn sparse_schedule_lower_efficiency() {
        let m = evaluate(16, 8, &sched(4)).unwrap();
        assert_eq!(m.speedup, 4.0);
        assert_eq!(m.efficiency, 0.5);
    }

    #[test]
    fn incomplete_gives_none() {
        let s = Schedule {
            accesses: vec![],
            complete: false,
        };
        assert!(evaluate(8, 8, &s).is_none());
    }

    #[test]
    fn empty_trace_gives_none() {
        assert!(evaluate(0, 8, &sched(0)).is_none());
    }
}
