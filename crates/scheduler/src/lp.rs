//! LP-relaxation lower bounds for the set-covering schedule search.
//!
//! The paper solves the schedule problem with ILP; branch-and-bound proves
//! optimality faster with tighter bounds. This module computes a **dual
//! feasible** solution of the covering LP by dual ascent:
//!
//! maximise `Σ y_e` subject to `Σ_{e ∈ S} y_e <= 1` for every candidate `S`,
//! `y >= 0`. Any feasible `y` bounds the optimum from below (weak duality),
//! and the ascent bound dominates the naive density bound
//! `ceil(n / max_cover)` whenever coverage is uneven.

use crate::cover::CoverInstance;

/// A dual-feasible lower bound on the minimum cover size.
///
/// Elements are processed most-constrained first; each element's dual is
/// raised to the residual slack of its tightest covering candidate.
/// Returns 0 for an empty universe.
pub fn dual_bound(inst: &CoverInstance) -> f64 {
    let n = inst.trace.len();
    if n == 0 {
        return 0.0;
    }
    let m = inst.candidates.len();
    // Candidate slack: 1 - sum of duals of its elements.
    let mut slack = vec![1.0f64; m];
    // Covering candidates per element.
    let mut covers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ci, c) in inst.candidates.iter().enumerate() {
        for e in c.cover.iter() {
            covers[e].push(ci);
        }
    }
    // Most-constrained first: fewest covering candidates.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&e| covers[e].len());

    let mut total = 0.0;
    for e in order {
        if covers[e].is_empty() {
            // Uncoverable element: the instance is infeasible; signal with
            // an infinite bound so callers prune immediately.
            return f64::INFINITY;
        }
        let y = covers[e]
            .iter()
            .map(|&ci| slack[ci])
            .fold(f64::INFINITY, f64::min)
            .max(0.0);
        if y > 0.0 {
            for &ci in &covers[e] {
                slack[ci] -= y;
            }
            total += y;
        }
    }
    total
}

/// The integer lower bound usable for pruning:
/// `max(ceil(dual), ceil(n / max_cover))`.
pub fn lower_bound(inst: &CoverInstance) -> usize {
    let dual = dual_bound(inst);
    if dual.is_infinite() {
        return usize::MAX;
    }
    let density = inst.lower_bound();
    (dual.ceil() as usize).max(density)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnb;
    use crate::pattern::AccessTrace;
    use polymem::AccessScheme;

    #[test]
    fn dual_bound_is_valid_lower_bound() {
        for stride in 1..=4usize {
            let trace = AccessTrace::strided(8, 16, stride);
            let inst = CoverInstance::build(trace, AccessScheme::RoCo, 2, 4, 16, 16);
            let opt = bnb::solve(&inst, 500_000);
            assert!(opt.proved_optimal);
            let lb = lower_bound(&inst);
            assert!(
                lb <= opt.schedule.len(),
                "stride {stride}: bound {lb} exceeds optimum {}",
                opt.schedule.len()
            );
        }
    }

    #[test]
    fn dual_bound_dominates_density_on_uneven_instances() {
        // A cross (row + column): candidates overlap only at the centre; the
        // density bound says ceil(31/8) = 4, and the dual bound must not be
        // weaker.
        let mut coords: Vec<(usize, usize)> = (0..16).map(|j| (8usize, j)).collect();
        coords.extend((0..16).map(|i| (i, 8usize)));
        let trace = AccessTrace::from_coords(coords);
        let inst = CoverInstance::build(trace, AccessScheme::RoCo, 2, 4, 16, 16);
        let lb = lower_bound(&inst);
        assert!(lb >= inst.lower_bound());
        let opt = bnb::solve(&inst, 500_000);
        assert!(lb <= opt.schedule.len());
    }

    #[test]
    fn infeasible_instance_gives_infinite_bound() {
        // Element outside every candidate's reach.
        let trace = AccessTrace::from_coords([(0, 0), (100, 100)]);
        let inst = CoverInstance::build(trace, AccessScheme::ReO, 2, 4, 8, 8);
        assert!(dual_bound(&inst).is_infinite());
        assert_eq!(lower_bound(&inst), usize::MAX);
    }

    #[test]
    fn empty_trace_bound_zero() {
        let inst =
            CoverInstance::build(AccessTrace::from_coords([]), AccessScheme::ReO, 2, 4, 8, 8);
        assert_eq!(dual_bound(&inst), 0.0);
        assert_eq!(lower_bound(&inst), 0);
    }

    #[test]
    fn perfect_tiling_bound_is_exact() {
        let trace = AccessTrace::block(0, 0, 4, 8); // 32 elements, optimum 4
        let inst = CoverInstance::build(trace, AccessScheme::ReO, 2, 4, 8, 16);
        let lb = lower_bound(&inst);
        assert_eq!(lb, 4);
    }
}
