//! Application access traces: the memory footprint a kernel needs per
//! iteration, as a set of 2D coordinates.
//!
//! §III-A of the paper: *"To customize PolyMem for a given application, we
//! start from the application memory access pattern, for which we find the
//! optimal parallel access schedule."* An [`AccessTrace`] is that pattern.

use polymem::{Region, RegionShape};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A set of logical coordinates an application accesses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessTrace {
    /// Deduplicated, sorted coordinates.
    coords: Vec<(usize, usize)>,
    /// Logical-space extent implied by the trace (max + 1).
    rows: usize,
    cols: usize,
}

impl AccessTrace {
    /// Build a trace from arbitrary coordinates (deduplicated).
    pub fn from_coords(coords: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let set: BTreeSet<(usize, usize)> = coords.into_iter().collect();
        let rows = set.iter().map(|&(i, _)| i + 1).max().unwrap_or(0);
        let cols = set.iter().map(|&(_, j)| j + 1).max().unwrap_or(0);
        Self {
            coords: set.into_iter().collect(),
            rows,
            cols,
        }
    }

    /// Build a trace from PolyMem regions (Fig. 2 style). Unrepresentable
    /// regions (a secondary diagonal crossing column 0) contribute nothing.
    pub fn from_regions(regions: &[Region]) -> Self {
        Self::from_coords(
            regions
                .iter()
                .flat_map(|r| r.coords_iter().into_iter().flatten()),
        )
    }

    /// A dense `rows x cols` block at `(i0, j0)`.
    pub fn block(i0: usize, j0: usize, rows: usize, cols: usize) -> Self {
        Self::from_regions(&[Region::new("b", i0, j0, RegionShape::Block { rows, cols })])
    }

    /// A row-major strided sweep: every `stride`-th column of `rows` rows —
    /// the sparse-matrix-ish pattern from the paper's motivation.
    pub fn strided(rows: usize, cols: usize, stride: usize) -> Self {
        assert!(stride > 0);
        Self::from_coords((0..rows).flat_map(|i| (0..cols).step_by(stride).map(move |j| (i, j))))
    }

    /// The coordinates, sorted.
    pub fn coords(&self) -> &[(usize, usize)] {
        &self.coords
    }

    /// Number of distinct elements accessed.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Implied logical rows (max row + 1).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Implied logical cols (max col + 1).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Index of a coordinate in the sorted order, if present.
    pub fn index_of(&self, coord: (usize, usize)) -> Option<usize> {
        self.coords.binary_search(&coord).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_coords_dedups_and_sorts() {
        let t = AccessTrace::from_coords([(1, 1), (0, 0), (1, 1), (0, 2)]);
        assert_eq!(t.coords(), &[(0, 0), (0, 2), (1, 1)]);
        assert_eq!(t.len(), 3);
        assert_eq!((t.rows(), t.cols()), (2, 3));
    }

    #[test]
    fn block_trace() {
        let t = AccessTrace::block(2, 3, 2, 2);
        assert_eq!(t.coords(), &[(2, 3), (2, 4), (3, 3), (3, 4)]);
    }

    #[test]
    fn strided_trace() {
        let t = AccessTrace::strided(2, 8, 4);
        assert_eq!(t.coords(), &[(0, 0), (0, 4), (1, 0), (1, 4)]);
    }

    #[test]
    fn from_regions_matches_fig2() {
        let t = AccessTrace::from_regions(&polymem::region::fig2_regions());
        assert!(!t.is_empty());
        // R0 is 4x4 = 16 elements, the rest are 8 or 16 each; with overlaps
        // deduplicated the total is bounded by the sum.
        assert!(t.len() <= 16 + 9 * 16);
    }

    #[test]
    fn index_of() {
        let t = AccessTrace::block(0, 0, 2, 2);
        assert_eq!(t.index_of((1, 0)), Some(2));
        assert_eq!(t.index_of((5, 5)), None);
    }

    #[test]
    fn empty_trace() {
        let t = AccessTrace::from_coords([]);
        assert!(t.is_empty());
        assert_eq!((t.rows(), t.cols()), (0, 0));
    }
}
