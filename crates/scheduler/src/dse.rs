//! Application-driven configuration selection (the end of §III-A):
//! *"We finally select the best configuration based on two metrics: speedup
//! and efficiency."*
//!
//! For an [`AccessTrace`], sweep (scheme × bank grid), compute the best
//! schedule per configuration (exact where tractable, greedy beyond the
//! node budget) and rank.

use crate::bnb;
use crate::cover::CoverInstance;
use crate::metrics::{evaluate, ScheduleMetrics};
use crate::pattern::AccessTrace;
use polymem::AccessScheme;
use serde::{Deserialize, Serialize};

/// One evaluated configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigResult {
    /// The scheme.
    pub scheme: AccessScheme,
    /// Bank-grid rows.
    pub p: usize,
    /// Bank-grid columns.
    pub q: usize,
    /// Schedule quality (None when the scheme cannot serve the trace).
    pub metrics: Option<ScheduleMetrics>,
    /// Whether the schedule is proven minimum.
    pub proved_optimal: bool,
}

/// Sweep settings.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Bank-grid shapes to consider.
    pub grids: Vec<(usize, usize)>,
    /// Branch-and-bound node budget per configuration.
    pub node_budget: u64,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            grids: vec![(2, 2), (2, 4), (2, 8), (4, 4)],
            node_budget: 50_000,
        }
    }
}

/// Evaluate every (scheme, grid) configuration for `trace` over a logical
/// space of `rows x cols` (rounded up internally to tile each grid).
pub fn sweep(
    trace: &AccessTrace,
    rows: usize,
    cols: usize,
    opts: &SweepOptions,
) -> Vec<ConfigResult> {
    let mut out = Vec::new();
    for &(p, q) in &opts.grids {
        let r = rows.next_multiple_of(p).max(p);
        let c = cols.next_multiple_of(q).max(q);
        for scheme in AccessScheme::ALL {
            if scheme == AccessScheme::ReTr && p % q != 0 && q % p != 0 {
                continue;
            }
            let inst = CoverInstance::build(trace.clone(), scheme, p, q, r, c);
            let result = bnb::solve(&inst, opts.node_budget);
            let metrics = evaluate(trace.len(), p * q, &result.schedule);
            out.push(ConfigResult {
                scheme,
                p,
                q,
                metrics,
                proved_optimal: result.proved_optimal,
            });
        }
    }
    out
}

/// Pick the best configuration: highest speedup, ties broken by efficiency
/// then by smaller lane count (cheaper hardware).
pub fn best(results: &[ConfigResult]) -> Option<&ConfigResult> {
    results
        .iter()
        .filter(|r| r.metrics.is_some())
        .max_by(|a, b| {
            let (ma, mb) = (a.metrics.unwrap(), b.metrics.unwrap());
            ma.speedup
                .partial_cmp(&mb.speedup)
                .unwrap()
                .then(ma.efficiency.partial_cmp(&mb.efficiency).unwrap())
                .then((b.p * b.q).cmp(&(a.p * a.q)))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_block_prefers_any_full_scheme_at_full_efficiency() {
        let trace = AccessTrace::block(0, 0, 8, 8);
        let opts = SweepOptions {
            grids: vec![(2, 4)],
            node_budget: 20_000,
        };
        let results = sweep(&trace, 8, 8, &opts);
        let best = best(&results).unwrap();
        let m = best.metrics.unwrap();
        assert_eq!(m.speedup, 8.0);
        assert_eq!(m.efficiency, 1.0);
    }

    #[test]
    fn row_and_column_trace_prefers_roco() {
        let mut coords: Vec<(usize, usize)> = (0..16).map(|j| (3, j)).collect();
        coords.extend((0..16).map(|i| (i, 5)));
        let trace = AccessTrace::from_coords(coords);
        let opts = SweepOptions {
            grids: vec![(2, 4)],
            node_budget: 100_000,
        };
        let results = sweep(&trace, 16, 16, &opts);
        let winner = best(&results).unwrap();
        assert_eq!(winner.scheme, AccessScheme::RoCo, "row+col favours RoCo");
        // 31 distinct elements (intersection shared), 4 accesses.
        assert_eq!(winner.metrics.unwrap().schedule_len, 4);
    }

    #[test]
    fn sweep_skips_invalid_retr_grids() {
        let trace = AccessTrace::block(0, 0, 2, 2);
        let opts = SweepOptions {
            grids: vec![(2, 4)],
            node_budget: 1000,
        };
        let results = sweep(&trace, 4, 4, &opts);
        // 2x4: 2 | 4 holds, so ReTr is present here.
        assert!(results.iter().any(|r| r.scheme == AccessScheme::ReTr));
        assert_eq!(results.len(), 5);
    }

    #[test]
    fn best_of_empty_is_none() {
        assert!(best(&[]).is_none());
    }

    #[test]
    fn larger_grid_wins_on_speedup_for_large_dense_trace() {
        let trace = AccessTrace::block(0, 0, 8, 16);
        let opts = SweepOptions {
            grids: vec![(2, 4), (2, 8)],
            node_budget: 50_000,
        };
        let results = sweep(&trace, 8, 16, &opts);
        let winner = best(&results).unwrap();
        assert_eq!(winner.p * winner.q, 16, "16 lanes halve the cycle count");
        assert_eq!(winner.metrics.unwrap().speedup, 16.0);
    }
}
