//! Local-search set-cover solver (simulated annealing flavour).
//!
//! A third point for the solver ablation, between greedy's speed and
//! branch-and-bound's optimality: start from the greedy cover and repeat a
//! *remove-and-repair* move — drop one chosen access, re-cover the hole
//! greedily — accepting improvements always and sideways/worse moves with
//! annealed probability. Deterministic: randomness comes from a seeded
//! xorshift so results are reproducible (no external RNG dependency).

use crate::bitset::BitSet;
use crate::cover::{CoverInstance, Schedule};
use crate::greedy;

/// Annealing parameters.
#[derive(Debug, Clone, Copy)]
pub struct AnnealOptions {
    /// Moves to attempt.
    pub iterations: u32,
    /// Initial acceptance temperature (in units of schedule length).
    pub start_temp: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        Self {
            iterations: 2_000,
            start_temp: 1.5,
            seed: 0x5EED,
        }
    }
}

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Greedily cover `uncovered` using candidates, appending chosen indices.
fn repair(inst: &CoverInstance, uncovered: &mut BitSet, chosen: &mut Vec<usize>) -> bool {
    while !uncovered.is_empty() {
        let best = inst
            .candidates
            .iter()
            .enumerate()
            .map(|(ci, c)| (ci, c.cover.intersection_count(uncovered)))
            .max_by_key(|&(_, gain)| gain);
        match best {
            Some((ci, gain)) if gain > 0 => {
                uncovered.subtract(&inst.candidates[ci].cover);
                chosen.push(ci);
            }
            _ => return false,
        }
    }
    true
}

fn coverage_of(inst: &CoverInstance, chosen: &[usize]) -> BitSet {
    let mut covered = BitSet::new(inst.trace.len());
    for &ci in chosen {
        covered.union_with(&inst.candidates[ci].cover);
    }
    covered
}

/// Solve by annealed remove-and-repair local search. Returns a complete
/// schedule whenever greedy finds one (local search never loses coverage).
pub fn solve(inst: &CoverInstance, opts: &AnnealOptions) -> Schedule {
    let n = inst.trace.len();
    let seed_sol = greedy::solve(inst);
    if !seed_sol.complete || n == 0 {
        return seed_sol;
    }
    // Map greedy's accesses back to candidate indices.
    let mut current: Vec<usize> = seed_sol
        .accesses
        .iter()
        .map(|a| {
            inst.candidates
                .iter()
                .position(|c| c.access == *a)
                .expect("greedy picks known candidates")
        })
        .collect();
    let mut best = current.clone();
    let mut rng = XorShift(opts.seed | 1);
    for it in 0..opts.iterations {
        if current.len() <= 1 {
            break;
        }
        let temp = opts.start_temp * (1.0 - it as f64 / opts.iterations as f64);
        // Remove one random choice, drop any now-redundant others, repair.
        let victim = (rng.next() as usize) % current.len();
        let mut trial: Vec<usize> = current
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != victim)
            .map(|(_, &ci)| ci)
            .collect();
        // Prune choices made redundant by the rest.
        let mut k = 0;
        while k < trial.len() {
            let without: Vec<usize> = trial
                .iter()
                .enumerate()
                .filter(|&(x, _)| x != k)
                .map(|(_, &ci)| ci)
                .collect();
            if coverage_of(inst, &without).count() == coverage_of(inst, &trial).count() {
                trial = without;
            } else {
                k += 1;
            }
        }
        let mut uncovered = BitSet::full(n);
        uncovered.subtract(&coverage_of(inst, &trial));
        if !repair(inst, &mut uncovered, &mut trial) {
            continue;
        }
        let delta = trial.len() as f64 - current.len() as f64;
        let accept = delta < 0.0 || (temp > 0.0 && rng.unit() < (-delta / temp.max(1e-9)).exp());
        if accept {
            current = trial;
            if current.len() < best.len() {
                best = current.clone();
            }
        }
    }
    Schedule {
        accesses: best.iter().map(|&ci| inst.candidates[ci].access).collect(),
        complete: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnb;
    use crate::pattern::AccessTrace;
    use polymem::AccessScheme;

    fn instance(stride: usize) -> CoverInstance {
        CoverInstance::build(
            AccessTrace::strided(8, 16, stride),
            AccessScheme::RoCo,
            2,
            4,
            16,
            16,
        )
    }

    #[test]
    fn anneal_is_complete_and_bounded_by_greedy() {
        for stride in 1..=4 {
            let inst = instance(stride);
            let g = greedy::solve(&inst);
            let a = solve(&inst, &AnnealOptions::default());
            assert!(a.complete);
            assert!(inst.verify(&a));
            assert!(
                a.len() <= g.len(),
                "stride {stride}: anneal must not lose to its seed"
            );
        }
    }

    #[test]
    fn anneal_between_greedy_and_exact() {
        let inst = instance(2);
        let e = bnb::solve(&inst, 200_000);
        let a = solve(&inst, &AnnealOptions::default());
        assert!(a.len() >= e.schedule.len(), "cannot beat a proven optimum");
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = instance(3);
        let o = AnnealOptions::default();
        let a = solve(&inst, &o);
        let b = solve(&inst, &o);
        assert_eq!(a, b);
    }

    #[test]
    fn handles_uncoverable_and_empty() {
        let inst = CoverInstance::build(
            AccessTrace::from_coords([(0, 0), (99, 99)]),
            AccessScheme::ReO,
            2,
            4,
            8,
            8,
        );
        assert!(!solve(&inst, &AnnealOptions::default()).complete);
        let empty =
            CoverInstance::build(AccessTrace::from_coords([]), AccessScheme::ReO, 2, 4, 8, 8);
        let s = solve(&empty, &AnnealOptions::default());
        assert!(s.complete && s.is_empty());
    }
}
