//! Multi-port schedule packing.
//!
//! A schedule from [`crate::cover`] counts *accesses*; a memory with `R`
//! read ports issues up to `R` of them per cycle (paper §III-B: "one write
//! access and one read access for each read port can happen independently
//! at the same time"). This module packs a schedule into cycles and
//! evaluates the multi-port speedup — the quantity Fig. 5 reports in
//! bandwidth form.

use crate::cover::Schedule;
use polymem::ParallelAccess;
use serde::{Deserialize, Serialize};

/// A schedule packed into per-cycle issue slots.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortSchedule {
    /// `cycles[c]` = accesses issued in cycle `c` (at most `read_ports`).
    pub cycles: Vec<Vec<ParallelAccess>>,
    /// Ports available.
    pub read_ports: usize,
}

impl PortSchedule {
    /// Number of cycles.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Port occupancy: fraction of issue slots actually used.
    pub fn occupancy(&self) -> f64 {
        if self.cycles.is_empty() {
            return 1.0;
        }
        let used: usize = self.cycles.iter().map(Vec::len).sum();
        used as f64 / (self.cycles.len() * self.read_ports) as f64
    }
}

/// Pack a read schedule onto `read_ports` ports. Read ports are fully
/// independent (each has its own crossbar and the bank data is replicated),
/// so packing is round-robin: `ceil(k / R)` cycles, provably minimal.
pub fn pack_reads(schedule: &Schedule, read_ports: usize) -> PortSchedule {
    assert!(read_ports >= 1);
    let cycles = schedule
        .accesses
        .chunks(read_ports)
        .map(<[ParallelAccess]>::to_vec)
        .collect();
    PortSchedule { cycles, read_ports }
}

/// A read/write program: each element is one parallel access tagged by
/// direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortOp {
    /// Read through any free read port.
    Read(ParallelAccess),
    /// Write through the single write port.
    Write(ParallelAccess),
}

/// Cycles needed to issue a mixed read/write program on `R` read ports and
/// one write port, assuming no data dependences between listed ops:
/// `max(ceil(reads / R), writes)`.
pub fn mixed_cycles(ops: &[PortOp], read_ports: usize) -> usize {
    let reads = ops.iter().filter(|o| matches!(o, PortOp::Read(_))).count();
    let writes = ops.len() - reads;
    reads.div_ceil(read_ports.max(1)).max(writes)
}

/// Multi-port speedup of a covering schedule: elements served per cycle,
/// relative to a scalar memory.
pub fn multiport_speedup(trace_len: usize, schedule: &Schedule, read_ports: usize) -> Option<f64> {
    if !schedule.complete || trace_len == 0 {
        return None;
    }
    let cycles = pack_reads(schedule, read_ports).len().max(1);
    Some(trace_len as f64 / cycles as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::AccessTrace;
    use crate::{solve_exact, CoverInstance};
    use polymem::AccessScheme;

    fn sched(n: usize) -> Schedule {
        Schedule {
            accesses: (0..n).map(|k| ParallelAccess::rect(2 * k, 0)).collect(),
            complete: true,
        }
    }

    #[test]
    fn pack_reads_ceil() {
        let s = sched(7);
        let p = pack_reads(&s, 2);
        assert_eq!(p.len(), 4);
        assert_eq!(p.cycles[0].len(), 2);
        assert_eq!(p.cycles[3].len(), 1);
        assert!((p.occupancy() - 7.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn single_port_is_identity() {
        let s = sched(5);
        let p = pack_reads(&s, 1);
        assert_eq!(p.len(), 5);
        assert_eq!(p.occupancy(), 1.0);
    }

    #[test]
    fn mixed_reads_and_writes_overlap() {
        let r = PortOp::Read(ParallelAccess::rect(0, 0));
        let w = PortOp::Write(ParallelAccess::rect(2, 0));
        // 4 reads + 2 writes on 2 read ports: max(2, 2) = 2 cycles.
        assert_eq!(mixed_cycles(&[r, r, r, r, w, w], 2), 2);
        // Write-bound: 1 read + 3 writes: max(1, 3) = 3.
        assert_eq!(mixed_cycles(&[r, w, w, w], 4), 3);
        assert_eq!(mixed_cycles(&[], 2), 0);
    }

    #[test]
    fn multiport_speedup_scales_with_ports() {
        // 8x16 dense block: 16 accesses of 8 lanes.
        let trace = AccessTrace::block(0, 0, 8, 16);
        let inst = CoverInstance::build(trace.clone(), AccessScheme::ReO, 2, 4, 8, 16);
        let e = solve_exact(&inst, 50_000);
        let s1 = multiport_speedup(trace.len(), &e.schedule, 1).unwrap();
        let s2 = multiport_speedup(trace.len(), &e.schedule, 2).unwrap();
        let s4 = multiport_speedup(trace.len(), &e.schedule, 4).unwrap();
        assert_eq!(s1, 8.0);
        assert_eq!(s2, 16.0);
        assert_eq!(s4, 32.0);
    }

    #[test]
    fn incomplete_gives_none() {
        let s = Schedule {
            accesses: vec![],
            complete: false,
        };
        assert!(multiport_speedup(8, &s, 2).is_none());
    }

    #[test]
    fn empty_portschedule() {
        let p = pack_reads(&sched(0), 3);
        assert!(p.is_empty());
        assert_eq!(p.occupancy(), 1.0);
    }
}
