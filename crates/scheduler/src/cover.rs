//! Set-covering formulation of schedule search (paper §III-A, ref \[10\]).
//!
//! *"To determine the optimal schedule we formulate the problem as a set
//! covering problem, using ILP for the search itself."* Given an
//! application trace and a PolyMem geometry, the **universe** is the set of
//! trace coordinates and each **candidate** is one conflict-free parallel
//! access (pattern + position) of the chosen scheme; its cover set is the
//! trace elements it touches. A schedule is a family of candidates covering
//! the universe; the optimal schedule is a minimum one.

use crate::bitset::BitSet;
use crate::pattern::AccessTrace;
use polymem::{AccessScheme, Agu, ParallelAccess};
use serde::{Deserialize, Serialize};

/// One candidate parallel access and the trace elements it covers.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The access (pattern + origin).
    pub access: ParallelAccess,
    /// Universe elements covered.
    pub cover: BitSet,
}

/// A set-covering instance.
#[derive(Debug, Clone)]
pub struct CoverInstance {
    /// The trace being scheduled.
    pub trace: AccessTrace,
    /// Candidate accesses.
    pub candidates: Vec<Candidate>,
    /// Scheme used to generate candidates.
    pub scheme: AccessScheme,
    /// Bank-grid rows.
    pub p: usize,
    /// Bank-grid cols.
    pub q: usize,
}

/// A schedule: the chosen sequence of parallel accesses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// Selected accesses, in selection order.
    pub accesses: Vec<ParallelAccess>,
    /// Whether the schedule covers the whole trace.
    pub complete: bool,
}

impl Schedule {
    /// Number of parallel accesses (cycles) in the schedule.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }
}

impl CoverInstance {
    /// Build an instance: enumerate every in-bounds access of every pattern
    /// the scheme supports (honouring alignment restrictions) over a logical
    /// space of `rows x cols`, keeping candidates that cover at least one
    /// trace element.
    pub fn build(
        trace: AccessTrace,
        scheme: AccessScheme,
        p: usize,
        q: usize,
        rows: usize,
        cols: usize,
    ) -> Self {
        let agu = Agu::new(p, q, rows, cols);
        let n = trace.len();
        let mut candidates = Vec::new();
        let mut coords = Vec::with_capacity(p * q);
        for pattern in scheme.supported_patterns(p, q) {
            let aligned = scheme.requires_alignment(pattern);
            for i in 0..rows {
                for j in 0..cols {
                    if aligned && (i % p != 0 || j % q != 0) {
                        continue;
                    }
                    let access = ParallelAccess::new(i, j, pattern);
                    if agu.expand_into(access, &mut coords).is_err() {
                        continue;
                    }
                    let mut cover = BitSet::new(n);
                    for &(ci, cj) in &coords {
                        if let Some(ix) = trace.index_of((ci, cj)) {
                            cover.insert(ix);
                        }
                    }
                    if !cover.is_empty() {
                        candidates.push(Candidate { access, cover });
                    }
                }
            }
        }
        Self {
            trace,
            candidates,
            scheme,
            p,
            q,
        }
    }

    /// Remove candidates whose cover is a subset of another candidate's
    /// (dominated candidates never help a minimum cover). Returns how many
    /// were removed. Quadratic — intended for exact-solver preprocessing on
    /// small instances.
    pub fn prune_dominated(&mut self) -> usize {
        let n = self.candidates.len();
        let mut keep = vec![true; n];
        for a in 0..n {
            if !keep[a] {
                continue;
            }
            for b in 0..n {
                if a == b || !keep[b] {
                    continue;
                }
                let ca = &self.candidates[a].cover;
                let cb = &self.candidates[b].cover;
                let inter = ca.intersection_count(cb);
                // a subset of b (strictly smaller, or equal with higher index).
                if inter == ca.count() && (ca.count() < cb.count() || a > b) {
                    keep[a] = false;
                    break;
                }
            }
        }
        let mut it = keep.iter();
        self.candidates.retain(|_| *it.next().unwrap());
        n - self.candidates.len()
    }

    /// Verify that `schedule` covers the whole trace.
    pub fn verify(&self, schedule: &Schedule) -> bool {
        let n = self.trace.len();
        let mut covered = BitSet::new(n);
        for access in &schedule.accesses {
            if let Some(c) = self.candidates.iter().find(|c| c.access == *access) {
                covered.union_with(&c.cover);
            } else {
                return false;
            }
        }
        covered.count() == n
    }

    /// The trivial upper bound: one access per trace element is never
    /// needed; `ceil(n / (p*q))` is the dense lower bound.
    pub fn lower_bound(&self) -> usize {
        self.trace.len().div_ceil(self.p * self.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_generates_covering_candidates() {
        let trace = AccessTrace::block(0, 0, 4, 8);
        let inst = CoverInstance::build(trace, AccessScheme::ReO, 2, 4, 8, 16);
        assert!(!inst.candidates.is_empty());
        // Every candidate covers at least one element.
        assert!(inst.candidates.iter().all(|c| !c.cover.is_empty()));
        // A perfectly tiled block admits full-cover candidates of 8 elements.
        assert!(inst.candidates.iter().any(|c| c.cover.count() == 8));
    }

    #[test]
    fn lower_bound_is_dense_bound() {
        let trace = AccessTrace::block(0, 0, 4, 8); // 32 elements
        let inst = CoverInstance::build(trace, AccessScheme::ReO, 2, 4, 8, 16);
        assert_eq!(inst.lower_bound(), 4);
    }

    #[test]
    fn alignment_respected_for_roco() {
        let trace = AccessTrace::block(1, 1, 2, 4);
        let inst = CoverInstance::build(trace, AccessScheme::RoCo, 2, 4, 8, 16);
        for c in &inst.candidates {
            if c.access.pattern == polymem::AccessPattern::Rectangle {
                assert_eq!(c.access.i % 2, 0);
                assert_eq!(c.access.j % 4, 0);
            }
        }
    }

    #[test]
    fn prune_dominated_shrinks() {
        let trace = AccessTrace::block(0, 0, 2, 4);
        let mut inst = CoverInstance::build(trace, AccessScheme::ReRo, 2, 4, 8, 16);
        let before = inst.candidates.len();
        let removed = inst.prune_dominated();
        assert!(
            removed > 0,
            "rows fully covering the block dominate partial rects"
        );
        assert_eq!(inst.candidates.len(), before - removed);
        // The full-cover candidate must survive.
        assert!(inst.candidates.iter().any(|c| c.cover.count() == 8));
    }

    #[test]
    fn verify_detects_incomplete() {
        let trace = AccessTrace::block(0, 0, 4, 4);
        let inst = CoverInstance::build(trace, AccessScheme::ReO, 2, 4, 8, 16);
        let partial = Schedule {
            accesses: vec![inst.candidates[0].access],
            complete: true,
        };
        assert!(!inst.verify(&partial));
    }
}
