//! The paper's Table I, transcribed literally — the support-matrix
//! **source of truth** that the `polymem-verify` static analyzer
//! cross-checks against the runtime implementation
//! (`polymem::AccessScheme::supported_patterns`).
//!
//! This module deliberately re-derives every claim from the published
//! conditions instead of calling into `polymem`: two independent encodings
//! of Table I must agree before the verifier will even start its exhaustive
//! residue-class proof, so a typo in either side is caught by the other.
//! Keep this transcription close to the paper; if a scheme's condition ever
//! needs refinement, change it here *and* in `polymem::scheme`, and let
//! `cargo run -p verifier` arbitrate.

use polymem::{AccessPattern, AccessScheme};

/// Greatest common divisor (independent of `polymem`'s internal helper —
/// this module must not share code with the implementation it checks).
fn gcd(a: usize, b: usize) -> usize {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// The patterns Table I claims `scheme` serves conflict-free on a `p x q`
/// bank grid. Alignment-restricted claims (see [`aligned_only`]) are
/// included; geometries a scheme cannot be built for at all (`ReTr` with
/// neither side dividing the other) claim nothing.
///
/// The conditions, as published (P = `p`, Q = `q`):
///
/// * **ReO** — unaligned `p x q` rectangles.
/// * **ReRo** — rectangles, rows; main diagonals iff `gcd(Q+1, P) = 1`;
///   secondary diagonals iff `gcd(Q-1, P) = 1`.
/// * **ReCo** — rectangles, columns; main diagonals iff `gcd(P+1, Q) = 1`;
///   secondary diagonals iff `gcd(P-1, Q) = 1`.
/// * **RoCo** — rows, columns, and *aligned* rectangles.
/// * **ReTr** — `p x q` and `q x p` rectangles, iff `P | Q` or `Q | P`.
pub fn table1(scheme: AccessScheme, p: usize, q: usize) -> Vec<AccessPattern> {
    assert!(p > 0 && q > 0, "bank grid must be non-empty");
    match scheme {
        AccessScheme::ReO => vec![AccessPattern::Rectangle],
        AccessScheme::ReRo => {
            let mut v = vec![AccessPattern::Rectangle, AccessPattern::Row];
            if gcd(q + 1, p) == 1 {
                v.push(AccessPattern::MainDiagonal);
            }
            if gcd(q - 1, p) == 1 {
                v.push(AccessPattern::SecondaryDiagonal);
            }
            v
        }
        AccessScheme::ReCo => {
            let mut v = vec![AccessPattern::Rectangle, AccessPattern::Column];
            if gcd(p + 1, q) == 1 {
                v.push(AccessPattern::MainDiagonal);
            }
            if gcd(p - 1, q) == 1 {
                v.push(AccessPattern::SecondaryDiagonal);
            }
            v
        }
        AccessScheme::RoCo => vec![
            AccessPattern::Rectangle,
            AccessPattern::Row,
            AccessPattern::Column,
        ],
        AccessScheme::ReTr => {
            if p.is_multiple_of(q) || q.is_multiple_of(p) {
                vec![AccessPattern::Rectangle, AccessPattern::TransposedRectangle]
            } else {
                Vec::new()
            }
        }
    }
}

/// Whether Table I restricts `scheme`'s claim on `pattern` to origins
/// aligned to the bank grid (`i0 ≡ 0 mod p`, `j0 ≡ 0 mod q`). The only
/// such entry is RoCo's rectangle.
pub fn aligned_only(scheme: AccessScheme, pattern: AccessPattern) -> bool {
    scheme == AccessScheme::RoCo && pattern == AccessPattern::Rectangle
}

/// The full Table I for one geometry: every scheme paired with its claims.
pub fn support_matrix(p: usize, q: usize) -> Vec<(AccessScheme, Vec<AccessPattern>)> {
    AccessScheme::ALL
        .into_iter()
        .map(|s| (s, table1(s, p, q)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_claims() {
        // The paper's running 2x4 example.
        let t = table1(AccessScheme::ReRo, 2, 4);
        assert!(t.contains(&AccessPattern::Row));
        // gcd(5, 2) = 1 and gcd(3, 2) = 1: both diagonals.
        assert!(t.contains(&AccessPattern::MainDiagonal));
        assert!(t.contains(&AccessPattern::SecondaryDiagonal));
        assert!(!t.contains(&AccessPattern::Column));
    }

    #[test]
    fn diagonal_conditions_bind() {
        // gcd(q+1, p): 4+1=5 vs p=5 -> main diagonal excluded.
        let t = table1(AccessScheme::ReRo, 5, 4);
        assert!(!t.contains(&AccessPattern::MainDiagonal));
        // gcd(q-1, p): 5-1=4 vs p=2 -> secondary excluded.
        let t = table1(AccessScheme::ReRo, 2, 5);
        assert!(!t.contains(&AccessPattern::SecondaryDiagonal));
    }

    #[test]
    fn retr_requires_divisibility() {
        assert!(table1(AccessScheme::ReTr, 3, 5).is_empty());
        assert_eq!(table1(AccessScheme::ReTr, 2, 8).len(), 2);
    }

    #[test]
    fn matches_runtime_support_matrix() {
        // The cross-check the verifier performs, in miniature: both
        // encodings of Table I agree on common geometries.
        for &(p, q) in &[(2usize, 2usize), (2, 4), (4, 2), (4, 4), (3, 3), (2, 8)] {
            for (scheme, mut claimed) in support_matrix(p, q) {
                let mut runtime = scheme.supported_patterns(p, q);
                claimed.sort_by_key(|pat| pat.index());
                runtime.sort_by_key(|pat| pat.index());
                assert_eq!(claimed, runtime, "{scheme} on {p}x{q}");
            }
        }
    }

    #[test]
    fn aligned_only_is_roco_rectangles() {
        assert!(aligned_only(AccessScheme::RoCo, AccessPattern::Rectangle));
        assert!(!aligned_only(AccessScheme::RoCo, AccessPattern::Row));
        assert!(!aligned_only(AccessScheme::ReO, AccessPattern::Rectangle));
        for scheme in AccessScheme::ALL {
            for pat in scheme.supported_patterns(2, 4) {
                assert_eq!(
                    aligned_only(scheme, pat),
                    scheme.requires_alignment(pat),
                    "{scheme} {pat}"
                );
            }
        }
    }
}
