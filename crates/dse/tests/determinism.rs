//! The determinism contract of the parallel sweep, end to end: the
//! committed `DSE_report.json` must be byte-identical whatever the worker
//! count, and the Pareto front must match a serial oracle on arbitrary
//! objective sets.

use polymem::telemetry::TelemetryRegistry;
use polymem_dse::{claims, engine, pareto, report};
use proptest::prelude::*;

fn render_with_workers(workers: usize) -> String {
    let cfg = engine::SweepConfig::quick().with_workers(workers);
    let result = engine::sweep(&cfg, &TelemetryRegistry::new());
    let claims = claims::evaluate(&result);
    report::render(&result, &claims)
}

#[test]
fn report_bytes_identical_across_worker_counts() {
    let serial = render_with_workers(1);
    let two = render_with_workers(2);
    let many = render_with_workers(engine::default_workers().max(4));
    assert_eq!(serial, two, "1-worker vs 2-worker report bytes differ");
    assert_eq!(serial, many, "1-worker vs N-worker report bytes differ");
}

#[test]
fn report_bytes_identical_across_reruns() {
    let a = render_with_workers(2);
    let b = render_with_workers(2);
    assert_eq!(a, b, "same-configuration reruns drifted");
}

/// Independent serial oracle: a point is on the front iff no other point is
/// at least as good on all three axes and strictly better on one.
fn oracle_front(objs: &[pareto::Objectives]) -> Vec<usize> {
    let mut keep = Vec::new();
    'outer: for (i, a) in objs.iter().enumerate() {
        for (j, b) in objs.iter().enumerate() {
            if i == j {
                continue;
            }
            let no_worse = b.read_gibps >= a.read_gibps
                && b.bram_blocks <= a.bram_blocks
                && b.fmax_mhz >= a.fmax_mhz;
            let strictly = b.read_gibps > a.read_gibps
                || b.bram_blocks < a.bram_blocks
                || b.fmax_mhz > a.fmax_mhz;
            if no_worse && strictly {
                continue 'outer;
            }
        }
        keep.push(i);
    }
    keep
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn front_matches_serial_oracle(raw in prop::collection::vec((0u32..6, 0u32..6, 0u32..6), 0..40)) {
        // Quantized coordinates force plenty of ties and duplicates — the
        // regime where dominance logic errors (>= vs >) actually show.
        let objs: Vec<pareto::Objectives> = raw
            .iter()
            .map(|&(r, b, f)| pareto::Objectives {
                read_gibps: r as f64,
                bram_blocks: b as f64,
                fmax_mhz: f as f64,
            })
            .collect();
        let fast = pareto::front_of(&objs);
        let oracle = oracle_front(&objs);
        prop_assert_eq!(&fast, &oracle);
        // Non-domination: nothing on the front is dominated.
        for &i in &fast {
            for (j, o) in objs.iter().enumerate() {
                if i != j {
                    prop_assert!(!pareto::dominates(o, &objs[i]), "front[{}] dominated by {}", i, j);
                }
            }
        }
        // Completeness: everything off the front is dominated by someone.
        for (j, o) in objs.iter().enumerate() {
            if !fast.contains(&j) {
                prop_assert!(objs.iter().any(|other| pareto::dominates(other, o)), "{} missing from front", j);
            }
        }
    }
}
