//! The paper's trend claims on the *full* grid (Table III plus the 32-lane
//! arm), asserted — not just printed. The quick grid is covered by unit
//! tests and the CI drift gate; this is the acceptance run.

use polymem::telemetry::TelemetryRegistry;
use polymem::AccessScheme;
use polymem_dse::{claims, engine, pareto};

fn full_sweep() -> engine::SweepResult {
    engine::sweep(&engine::SweepConfig::full(), &TelemetryRegistry::new())
}

#[test]
fn full_grid_reproduces_every_paper_trend() {
    let result = full_sweep();
    // Full grid: 4 sizes x 3 lane counts x 4 port counts x 5 schemes.
    assert_eq!(result.points.len(), 240);
    assert!(result.skipped.is_empty());
    // Table IV: 18 feasible (size, lanes, ports) cells x 5 schemes.
    assert_eq!(result.feasible().count(), 90);

    let claims = claims::evaluate(&result);
    let failing: Vec<_> = claims.iter().filter(|c| !c.holds).collect();
    assert!(
        failing.is_empty(),
        "failing claims on full grid: {failing:#?}"
    );
}

#[test]
fn full_grid_crossover_and_winners() {
    let result = full_sweep();

    // Per-scheme winners, checked directly (independent of claims.rs): in
    // every feasible cell RoCo wins measured bandwidth, ReO wins area.
    let mut cells: std::collections::BTreeMap<(usize, usize, usize), Vec<&engine::EvalPoint>> =
        std::collections::BTreeMap::new();
    for p in result.feasible() {
        cells
            .entry((p.size_kb, p.lanes, p.read_ports))
            .or_default()
            .push(p);
    }
    assert_eq!(cells.len(), 18);
    for (cell, pts) in &cells {
        assert_eq!(pts.len(), 5, "cell {cell:?} missing schemes");
        let bw_winner = pts
            .iter()
            .max_by(|a, b| {
                a.measured_read_gibps()
                    .unwrap()
                    .total_cmp(&b.measured_read_gibps().unwrap())
            })
            .unwrap();
        assert_eq!(bw_winner.scheme, AccessScheme::RoCo, "cell {cell:?}");
        let area_winner = pts
            .iter()
            .min_by(|a, b| {
                a.synth
                    .resources
                    .slices
                    .total_cmp(&b.synth.resources.slices)
            })
            .unwrap();
        assert_eq!(area_winner.scheme, AccessScheme::ReO, "cell {cell:?}");
    }

    // The lane/port crossover, concretely: at every capacity where both
    // live, 16L/2P needs ~half the BRAM of 8L/4P and still reads faster.
    let get = |size, lanes, ports| {
        result.feasible().find(|p| {
            p.size_kb == size
                && p.lanes == lanes
                && p.read_ports == ports
                && p.scheme == AccessScheme::RoCo
        })
    };
    let mut compared = 0;
    for &size in &[512usize, 1024, 2048, 4096] {
        if let (Some(wide), Some(deep)) = (get(size, 16, 2), get(size, 8, 4)) {
            compared += 1;
            assert!(
                wide.measured_read_gibps().unwrap() > deep.measured_read_gibps().unwrap(),
                "{size}KB: wide not faster"
            );
            assert!(
                wide.synth.resources.bram_blocks < 0.75 * deep.synth.resources.bram_blocks,
                "{size}KB: wide should need far fewer BRAMs ({} vs {})",
                wide.synth.resources.bram_blocks,
                deep.synth.resources.bram_blocks
            );
        }
    }
    assert!(compared >= 1, "no capacity hosts both crossover geometries");

    // 32-lane arm: present, explored, fully infeasible.
    let l32: Vec<_> = result.points.iter().filter(|p| p.lanes == 32).collect();
    assert_eq!(l32.len(), 80);
    assert!(l32.iter().all(|p| !p.feasible()));
}

#[test]
fn full_grid_front_contains_the_peaks() {
    let result = full_sweep();
    let front = pareto::front(&result.points);
    assert!(!front.is_empty());

    // The global measured-bandwidth peak is on the front by construction;
    // pin its identity (paper Fig. 5 shape: smallest memory, widest
    // lanes*ports product).
    let peak = result
        .points
        .iter()
        .enumerate()
        .filter(|(_, p)| p.feasible())
        .max_by(|(_, a), (_, b)| {
            a.measured_read_gibps()
                .unwrap()
                .total_cmp(&b.measured_read_gibps().unwrap())
        })
        .map(|(i, _)| i)
        .unwrap();
    assert!(front.contains(&peak));
    let p = &result.points[peak];
    assert_eq!(
        (p.size_kb, p.lanes, p.read_ports, p.scheme),
        (512, 16, 2, AccessScheme::RoCo)
    );
    // ~32 GB/s: the paper's headline read bandwidth (GiB here, hence the
    // slightly lower band).
    let gibps = p.measured_read_gibps().unwrap();
    assert!(gibps > 26.0 && gibps < 33.0, "peak {gibps} GiB/s");

    // Every front member is feasible and simulated.
    for &i in &front {
        assert!(result.points[i].feasible());
        assert!(result.points[i].sim.is_some());
    }
}
