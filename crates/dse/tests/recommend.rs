//! Known-answer workloads for the auto-configurator: each canonical access
//! mix must map to the scheme class the paper's Table I predicts.

use polymem::{AccessPattern, AccessScheme};
use polymem_dse::recommend::{recommend, WorkloadTrace};

#[test]
fn row_streaming_gets_a_row_scheme() {
    let cfg = recommend(&WorkloadTrace::row_streaming()).unwrap();
    // The winner must serve rows conflict-free — the ReRo/RoCo class.
    // RoCo's cheaper shuffle path makes it the deterministic pick.
    assert!(cfg.scheme.supports(AccessPattern::Row, cfg.p, cfg.q));
    assert_eq!(cfg.scheme, AccessScheme::RoCo);
    // Streaming wants width: the widest feasible lane count wins.
    assert_eq!(cfg.lanes(), 16);
}

#[test]
fn column_streaming_gets_a_column_scheme() {
    let cfg = recommend(&WorkloadTrace::column_streaming()).unwrap();
    assert!(cfg.scheme.supports(AccessPattern::Column, cfg.p, cfg.q));
    assert_eq!(cfg.scheme, AccessScheme::RoCo);
}

#[test]
fn unaligned_tiles_get_reo() {
    // RoCo only serves *aligned* rectangles, so the sliding-window workload
    // excludes it; among the unaligned-rectangle schemes ReO has the
    // shortest critical path (and the least logic).
    let cfg = recommend(&WorkloadTrace::unaligned_tiles()).unwrap();
    assert_eq!(cfg.scheme, AccessScheme::ReO);
}

#[test]
fn transpose_workload_gets_retr() {
    // Only ReTr serves both rectangles and transposed rectangles at full
    // width; everyone else serializes half the mix.
    let cfg = recommend(&WorkloadTrace::transpose()).unwrap();
    assert_eq!(cfg.scheme, AccessScheme::ReTr);
}

#[test]
fn row_streams_with_tile_reuse_get_rero() {
    // The classic ReRo case: rows *and* unaligned rectangles in one kernel.
    // RoCo loses its rectangles (alignment), ReO loses its rows; only ReRo
    // runs the whole mix at full width.
    let cfg = recommend(&WorkloadTrace::row_streaming_with_tiles()).unwrap();
    assert_eq!(cfg.scheme, AccessScheme::ReRo);
}

#[test]
fn recommendation_is_deterministic_and_valid() {
    let a = recommend(&WorkloadTrace::row_streaming()).unwrap();
    let b = recommend(&WorkloadTrace::row_streaming()).unwrap();
    assert_eq!(a, b);
    assert!(a.validate().is_ok());
}
