//! `polymem-dse` — run the design-space sweep, print the Pareto front and
//! trend claims, optionally write the committed `DSE_report.json`.
//!
//! ```text
//! polymem-dse [--quick] [--workers N] [--chunks N] [--report FILE]
//! ```
//!
//! * `--quick`   reduced CI grid (trend-complete; see `DseGrid::quick`)
//! * `--workers` worker threads (default: available parallelism)
//! * `--chunks`  simulation pass length in chunks (default per grid)
//! * `--report`  write the deterministic JSON artifact to FILE
//!
//! Exits non-zero if any trend claim fails, so the CI drift gate also
//! guards the claims themselves.

use polymem::telemetry::TelemetryRegistry;
use polymem_dse::{claims, engine, pareto, report};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut cfg_quick = false;
    let mut workers: Option<usize> = None;
    let mut chunks: Option<usize> = None;
    let mut report_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg_quick = true,
            "--workers" => workers = args.next().and_then(|v| v.parse().ok()),
            "--chunks" => chunks = args.next().and_then(|v| v.parse().ok()),
            "--report" => report_path = args.next(),
            "--help" | "-h" => {
                eprintln!(
                    "usage: polymem-dse [--quick] [--workers N] [--chunks N] [--report FILE]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut cfg = if cfg_quick {
        engine::SweepConfig::quick()
    } else {
        engine::SweepConfig::full()
    };
    if let Some(w) = workers {
        cfg = cfg.with_workers(w);
    }
    if let Some(c) = chunks {
        cfg.sim_chunks = c;
    }

    let registry = TelemetryRegistry::new();
    let result = engine::sweep(&cfg, &registry);
    let claims = claims::evaluate(&result);

    println!(
        "swept {} cells ({} evaluated, {} feasible, {} skipped) on {}",
        result.grid.len(),
        result.points.len(),
        result.feasible().count(),
        result.skipped.len(),
        result.device_name,
    );
    println!(
        "scheduler: {} ticked, {} jumps covering {} cycles",
        result.sched.ticked_cycles, result.sched.jumps, result.sched.skipped_cycles
    );

    println!("\npareto front (read GiB/s vs BRAM vs Fmax):");
    for &i in &pareto::front(&result.points) {
        let p = &result.points[i];
        let o = pareto::objectives(p).unwrap();
        println!(
            "  {:>4}KB {:>2}L {}P {:<4}  {:>7.2} GiB/s  {:>6.1} BRAM  {:>6.2} MHz",
            p.size_kb,
            p.lanes,
            p.read_ports,
            p.scheme.name(),
            o.read_gibps,
            o.bram_blocks,
            o.fmax_mhz
        );
    }

    println!("\nclaims:");
    let mut ok = true;
    for c in &claims {
        let mark = if c.holds { "PASS" } else { "FAIL" };
        println!("  [{mark}] {}: {}", c.id, c.details);
        ok &= c.holds;
    }

    if let Some(path) = report_path {
        let text = report::render(&result, &claims);
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nwrote {path}");
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("\nFAILED claims: {:?}", claims::failing(&claims));
        ExitCode::FAILURE
    }
}
