//! The auto-configurator: from a described access mix to a concrete
//! [`PolyMemConfig`].
//!
//! The paper's DSE answers "which configuration is best" for one workload
//! (STREAM). [`recommend`] generalizes it: score every feasible, simulated
//! point of the sweep against a [`WorkloadTrace`] — weighting each access
//! pattern by whether the candidate scheme serves it conflict-free (full
//! lanes) or falls back to element-serial access (one lane) — and return
//! the highest-scoring configuration. Ties break toward fewer BRAM blocks,
//! then grid order, so the answer is deterministic.

use crate::engine::{sweep, EvalPoint, SweepConfig, SweepResult};
use polymem::telemetry::TelemetryRegistry;
use polymem::{AccessPattern, PolyMemConfig};
use std::sync::OnceLock;

/// A described workload: which parallel access patterns it issues, how
/// often, and how read-heavy it is.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadTrace {
    /// Access-pattern mix with relative weights (> 0).
    pub pattern_mix: Vec<(AccessPattern, f64)>,
    /// Whether the workload's rectangle accesses are bank-grid aligned
    /// (RoCo serves rectangles *only* aligned).
    pub aligned_rectangles: bool,
    /// Fraction of accesses that are reads, in [0, 1].
    pub read_fraction: f64,
    /// Minimum memory capacity the working set needs, KB.
    pub min_capacity_kb: usize,
}

impl WorkloadTrace {
    /// Row-major streaming (e.g. STREAM, dense mat-vec row walks).
    pub fn row_streaming() -> Self {
        Self {
            pattern_mix: vec![(AccessPattern::Row, 1.0)],
            aligned_rectangles: false,
            read_fraction: 0.67,
            min_capacity_kb: 512,
        }
    }

    /// Column-major streaming (transposed operand walks).
    pub fn column_streaming() -> Self {
        Self {
            pattern_mix: vec![(AccessPattern::Column, 1.0)],
            aligned_rectangles: false,
            read_fraction: 0.67,
            min_capacity_kb: 512,
        }
    }

    /// Sliding-window 2D tiles at arbitrary offsets (stencils, convolution).
    pub fn unaligned_tiles() -> Self {
        Self {
            pattern_mix: vec![(AccessPattern::Rectangle, 1.0)],
            aligned_rectangles: false,
            read_fraction: 0.8,
            min_capacity_kb: 512,
        }
    }

    /// In-place transposition: rectangles read, transposed rectangles
    /// written (or vice versa).
    pub fn transpose() -> Self {
        Self {
            pattern_mix: vec![
                (AccessPattern::Rectangle, 0.5),
                (AccessPattern::TransposedRectangle, 0.5),
            ],
            aligned_rectangles: false,
            read_fraction: 0.5,
            min_capacity_kb: 512,
        }
    }

    /// Row streams mixed with unaligned tile reuse (blocked row-major
    /// kernels) — the classic ReRo workload.
    pub fn row_streaming_with_tiles() -> Self {
        Self {
            pattern_mix: vec![(AccessPattern::Row, 0.6), (AccessPattern::Rectangle, 0.4)],
            aligned_rectangles: false,
            read_fraction: 0.67,
            min_capacity_kb: 512,
        }
    }
}

/// Average lanes-per-access the candidate sustains on the trace: patterns
/// the scheme serves conflict-free run at full width; anything else falls
/// back to one element per cycle.
fn effective_lanes(p: &EvalPoint, trace: &WorkloadTrace) -> f64 {
    let cfg = &p.synth.config;
    let mut weight = 0.0;
    let mut lanes = 0.0;
    for &(pattern, w) in &trace.pattern_mix {
        let conflict_free = cfg.scheme.supports(pattern, cfg.p, cfg.q)
            && (!cfg.scheme.requires_alignment(pattern) || trace.aligned_rectangles);
        lanes += w * if conflict_free {
            cfg.lanes() as f64
        } else {
            1.0
        };
        weight += w;
    }
    if weight == 0.0 {
        return 0.0;
    }
    lanes / weight
}

/// Score: achieved elements per second on the trace. Reads fan out over the
/// read ports; writes have one port. The measured pass efficiency folds in
/// fill/drain overhead.
fn score(p: &EvalPoint, trace: &WorkloadTrace) -> Option<f64> {
    if !p.feasible() || p.size_kb < trace.min_capacity_kb {
        return None;
    }
    let sim = p.sim.as_ref()?;
    let eff_lanes = effective_lanes(p, trace);
    let ports = trace.read_fraction * p.read_ports as f64 + (1.0 - trace.read_fraction);
    Some(p.synth.fmax_mhz * eff_lanes * ports * sim.efficiency)
}

/// Pick the best configuration for `trace` from an existing sweep.
pub fn recommend_from(result: &SweepResult, trace: &WorkloadTrace) -> Option<PolyMemConfig> {
    let mut best: Option<(f64, &EvalPoint)> = None;
    for p in &result.points {
        let Some(s) = score(p, trace) else { continue };
        let better = match &best {
            None => true,
            Some((bs, bp)) => {
                s > *bs
                    || (s == *bs && p.synth.resources.bram_blocks < bp.synth.resources.bram_blocks)
            }
        };
        if better {
            best = Some((s, p));
        }
    }
    best.map(|(_, p)| p.synth.config)
}

fn cached_quick_sweep() -> &'static SweepResult {
    static SWEEP: OnceLock<SweepResult> = OnceLock::new();
    SWEEP.get_or_init(|| sweep(&SweepConfig::quick(), &TelemetryRegistry::new()))
}

/// Pick the best configuration for `trace`, running (and caching) the quick
/// sweep on first use.
pub fn recommend(trace: &WorkloadTrace) -> Option<PolyMemConfig> {
    recommend_from(cached_quick_sweep(), trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymem::AccessScheme;

    #[test]
    fn row_streaming_picks_a_row_capable_scheme() {
        let cfg = recommend(&WorkloadTrace::row_streaming()).unwrap();
        // "ReRo-class": the winner must serve rows conflict-free. Both ReRo
        // and RoCo qualify; RoCo's shorter critical path makes it the
        // deterministic winner.
        assert!(
            cfg.scheme.supports(AccessPattern::Row, cfg.p, cfg.q),
            "{cfg:?}"
        );
        assert_eq!(cfg.scheme, AccessScheme::RoCo);
    }

    #[test]
    fn min_capacity_is_respected() {
        let mut trace = WorkloadTrace::row_streaming();
        trace.min_capacity_kb = 2048;
        let cfg = recommend(&trace).unwrap();
        assert!(cfg.capacity_bytes() >= 2048 * 1024, "{cfg:?}");
    }

    #[test]
    fn effective_lanes_penalizes_unsupported_patterns() {
        let r = cached_quick_sweep();
        let reo = r
            .feasible()
            .find(|p| p.scheme == AccessScheme::ReO && p.size_kb == 512)
            .unwrap();
        let trace = WorkloadTrace::row_streaming();
        // ReO has no row pattern: every access serializes.
        assert_eq!(effective_lanes(reo, &trace), 1.0);
    }
}
