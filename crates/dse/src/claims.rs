//! Machine-checked trend claims: the paper's qualitative DSE conclusions,
//! re-derived from the sweep every run.
//!
//! Each claim is evaluated against the actual sweep output and lands in the
//! report as `holds: true/false` with deterministic supporting detail. CI
//! runs the claim set on the quick grid (and the test suite on the full
//! grid), so a model change that flips a paper conclusion fails loudly
//! instead of silently rewriting the artifact.

use crate::engine::{EvalPoint, SweepResult};
use polymem::AccessScheme;
use std::collections::BTreeMap;

/// One evaluated trend claim.
#[derive(Debug, Clone, PartialEq)]
pub struct Claim {
    /// Stable machine-readable ID.
    pub id: &'static str,
    /// What the claim asserts.
    pub description: &'static str,
    /// Whether the sweep supports it.
    pub holds: bool,
    /// Deterministic supporting evidence (or the counterexample).
    pub details: String,
}

impl Claim {
    fn new(id: &'static str, description: &'static str, holds: bool, details: String) -> Self {
        Self {
            id,
            description,
            holds,
            details,
        }
    }
}

/// Measured aggregate read bandwidth, or negative infinity for unsimulated
/// points so they never win a max.
fn read_gibps(p: &EvalPoint) -> f64 {
    p.measured_read_gibps().unwrap_or(f64::NEG_INFINITY)
}

/// Measured one-port (write-path) bandwidth.
fn copy_gibps(p: &EvalPoint) -> f64 {
    p.sim
        .as_ref()
        .map(|s| s.copy_gibps)
        .unwrap_or(f64::NEG_INFINITY)
}

/// Feasible points grouped by (size_kb, lanes, read_ports) cell, grid order
/// within each group. BTreeMap keys make iteration order deterministic.
fn cells(result: &SweepResult) -> BTreeMap<(usize, usize, usize), Vec<&EvalPoint>> {
    let mut m: BTreeMap<(usize, usize, usize), Vec<&EvalPoint>> = BTreeMap::new();
    for p in result.feasible() {
        m.entry((p.size_kb, p.lanes, p.read_ports))
            .or_default()
            .push(p);
    }
    m
}

fn fmt_cell(k: (usize, usize, usize)) -> String {
    format!("{}KB/{}L/{}P", k.0, k.1, k.2)
}

/// Evaluate every claim against `result`.
pub fn evaluate(result: &SweepResult) -> Vec<Claim> {
    let mut claims = Vec::new();
    let cells = cells(result);

    // -- simulation coverage -------------------------------------------------
    {
        let unsimulated: Vec<String> = result
            .feasible()
            .filter(|p| p.sim.is_none())
            .map(|p| {
                format!(
                    "{}KB/{}L/{}P/{}",
                    p.size_kb, p.lanes, p.read_ports, p.scheme
                )
            })
            .collect();
        let min_eff = result
            .feasible()
            .filter_map(|p| p.sim.as_ref())
            .map(|s| s.efficiency)
            .fold(f64::INFINITY, f64::min);
        let holds = unsimulated.is_empty() && min_eff >= 0.7;
        claims.push(Claim::new(
            "simulation-coverage",
            "every feasible point ran through the event-driven simulator with pass efficiency >= 0.7",
            holds,
            if unsimulated.is_empty() {
                format!("minimum pass efficiency {min_eff:.3}")
            } else {
                format!("unsimulated: {}", unsimulated.join(", "))
            },
        ));
    }

    // -- which scheme wins: bandwidth ---------------------------------------
    {
        let mut losers = Vec::new();
        for (k, pts) in &cells {
            let winner = pts
                .iter()
                .max_by(|a, b| read_gibps(a).total_cmp(&read_gibps(b)))
                .unwrap();
            if winner.scheme != AccessScheme::RoCo {
                losers.push(format!("{} -> {}", fmt_cell(*k), winner.scheme));
            }
        }
        claims.push(Claim::new(
            "scheme-winner-bandwidth",
            "RoCo achieves the highest measured read bandwidth in every feasible cell (its combined row+column skew has the cheapest shuffle critical path)",
            losers.is_empty(),
            if losers.is_empty() {
                format!("RoCo wins all {} feasible cells", cells.len())
            } else {
                format!("cells lost: {}", losers.join(", "))
            },
        ));
    }

    // -- which scheme wins: area ---------------------------------------------
    {
        let mut losers = Vec::new();
        for (k, pts) in &cells {
            let winner = pts
                .iter()
                .min_by(|a, b| {
                    a.synth
                        .resources
                        .slices
                        .total_cmp(&b.synth.resources.slices)
                })
                .unwrap();
            if winner.scheme != AccessScheme::ReO {
                losers.push(format!("{} -> {}", fmt_cell(*k), winner.scheme));
            }
        }
        claims.push(Claim::new(
            "scheme-winner-area",
            "ReO is the cheapest scheme in logic in every feasible cell (rectangle-only MAF needs the least shuffle/AGU logic)",
            losers.is_empty(),
            if losers.is_empty() {
                format!("ReO cheapest in all {} feasible cells", cells.len())
            } else {
                format!("cells lost: {}", losers.join(", "))
            },
        ));
    }

    // -- capacity / bandwidth trade-off --------------------------------------
    {
        // Group feasible simulated points by (lanes, ports, scheme); along
        // each group, bandwidth must strictly fall as capacity grows.
        let mut groups: BTreeMap<(usize, usize, AccessScheme), Vec<&EvalPoint>> = BTreeMap::new();
        for p in result.feasible() {
            groups
                .entry((p.lanes, p.read_ports, p.scheme))
                .or_default()
                .push(p);
        }
        let mut violations = Vec::new();
        let mut series = 0usize;
        for (g, mut pts) in groups {
            pts.sort_by_key(|p| p.size_kb);
            if pts.len() < 2 {
                continue;
            }
            series += 1;
            for w in pts.windows(2) {
                if read_gibps(w[1]) >= read_gibps(w[0]) {
                    violations.push(format!(
                        "{}L/{}P/{}: {}KB -> {}KB",
                        g.0, g.1, g.2, w[0].size_kb, w[1].size_kb
                    ));
                }
            }
        }
        claims.push(Claim::new(
            "capacity-bandwidth-tradeoff",
            "at fixed lanes/ports/scheme, growing the capacity strictly reduces measured bandwidth (deeper banks, longer routes, lower Fmax)",
            violations.is_empty() && series > 0,
            if violations.is_empty() {
                format!("strictly decreasing along all {series} capacity series")
            } else {
                format!("violated: {}", violations.join(", "))
            },
        ));
    }

    // -- read-port diminishing returns ---------------------------------------
    {
        // The anchor series: 512 KB, 8 lanes, RoCo, ports 1/2/4 (present in
        // both the quick and the full grid).
        let bw = |ports: usize| {
            result
                .feasible()
                .find(|p| {
                    p.size_kb == 512
                        && p.lanes == 8
                        && p.read_ports == ports
                        && p.scheme == AccessScheme::RoCo
                })
                .map(read_gibps)
        };
        let (holds, details) = match (bw(1), bw(2), bw(4)) {
            (Some(b1), Some(b2), Some(b4)) => {
                let g12 = b2 / b1;
                let g24 = b4 / b2;
                (
                    g12 > 1.4 && g24 < g12,
                    format!(
                        "512KB/8L/RoCo: 1P {b1:.2} GiB/s, 2P {b2:.2} GiB/s, 4P {b4:.2} GiB/s; gain 1->2 {g12:.3}x, 2->4 {g24:.3}x"
                    ),
                )
            }
            _ => (false, "anchor series 512KB/8L/RoCo incomplete".to_string()),
        };
        claims.push(Claim::new(
            "port-diminishing-returns",
            "read ports scale well 1->2 and sub-linearly beyond (port crossbars erode Fmax as BRAM fills)",
            holds,
            details,
        ));
    }

    // -- lane/port crossover --------------------------------------------------
    {
        // Same lanes*ports product, two geometries: 16L/2P beats 8L/4P on
        // every axis wherever both fit — wider-but-shallower wins because
        // port replication multiplies BRAM while lanes do not.
        let find = |size: usize, lanes: usize, ports: usize| {
            result.feasible().find(|p| {
                p.size_kb == size
                    && p.lanes == lanes
                    && p.read_ports == ports
                    && p.scheme == AccessScheme::RoCo
            })
        };
        let mut compared = Vec::new();
        let mut violations = Vec::new();
        for &size in &result.grid.sizes_kb {
            if let (Some(wide), Some(deep)) = (find(size, 16, 2), find(size, 8, 4)) {
                compared.push(size);
                let dominates = read_gibps(wide) > read_gibps(deep)
                    && wide.synth.resources.bram_blocks < deep.synth.resources.bram_blocks
                    && wide.synth.fmax_mhz > deep.synth.fmax_mhz;
                if !dominates {
                    violations.push(format!("{size}KB"));
                }
            }
        }
        claims.push(Claim::new(
            "lane-port-crossover",
            "at equal lanes*ports, 16 lanes x 2 ports dominates 8 lanes x 4 ports (bandwidth, BRAM, Fmax) at every capacity where both are feasible",
            !compared.is_empty() && violations.is_empty(),
            if compared.is_empty() {
                "no capacity has both geometries feasible".to_string()
            } else if violations.is_empty() {
                format!(
                    "dominates at {}",
                    compared
                        .iter()
                        .map(|s| format!("{s}KB"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            } else {
                format!("not dominant at {}", violations.join(", "))
            },
        ));
    }

    // -- global peaks ----------------------------------------------------------
    {
        let peak = result
            .feasible()
            .max_by(|a, b| read_gibps(a).total_cmp(&read_gibps(b)));
        let (holds, details) = match peak {
            Some(p) => (
                (p.size_kb, p.lanes, p.read_ports, p.scheme) == (512, 16, 2, AccessScheme::RoCo),
                format!(
                    "peak {:.2} GiB/s at {}KB/{}L/{}P/{}",
                    read_gibps(p),
                    p.size_kb,
                    p.lanes,
                    p.read_ports,
                    p.scheme
                ),
            ),
            None => (false, "no feasible points".to_string()),
        };
        claims.push(Claim::new(
            "peak-read-point",
            "the measured read-bandwidth peak is the smallest memory at 16 lanes x 2 ports under RoCo",
            holds,
            details,
        ));

        let peak_w = result
            .feasible()
            .max_by(|a, b| copy_gibps(a).total_cmp(&copy_gibps(b)));
        let (holds, details) = match peak_w {
            Some(p) => (
                (p.size_kb, p.lanes, p.read_ports, p.scheme) == (512, 16, 1, AccessScheme::RoCo),
                format!(
                    "peak {:.2} GiB/s at {}KB/{}L/{}P/{}",
                    copy_gibps(p),
                    p.size_kb,
                    p.lanes,
                    p.read_ports,
                    p.scheme
                ),
            ),
            None => (false, "no feasible points".to_string()),
        };
        claims.push(Claim::new(
            "peak-write-point",
            "the measured single-port (write-path) peak is the smallest 16-lane memory with one read port (extra ports only cost Fmax on the write path)",
            holds,
            details,
        ));
    }

    // -- capacity headline ------------------------------------------------------
    {
        let four_mb: Vec<&EvalPoint> = result.feasible().filter(|p| p.size_kb == 4096).collect();
        claims.push(Claim::new(
            "four-mb-instantiable",
            "a 4 MB PolyMem is instantiable on the Vectis (the paper's headline capacity)",
            !four_mb.is_empty(),
            format!("{} feasible 4096 KB points", four_mb.len()),
        ));
    }

    // -- 32-lane arm -------------------------------------------------------------
    {
        let l32: Vec<&EvalPoint> = result.points.iter().filter(|p| p.lanes == 32).collect();
        let l32_feasible = l32.iter().filter(|p| p.feasible()).count();
        claims.push(Claim::new(
            "thirty-two-lane-routability-wall",
            "the 32-lane arm is explored but nothing in it routes on the Vectis (crossbar wiring grows cubically with lane count)",
            !l32.is_empty() && l32_feasible == 0,
            format!("{} points explored, {} feasible", l32.len(), l32_feasible),
        ));
    }

    claims
}

/// Convenience: the IDs of claims that do not hold.
pub fn failing(claims: &[Claim]) -> Vec<&'static str> {
    claims.iter().filter(|c| !c.holds).map(|c| c.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{sweep, SweepConfig};
    use polymem::telemetry::TelemetryRegistry;

    #[test]
    fn all_claims_hold_on_quick_grid() {
        let r = sweep(&SweepConfig::quick(), &TelemetryRegistry::new());
        let claims = evaluate(&r);
        assert_eq!(claims.len(), 10);
        let bad: Vec<_> = claims.iter().filter(|c| !c.holds).collect();
        assert!(bad.is_empty(), "failing claims: {bad:#?}");
    }

    #[test]
    fn claim_ids_are_unique_and_stable() {
        let r = sweep(&SweepConfig::quick(), &TelemetryRegistry::new());
        let claims = evaluate(&r);
        let mut ids: Vec<_> = claims.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), claims.len(), "duplicate claim IDs");
        assert!(failing(&claims).is_empty());
    }
}
