//! Pareto-front extraction over the three axes of the paper's trade-off:
//! measured read bandwidth (maximize), BRAM blocks (minimize), Fmax
//! (maximize).
//!
//! Only feasible, simulated points compete. The front preserves grid order,
//! so its JSON rendering is deterministic for free.

use crate::engine::EvalPoint;

/// The three objective values of one candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Measured aggregate read bandwidth, GiB/s (maximize).
    pub read_gibps: f64,
    /// BRAM36 blocks (minimize).
    pub bram_blocks: f64,
    /// Achieved clock, MHz (maximize).
    pub fmax_mhz: f64,
}

/// The objectives of a point, if it competes (feasible and simulated).
pub fn objectives(p: &EvalPoint) -> Option<Objectives> {
    let sim = p.sim.as_ref()?;
    if !p.feasible() {
        return None;
    }
    Some(Objectives {
        read_gibps: sim.read_gibps,
        bram_blocks: p.synth.resources.bram_blocks,
        fmax_mhz: p.synth.fmax_mhz,
    })
}

/// Whether `a` dominates `b`: at least as good on every axis, strictly
/// better on at least one.
pub fn dominates(a: &Objectives, b: &Objectives) -> bool {
    let ge =
        a.read_gibps >= b.read_gibps && a.bram_blocks <= b.bram_blocks && a.fmax_mhz >= b.fmax_mhz;
    let gt =
        a.read_gibps > b.read_gibps || a.bram_blocks < b.bram_blocks || a.fmax_mhz > b.fmax_mhz;
    ge && gt
}

/// Indices of the non-dominated entries of a raw objective list, in input
/// order. O(n²) — the full grid is 240 points; exhaustive comparison beats
/// cleverness for auditability.
pub fn front_of(objs: &[Objectives]) -> Vec<usize> {
    objs.iter()
        .enumerate()
        .filter(|(_, o)| !objs.iter().any(|other| dominates(other, o)))
        .map(|(i, _)| i)
        .collect()
}

/// Indices (into `points`, grid order) of the non-dominated feasible
/// simulated points.
pub fn front(points: &[EvalPoint]) -> Vec<usize> {
    let cands: Vec<(usize, Objectives)> = points
        .iter()
        .enumerate()
        .filter_map(|(i, p)| objectives(p).map(|o| (i, o)))
        .collect();
    let objs: Vec<Objectives> = cands.iter().map(|(_, o)| *o).collect();
    front_of(&objs).into_iter().map(|k| cands[k].0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(r: f64, b: f64, f: f64) -> Objectives {
        Objectives {
            read_gibps: r,
            bram_blocks: b,
            fmax_mhz: f,
        }
    }

    #[test]
    fn dominance_is_strict() {
        let a = obj(10.0, 100.0, 150.0);
        assert!(!dominates(&a, &a), "no self-domination");
        assert!(dominates(&obj(11.0, 100.0, 150.0), &a));
        assert!(dominates(&obj(10.0, 90.0, 150.0), &a));
        assert!(dominates(&obj(10.0, 100.0, 151.0), &a));
        // Trade-offs don't dominate.
        assert!(!dominates(&obj(11.0, 110.0, 150.0), &a));
        assert!(!dominates(&a, &obj(11.0, 110.0, 150.0)));
    }

    #[test]
    fn front_on_quick_sweep_is_nonempty_and_nondominated() {
        let r = crate::engine::sweep(
            &crate::engine::SweepConfig::quick(),
            &polymem::telemetry::TelemetryRegistry::new(),
        );
        let f = front(&r.points);
        assert!(!f.is_empty());
        for &i in &f {
            let oi = objectives(&r.points[i]).unwrap();
            for (j, p) in r.points.iter().enumerate() {
                if let Some(oj) = objectives(p) {
                    assert!(!dominates(&oj, &oi), "front point {i} dominated by {j}");
                }
            }
        }
        // Completeness: every feasible point off the front is dominated by
        // someone.
        for (j, p) in r.points.iter().enumerate() {
            if let Some(oj) = objectives(p) {
                if !f.contains(&j) {
                    assert!(
                        r.points
                            .iter()
                            .filter_map(objectives)
                            .any(|o| dominates(&o, &oj)),
                        "non-front point {j} is non-dominated"
                    );
                }
            }
        }
    }
}
