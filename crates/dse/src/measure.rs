//! The measured axis: run a configuration through the event-driven
//! simulator and convert cycles to achieved bandwidth at the modeled Fmax.
//!
//! The static synthesis model gives *peak* bandwidth (`lanes × 8 B × Fmax ×
//! ports`): every cycle streams a full-width chunk. The simulator measures
//! what a real pass achieves, including pipeline fill (the paper's 14-cycle
//! read latency) and handshake overhead. The ratio is the pass
//! [`SimMeasure::efficiency`]; measured bandwidth is peak × efficiency,
//! reported in GiB/s.

use dfe_sim::sched::SchedulerStats;
use fpga_model::SynthesisReport;
use stream_bench::probe_burst_copy;

/// What one event-driven simulation probe measured for a feasible point.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMeasure {
    /// Cycles the STREAM-Copy pass took.
    pub cycles: u64,
    /// Ideal cycles (one chunk per cycle, zero latency).
    pub ideal_cycles: u64,
    /// `ideal_cycles / cycles`, in (0, 1].
    pub efficiency: f64,
    /// Measured one-port copy bandwidth at the modeled Fmax, GiB/s.
    pub copy_gibps: f64,
    /// Measured aggregate read bandwidth over all read ports, GiB/s.
    pub read_gibps: f64,
    /// What the event-driven scheduler did during the probe.
    pub sched: SchedulerStats,
}

/// Bytes per GiB.
const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

impl SimMeasure {
    /// Probe `report.config` with a `chunks`-chunk burst pass. Returns
    /// `None` if the configuration cannot host the probe layout (does not
    /// happen on the DSE grids — the claims gate asserts so).
    pub fn probe(report: &SynthesisReport, chunks: usize) -> Option<SimMeasure> {
        let cfg = &report.config;
        let r = probe_burst_copy(cfg.p, cfg.q, cfg.scheme, cfg.read_ports, chunks).ok()?;
        let efficiency = r.efficiency();
        // One chunk = lanes × element_bytes; the pass moves `chunks` of them
        // in `cycles` cycles at fmax MHz.
        let bytes = (chunks * cfg.lanes() * cfg.element_bytes) as f64;
        let seconds = r.cycles as f64 / (report.fmax_mhz * 1e6);
        let copy_gibps = bytes / seconds / GIB;
        let read_gibps = copy_gibps * cfg.read_ports as f64;
        Some(SimMeasure {
            cycles: r.cycles,
            ideal_cycles: r.ideal_cycles,
            efficiency,
            copy_gibps,
            read_gibps,
            sched: r.sched,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_model::synthesize_vectis;
    use polymem::{AccessScheme, PolyMemConfig};

    fn report(scheme: AccessScheme, ports: usize) -> SynthesisReport {
        let cfg = PolyMemConfig::from_capacity(512 * 1024, 2, 4, scheme, ports).unwrap();
        synthesize_vectis(&cfg)
    }

    #[test]
    fn measured_tracks_static_peak_via_efficiency() {
        let r = report(AccessScheme::RoCo, 2);
        let m = SimMeasure::probe(&r, 256).unwrap();
        // Peak static read bandwidth in GiB/s (MB here = 1e6 B).
        let peak_gibps = r.read_bandwidth_mbps * 1e6 / GIB;
        let expect = peak_gibps * m.efficiency;
        assert!((m.read_gibps - expect).abs() < 1e-9, "{m:?}");
        assert!(m.efficiency > 0.9, "256-chunk run amortizes fill: {m:?}");
        assert!(m.read_gibps < peak_gibps);
    }

    #[test]
    fn read_scales_with_ports() {
        let m1 = SimMeasure::probe(&report(AccessScheme::ReRo, 1), 64).unwrap();
        let m4 = SimMeasure::probe(&report(AccessScheme::ReRo, 4), 64).unwrap();
        // Same probe length; port count multiplies aggregate read bandwidth
        // but port pressure lowers Fmax, so the gain is sub-linear.
        let gain = m4.read_gibps / m1.read_gibps;
        assert!(gain > 2.0 && gain < 4.0, "gain {gain}");
    }

    #[test]
    fn probe_works_for_every_scheme() {
        for scheme in AccessScheme::ALL {
            assert!(
                SimMeasure::probe(&report(scheme, 2), 64).is_some(),
                "{scheme:?}"
            );
        }
    }
}
