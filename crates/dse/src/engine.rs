//! The parallel sweep: fan the grid over scoped worker threads, evaluate
//! every point on two axes, and reassemble results in grid order.
//!
//! # Determinism
//!
//! The sweep is byte-deterministic regardless of worker count:
//!
//! * workers pull flat grid indices from a shared atomic cursor, so *which*
//!   worker evaluates a point is racy — but every point's evaluation is a
//!   pure function of the point itself (the synthesis model is closed-form;
//!   each simulation probe builds its own isolated design);
//! * results carry their grid index and are written back into an
//!   index-addressed slot vector, so output order is grid order, not
//!   completion order;
//! * aggregate scheduler statistics are `u64` sums, which commute.
//!
//! Worker count therefore changes wall-clock time and nothing else — a
//! property the determinism integration test pins by comparing report bytes
//! across 1, 2, and N workers.

use crate::measure::SimMeasure;
use dfe_sim::sched::SchedulerStats;
use fpga_model::{evaluate_point, DseGrid, DsePoint, FpgaDevice, SkippedPoint};
use polymem::telemetry::TelemetryRegistry;
use polymem::AccessScheme;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One fully-evaluated grid point: the static synthesis axis plus, for
/// feasible designs, the measured simulation axis.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalPoint {
    /// Capacity in KB.
    pub size_kb: usize,
    /// Lane count.
    pub lanes: usize,
    /// Read ports.
    pub read_ports: usize,
    /// Scheme.
    pub scheme: AccessScheme,
    /// Static axis: the analytic synthesis model.
    pub synth: fpga_model::SynthesisReport,
    /// Measured axis: event-driven simulation (feasible points only).
    pub sim: Option<SimMeasure>,
}

impl EvalPoint {
    /// Whether the design fits and routes.
    pub fn feasible(&self) -> bool {
        self.synth.feasible
    }

    /// Measured aggregate read bandwidth in GiB/s, if simulated.
    pub fn measured_read_gibps(&self) -> Option<f64> {
        self.sim.as_ref().map(|s| s.read_gibps)
    }
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// The grid to explore.
    pub grid: DseGrid,
    /// Target device.
    pub device: FpgaDevice,
    /// Worker threads (>= 1).
    pub workers: usize,
    /// Chunks per simulation probe (longer runs amortize fill/drain).
    pub sim_chunks: usize,
}

impl SweepConfig {
    /// The CI grid: reduced but trend-complete (see [`DseGrid::quick`]),
    /// short simulation passes.
    pub fn quick() -> Self {
        Self {
            grid: DseGrid::quick(),
            device: FpgaDevice::VIRTEX6_SX475T,
            workers: default_workers(),
            sim_chunks: 64,
        }
    }

    /// The full grid: Table III plus the 32-lane arm, longer simulation
    /// passes for tighter efficiency numbers.
    pub fn full() -> Self {
        Self {
            grid: DseGrid::extended(),
            device: FpgaDevice::VIRTEX6_SX475T,
            workers: default_workers(),
            sim_chunks: 256,
        }
    }

    /// The same configuration with an explicit worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

/// Worker count matched to the machine.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Everything a sweep produced. `points` and `skipped` are in grid order;
/// `points.len() + skipped.len()` equals the grid's cell count.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The swept grid.
    pub grid: DseGrid,
    /// Chunks per simulation probe.
    pub sim_chunks: usize,
    /// Device name.
    pub device_name: &'static str,
    /// Evaluated points (feasible and infeasible), grid order.
    pub points: Vec<EvalPoint>,
    /// Unevaluable grid cells with reasons, grid order.
    pub skipped: Vec<SkippedPoint>,
    /// Aggregate event-driven scheduler behaviour across all probes.
    pub sched: SchedulerStats,
}

impl SweepResult {
    /// Feasible points, grid order.
    pub fn feasible(&self) -> impl Iterator<Item = &EvalPoint> {
        self.points.iter().filter(|p| p.feasible())
    }
}

/// Flat grid-order cell list. This single enumeration defines "grid order"
/// for the whole crate (workers, report, Pareto front).
fn cells(grid: &DseGrid) -> Vec<(usize, usize, usize, AccessScheme)> {
    let mut v = Vec::with_capacity(grid.len());
    for &size_kb in &grid.sizes_kb {
        for &lanes in &grid.lanes {
            for &read_ports in &grid.read_ports {
                for &scheme in &grid.schemes {
                    v.push((size_kb, lanes, read_ports, scheme));
                }
            }
        }
    }
    v
}

/// Evaluate one cell on both axes. Pure: no shared state, no ambient
/// randomness — the foundation of the sweep's determinism.
fn eval_cell(
    cell: (usize, usize, usize, AccessScheme),
    device: &FpgaDevice,
    sim_chunks: usize,
) -> Result<EvalPoint, SkippedPoint> {
    let (size_kb, lanes, read_ports, scheme) = cell;
    let DsePoint { report, .. } = evaluate_point(size_kb, lanes, read_ports, scheme, device)?;
    let sim = if report.feasible {
        SimMeasure::probe(&report, sim_chunks)
    } else {
        None
    };
    Ok(EvalPoint {
        size_kb,
        lanes,
        read_ports,
        scheme,
        synth: report,
        sim,
    })
}

/// Run the sweep. Progress and per-worker utilization are instrumented
/// through `registry` (pass a throwaway registry if unobserved).
pub fn sweep(cfg: &SweepConfig, registry: &TelemetryRegistry) -> SweepResult {
    let cells = cells(&cfg.grid);
    let workers = cfg.workers.max(1);

    registry
        .gauge("dse_grid_cells", vec![])
        .set(cells.len() as i64);
    let done = registry.counter("dse_points_done", vec![]);
    let cycles_hist = registry.histogram(
        "dse_sim_cycles",
        vec![],
        &[64, 128, 256, 512, 1024, 4096, 16384],
    );

    let cursor = AtomicUsize::new(0);
    // Per-worker result batches, merged by grid index afterwards.
    let batches: Vec<WorkerBatch> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let cursor = &cursor;
                let cells = &cells;
                let device = &cfg.device;
                let sim_chunks = cfg.sim_chunks;
                let done = done.clone();
                let cycles_hist = cycles_hist.clone();
                let worker_points =
                    registry.counter("dse_worker_points_total", vec![("worker", w.to_string())]);
                s.spawn(move || {
                    let mut batch = WorkerBatch::default();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= cells.len() {
                            break;
                        }
                        let r = eval_cell(cells[i], device, sim_chunks);
                        if let Ok(p) = &r {
                            if let Some(m) = &p.sim {
                                batch.sched.merge(&m.sched);
                                cycles_hist.observe(m.cycles);
                            }
                        }
                        done.inc();
                        worker_points.inc();
                        batch.slots.push((i, r));
                    }
                    batch
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Reassemble in grid order: index-addressed slots, then a stable walk.
    let mut slots: Vec<Option<Result<EvalPoint, SkippedPoint>>> = vec![None; cells.len()];
    let mut sched = SchedulerStats::default();
    for batch in batches {
        sched.merge(&batch.sched);
        for (i, r) in batch.slots {
            debug_assert!(slots[i].is_none(), "cell {i} evaluated twice");
            slots[i] = Some(r);
        }
    }
    let mut points = Vec::with_capacity(cells.len());
    let mut skipped = Vec::new();
    for slot in slots {
        match slot.expect("cell never evaluated") {
            Ok(p) => points.push(p),
            Err(s) => skipped.push(s),
        }
    }
    assert_eq!(points.len() + skipped.len(), cells.len());

    SweepResult {
        grid: cfg.grid.clone(),
        sim_chunks: cfg.sim_chunks,
        device_name: cfg.device.name,
        points,
        skipped,
        sched,
    }
}

#[derive(Default)]
struct WorkerBatch {
    slots: Vec<(usize, Result<EvalPoint, SkippedPoint>)>,
    sched: SchedulerStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_covers_grid() {
        let cfg = SweepConfig::quick().with_workers(2);
        let r = sweep(&cfg, &TelemetryRegistry::new());
        assert_eq!(r.points.len() + r.skipped.len(), cfg.grid.len());
        assert!(r.skipped.is_empty(), "quick grid has no unplannable cells");
        // Every feasible point carries a simulation measurement.
        for p in r.feasible() {
            let m = p.sim.as_ref().expect("feasible point not simulated");
            assert!(m.cycles >= m.ideal_cycles);
            assert!(m.read_gibps > 0.0);
        }
        // Infeasible points are not simulated.
        assert!(r
            .points
            .iter()
            .filter(|p| !p.feasible())
            .all(|p| p.sim.is_none()));
    }

    #[test]
    fn sweep_aggregates_scheduler_stats() {
        let r = sweep(&SweepConfig::quick(), &TelemetryRegistry::new());
        let total: u64 = r
            .feasible()
            .map(|p| p.sim.as_ref().unwrap().sched.total_cycles())
            .sum();
        assert_eq!(r.sched.total_cycles(), total);
        assert!(r.sched.total_cycles() > 0);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let base = sweep(
            &SweepConfig::quick().with_workers(1),
            &TelemetryRegistry::new(),
        );
        let par = sweep(
            &SweepConfig::quick().with_workers(3),
            &TelemetryRegistry::new(),
        );
        assert_eq!(base.points, par.points);
        assert_eq!(base.skipped, par.skipped);
        assert_eq!(base.sched, par.sched);
    }

    #[test]
    fn telemetry_counts_points() {
        let reg = TelemetryRegistry::new();
        let cfg = SweepConfig::quick().with_workers(2);
        let r = sweep(&cfg, &reg);
        let snap = reg.snapshot();
        let done = snap
            .metrics
            .iter()
            .find(|m| m.name == "dse_points_done")
            .expect("dse_points_done registered");
        let total = (r.points.len() + r.skipped.len()) as u64;
        assert_eq!(done.value, polymem::telemetry::SampleValue::Counter(total));
        // One utilization counter per worker, summing to the same total.
        let per_worker: u64 = snap
            .metrics
            .iter()
            .filter(|m| m.name == "dse_worker_points_total")
            .map(|m| match m.value {
                polymem::telemetry::SampleValue::Counter(v) => v,
                _ => 0,
            })
            .sum();
        assert_eq!(per_worker, total);
    }
}
