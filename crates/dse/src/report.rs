//! `DSE_report.json`: the committed, byte-deterministic sweep artifact.
//!
//! Every float is rendered with a fixed decimal count ([`Json::num`]), every
//! collection is emitted in grid order (or claim-definition order), and
//! nothing host-dependent (worker count, timestamps, hostnames) enters the
//! document — the same contract `VERIFY_report.json` follows, enforced in CI
//! by `git diff --exit-code DSE_report.json` after a fresh `--quick` run.

use crate::claims::Claim;
use crate::engine::{EvalPoint, SweepResult};
use crate::json::Json;
use crate::pareto;

/// Report schema identifier (bump on layout changes).
pub const SCHEMA: &str = "polymem-dse-report/v1";

fn point_json(p: &EvalPoint) -> Json {
    let mut fields = vec![
        ("size_kb".into(), Json::UInt(p.size_kb as u64)),
        ("lanes".into(), Json::UInt(p.lanes as u64)),
        ("read_ports".into(), Json::UInt(p.read_ports as u64)),
        ("scheme".into(), Json::s(p.scheme.name())),
        ("feasible".into(), Json::Bool(p.feasible())),
        ("fmax_mhz".into(), Json::num(p.synth.fmax_mhz, 2)),
        (
            "bram_blocks".into(),
            Json::num(p.synth.resources.bram_blocks, 1),
        ),
        (
            "logic_pct".into(),
            Json::num(p.synth.utilization.logic_pct, 2),
        ),
        (
            "static_read_gbps".into(),
            Json::num(p.synth.read_bandwidth_gbps(), 3),
        ),
        (
            "static_write_gbps".into(),
            Json::num(p.synth.write_bandwidth_gbps(), 3),
        ),
    ];
    match &p.sim {
        Some(m) => {
            fields.push((
                "sim".into(),
                Json::Obj(vec![
                    ("cycles".into(), Json::UInt(m.cycles)),
                    ("ideal_cycles".into(), Json::UInt(m.ideal_cycles)),
                    ("efficiency".into(), Json::num(m.efficiency, 4)),
                    ("copy_gibps".into(), Json::num(m.copy_gibps, 3)),
                    ("read_gibps".into(), Json::num(m.read_gibps, 3)),
                ]),
            ));
        }
        None => fields.push(("sim".into(), Json::Null)),
    }
    Json::Obj(fields)
}

fn front_entry(p: &EvalPoint) -> Json {
    let o = pareto::objectives(p).expect("front point has objectives");
    Json::Obj(vec![
        ("size_kb".into(), Json::UInt(p.size_kb as u64)),
        ("lanes".into(), Json::UInt(p.lanes as u64)),
        ("read_ports".into(), Json::UInt(p.read_ports as u64)),
        ("scheme".into(), Json::s(p.scheme.name())),
        ("read_gibps".into(), Json::num(o.read_gibps, 3)),
        ("bram_blocks".into(), Json::num(o.bram_blocks, 1)),
        ("fmax_mhz".into(), Json::num(o.fmax_mhz, 2)),
    ])
}

/// Render the full report text (with trailing newline).
pub fn render(result: &SweepResult, claims: &[Claim]) -> String {
    let front = pareto::front(&result.points);
    let feasible = result.feasible().count();

    let grid = Json::Obj(vec![
        (
            "sizes_kb".into(),
            Json::Arr(
                result
                    .grid
                    .sizes_kb
                    .iter()
                    .map(|&s| Json::UInt(s as u64))
                    .collect(),
            ),
        ),
        (
            "lanes".into(),
            Json::Arr(
                result
                    .grid
                    .lanes
                    .iter()
                    .map(|&l| Json::UInt(l as u64))
                    .collect(),
            ),
        ),
        (
            "read_ports".into(),
            Json::Arr(
                result
                    .grid
                    .read_ports
                    .iter()
                    .map(|&p| Json::UInt(p as u64))
                    .collect(),
            ),
        ),
        (
            "schemes".into(),
            Json::Arr(
                result
                    .grid
                    .schemes
                    .iter()
                    .map(|s| Json::s(s.name()))
                    .collect(),
            ),
        ),
        ("cells".into(), Json::UInt(result.grid.len() as u64)),
    ]);

    let skipped = Json::Arr(
        result
            .skipped
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("size_kb".into(), Json::UInt(s.size_kb as u64)),
                    ("lanes".into(), Json::UInt(s.lanes as u64)),
                    ("read_ports".into(), Json::UInt(s.read_ports as u64)),
                    ("scheme".into(), Json::s(s.scheme.name())),
                    ("reason".into(), Json::s(&s.reason)),
                ])
            })
            .collect(),
    );

    let scheduler = Json::Obj(vec![
        (
            "ticked_cycles".into(),
            Json::UInt(result.sched.ticked_cycles),
        ),
        ("jumps".into(), Json::UInt(result.sched.jumps)),
        (
            "skipped_cycles".into(),
            Json::UInt(result.sched.skipped_cycles),
        ),
    ]);

    let claims_json = Json::Arr(
        claims
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("id".into(), Json::s(c.id)),
                    ("description".into(), Json::s(c.description)),
                    ("holds".into(), Json::Bool(c.holds)),
                    ("details".into(), Json::s(&c.details)),
                ])
            })
            .collect(),
    );

    let doc = Json::Obj(vec![
        ("schema".into(), Json::s(SCHEMA)),
        ("device".into(), Json::s(result.device_name)),
        ("grid".into(), grid),
        ("sim_chunks".into(), Json::UInt(result.sim_chunks as u64)),
        (
            "points_evaluated".into(),
            Json::UInt(result.points.len() as u64),
        ),
        ("points_feasible".into(), Json::UInt(feasible as u64)),
        ("points_skipped".into(), skipped),
        ("scheduler".into(), scheduler),
        (
            "pareto_front".into(),
            Json::Arr(
                front
                    .iter()
                    .map(|&i| front_entry(&result.points[i]))
                    .collect(),
            ),
        ),
        ("claims".into(), claims_json),
        (
            "points".into(),
            Json::Arr(result.points.iter().map(point_json).collect()),
        ),
    ]);
    doc.to_pretty()
}

#[cfg(test)]
mod tests {
    use crate::claims;
    use crate::engine::{sweep, SweepConfig};
    use polymem::telemetry::TelemetryRegistry;

    #[test]
    fn report_renders_and_rerenders_identically() {
        let r = sweep(
            &SweepConfig::quick().with_workers(2),
            &TelemetryRegistry::new(),
        );
        let c = claims::evaluate(&r);
        let a = super::render(&r, &c);
        let b = super::render(&r, &c);
        assert_eq!(a, b);
        assert!(a.starts_with("{\n"));
        assert!(a.ends_with("}\n"));
        assert!(a.contains("\"schema\": \"polymem-dse-report/v1\""));
        assert!(a.contains("\"pareto_front\""));
        // No host-dependent fields.
        assert!(!a.contains("worker"));
    }
}
