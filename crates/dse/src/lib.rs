//! # polymem-dse — parallel design-space exploration for MAX-PolyMem
//!
//! The paper's evaluation is a DSE over capacity × lanes × read ports ×
//! scheme (Table III, Figs. 6-8). This crate turns that one-off sweep into
//! an engine:
//!
//! * [`engine`] — fans the grid over `std::thread::scope` workers and
//!   evaluates every point on **two axes**: the analytic synthesis model
//!   (`fpga_model::synthesize` — Fmax, BRAM, logic, feasibility) and a
//!   **measured** pass through the event-driven `dfe_sim` simulator
//!   (`stream_bench::probe_burst_copy` — cycles → GiB/s at the modeled
//!   Fmax). Results are byte-deterministic regardless of worker count;
//! * [`pareto`] — the feasible non-dominated front over measured bandwidth
//!   (max), BRAM blocks (min) and Fmax (max);
//! * [`claims`] — the paper's qualitative conclusions (which scheme wins
//!   where, the lane/port crossover, the 32-lane routability wall),
//!   machine-checked against every sweep;
//! * [`report`] — the committed `DSE_report.json` artifact, drift-gated in
//!   CI exactly like `VERIFY_report.json`;
//! * [`recommend`] — the auto-configurator:
//!   [`recommend::recommend`]`(workload_trace) -> PolyMemConfig` picks
//!   scheme + geometry for a described access mix.
//!
//! The `polymem-dse` binary drives all of it; `--quick` runs the reduced
//! CI grid, the default runs the full Table III grid plus the 32-lane arm.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod claims;
pub mod engine;
pub mod json;
pub mod measure;
pub mod pareto;
pub mod recommend;
pub mod report;

pub use claims::{evaluate as evaluate_claims, Claim};
pub use engine::{default_workers, sweep, EvalPoint, SweepConfig, SweepResult};
pub use measure::SimMeasure;
pub use pareto::{dominates, front, front_of, objectives, Objectives};
pub use recommend::{recommend, recommend_from, WorkloadTrace};
pub use report::render as render_report;
