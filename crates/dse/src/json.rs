//! Deterministic JSON writer for `DSE_report.json`.
//!
//! The workspace's `serde` is an offline marker-trait stub, so the report is
//! emitted through a tiny value tree — the same approach the `verifier`
//! crate uses for `VERIFY_report.json`. One addition matters here: floats
//! enter the tree *pre-formatted* ([`Json::num`]) with a fixed number of
//! decimals, so the committed artifact is byte-identical across runs,
//! worker counts, and float-formatting library changes.

use std::fmt::Write as _;

/// Minimal JSON value tree.
#[derive(Debug, Clone)]
pub enum Json {
    /// Null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// A number pre-rendered to its exact byte representation.
    Num(String),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Ordered object (insertion order is emission order).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn s(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// A float rendered with exactly `decimals` fraction digits. This is the
    /// only way floats enter a report: the fixed precision pins the byte
    /// representation.
    pub fn num(v: f64, decimals: usize) -> Json {
        Json::Num(format!("{v:.decimals$}"))
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => out.push_str(v),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (n, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write(out, indent + 1);
                    if n + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (n, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&pad_in);
                    Json::Str(key.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if n + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_pins_bytes() {
        assert_eq!(Json::num(1.0, 3).to_pretty(), "1.000\n");
        assert_eq!(Json::num(0.15625, 2).to_pretty(), "0.16\n");
    }

    #[test]
    fn escapes_strings() {
        let j = Json::s("a\"b\\c\nd");
        assert_eq!(j.to_pretty(), "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn nested_layout() {
        let j = Json::Obj(vec![
            ("k".into(), Json::Arr(vec![Json::UInt(1), Json::Bool(true)])),
            ("e".into(), Json::Arr(vec![])),
        ]);
        assert_eq!(
            j.to_pretty(),
            "{\n  \"k\": [\n    1,\n    true\n  ],\n  \"e\": []\n}\n"
        );
    }
}
