//! Resource estimation for a MAX-PolyMem configuration.
//!
//! Substitutes for Xilinx ISE synthesis (the paper's toolchain). The model
//! is *structural*: each block of the paper's Fig. 3 contributes a term
//! whose form follows its hardware structure —
//!
//! * **Memory banks**: BRAM36 blocks, `ceil(bank_bytes / 4.5 KB)` per bank,
//!   replicated once per read port (the paper: *"increasing the number of
//!   read ports involved duplicating data in BRAMs"*);
//! * **Crossbar shuffles**: slice cost quadratic-ish in the lane count
//!   (`(lanes/8)^1.7` — the paper observes a *supra-linear* increase when
//!   doubling lanes); the design instantiates `2 + 2*ports` crossbars
//!   (address + write-data on the write path, address + read-data per read
//!   port);
//! * **AGU / MAF**: linear in lanes;
//! * **Maxeler infrastructure** (manager, PCIe, stream FIFOs): a fixed base
//!   plus per-lane / per-port terms.
//!
//! The free constants are calibrated against every utilization number the
//! paper quotes in §IV-C; `calibration` re-checks them in tests.

use crate::device::FpgaDevice;
use polymem::{AccessScheme, PolyMemConfig};
use serde::{Deserialize, Serialize};

/// Per-block resource breakdown (slices).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SliceBreakdown {
    /// Maxeler manager + PCIe + stream infrastructure.
    pub infrastructure: f64,
    /// All crossbar shuffles (address, write-data, per-port read paths).
    pub crossbars: f64,
    /// Per-read-port control (FIFOs, scheduling).
    pub port_control: f64,
    /// BRAM addressing / decoding logic.
    pub bram_glue: f64,
    /// AGU + module assignment function logic.
    pub agu_maf: f64,
}

impl SliceBreakdown {
    /// Total slices.
    pub fn total(&self) -> f64 {
        self.infrastructure + self.crossbars + self.port_control + self.bram_glue + self.agu_maf
    }
}

/// Complete resource estimate for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// BRAM36 blocks required (data + infrastructure).
    pub bram_blocks: f64,
    /// Occupied slices ("logic utilization" numerator, Fig. 6).
    pub slices: f64,
    /// Occupied LUT6s (Fig. 7).
    pub luts: f64,
    /// Occupied flip-flops.
    pub flip_flops: f64,
    /// Per-block slice breakdown.
    pub breakdown: SliceBreakdown,
}

/// Calibrated model constants. All anchors are §IV-C of the paper.
pub mod constants {
    /// Data bytes modelled per BRAM36 (full 36 Kb usable via cascading).
    pub const BRAM_DATA_BYTES: f64 = 4608.0;
    /// Fixed infrastructure BRAMs (Maxeler manager + PCIe FIFOs).
    pub const BRAM_INFRA_BASE: f64 = 15.0;
    /// Infrastructure BRAMs per lane (stream width buffers).
    pub const BRAM_INFRA_PER_LANE: f64 = 2.25;
    /// Infrastructure BRAMs per port (output FIFOs).
    pub const BRAM_INFRA_PER_PORT: f64 = 9.5;
    /// Infrastructure BRAMs per lane*port (port data-path buffers).
    pub const BRAM_INFRA_PER_LANE_PORT: f64 = 1.0625;

    /// Fixed slice cost: manager, PCIe, host interface.
    pub const SLICE_BASE: f64 = 3_247.0;
    /// Slice cost of one 8-lane, 64-bit full crossbar.
    pub const SLICE_XBAR_8: f64 = 1_035.0;
    /// Crossbar growth exponent in lanes (supra-linear, §IV-C).
    pub const XBAR_EXPONENT: f64 = 1.7;
    /// Slices per extra read port (control, FIFOs).
    pub const SLICE_PER_EXTRA_PORT: f64 = 477.0;
    /// Slices of glue logic per BRAM block (addressing, decode).
    pub const SLICE_PER_BRAM: f64 = 2.3;
    /// AGU + MAF slices per lane.
    pub const SLICE_PER_LANE: f64 = 30.0;

    /// LUT packing: LUTs per slice at low congestion...
    pub const LUT_PER_SLICE_BASE: f64 = 2.65;
    /// ...plus this much more per `slices / LUT_PRESSURE_SCALE` of pressure
    /// (packing density drops as the device fills).
    pub const LUT_PRESSURE_COEFF: f64 = 0.45;
    /// Normalisation for the pressure term.
    pub const LUT_PRESSURE_SCALE: f64 = 27_000.0;
    /// Flip-flops per LUT (pipelining ratio; not reported by the paper,
    /// provided for completeness).
    pub const FF_PER_LUT: f64 = 1.1;
}

/// Slight per-scheme area factor: ReO's trivial MAF synthesizes a bit
/// smaller; RoCo's double skew a bit larger on small configs (visible in the
/// paper's 10.58% ReO vs 10.78% ReRo anchor).
pub fn scheme_area_factor(scheme: AccessScheme) -> f64 {
    match scheme {
        AccessScheme::ReO => 0.98,
        AccessScheme::ReRo | AccessScheme::ReCo => 1.0,
        AccessScheme::RoCo => 0.99,
        AccessScheme::ReTr => 1.0,
    }
}

/// Number of full crossbars in the design: address + write-data shuffles on
/// the write path, plus an address and a read-data shuffle per read port.
pub fn crossbar_count(read_ports: usize) -> usize {
    2 + 2 * read_ports
}

/// BRAM36 blocks holding the data of one configuration: per-bank ceiling,
/// replicated per read port.
pub fn data_bram_blocks(cfg: &PolyMemConfig) -> f64 {
    let per_bank = (cfg.bank_bytes() as f64 / constants::BRAM_DATA_BYTES).ceil();
    per_bank * cfg.lanes() as f64 * cfg.read_ports as f64
}

/// Implementation style of the MaxJ design (paper §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignStyle {
    /// Single fused kernel (the paper's final, resource-efficient version).
    Fused,
    /// One kernel per Fig. 3 block, linked by a custom manager. The paper:
    /// *"the modular version consumes twice as many resources, mainly due
    /// to the additional inter-kernel communication infrastructure."*
    Modular,
}

/// Estimate resources for `cfg` built in the given style. `Modular` doubles
/// the logic-side resources (inter-kernel stream infrastructure around every
/// block) and adds per-block stream FIFOs in BRAM; bank data is unaffected.
pub fn estimate_with_style(cfg: &PolyMemConfig, style: DesignStyle) -> ResourceEstimate {
    let base = estimate(cfg);
    match style {
        DesignStyle::Fused => base,
        DesignStyle::Modular => {
            // Seven Fig. 3 blocks become kernels; each inter-kernel edge is a
            // stream with width-matched FIFOs.
            let lanes = cfg.lanes() as f64;
            let extra_bram = 1.5 * lanes * (1.0 + cfg.read_ports as f64);
            let breakdown = SliceBreakdown {
                infrastructure: base.breakdown.infrastructure * 2.2,
                crossbars: base.breakdown.crossbars * 1.6,
                port_control: base.breakdown.port_control * 2.0,
                bram_glue: base.breakdown.bram_glue * 1.6,
                agu_maf: base.breakdown.agu_maf * 2.0,
            };
            let factor = scheme_area_factor(cfg.scheme);
            let slices = breakdown.total() * factor;
            let luts = slices
                * (constants::LUT_PER_SLICE_BASE
                    + constants::LUT_PRESSURE_COEFF * slices / constants::LUT_PRESSURE_SCALE);
            ResourceEstimate {
                bram_blocks: base.bram_blocks + extra_bram,
                slices,
                luts,
                flip_flops: luts * constants::FF_PER_LUT,
                breakdown,
            }
        }
    }
}

/// Estimate all resources for `cfg`. The estimate is deterministic; the
/// paper's run-to-run P&R variance is modelled separately in `timing`.
pub fn estimate(cfg: &PolyMemConfig) -> ResourceEstimate {
    use constants::*;
    let lanes = cfg.lanes() as f64;
    let ports = cfg.read_ports as f64;
    let width_factor = cfg.element_bytes as f64 / 8.0;

    let bram_infra = BRAM_INFRA_BASE
        + BRAM_INFRA_PER_LANE * lanes
        + BRAM_INFRA_PER_PORT * ports
        + BRAM_INFRA_PER_LANE_PORT * lanes * ports;
    // data_bram_blocks already accounts element width via bank_bytes;
    // width_factor applies only to logic that scales with datapath width.
    let bram_blocks = data_bram_blocks(cfg) + bram_infra;

    let xbar_unit = SLICE_XBAR_8 * (lanes / 8.0).powf(XBAR_EXPONENT) * width_factor;
    let factor = scheme_area_factor(cfg.scheme);
    let breakdown = SliceBreakdown {
        infrastructure: SLICE_BASE,
        crossbars: crossbar_count(cfg.read_ports) as f64 * xbar_unit,
        port_control: SLICE_PER_EXTRA_PORT * (ports - 1.0),
        bram_glue: SLICE_PER_BRAM * bram_blocks,
        agu_maf: SLICE_PER_LANE * lanes,
    };
    let slices = breakdown.total() * factor;
    let luts = slices * (LUT_PER_SLICE_BASE + LUT_PRESSURE_COEFF * slices / LUT_PRESSURE_SCALE);
    ResourceEstimate {
        bram_blocks,
        slices,
        luts,
        flip_flops: luts * FF_PER_LUT,
        breakdown,
    }
}

/// Utilization percentages against a device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Utilization {
    /// Fig. 6: slice occupancy, percent.
    pub logic_pct: f64,
    /// Fig. 7: LUT occupancy, percent.
    pub lut_pct: f64,
    /// Fig. 8: BRAM occupancy, percent.
    pub bram_pct: f64,
    /// Flip-flop occupancy, percent.
    pub ff_pct: f64,
}

impl ResourceEstimate {
    /// Percent utilization of `device`.
    pub fn utilization(&self, device: &FpgaDevice) -> Utilization {
        Utilization {
            logic_pct: 100.0 * self.slices / device.slices as f64,
            lut_pct: 100.0 * self.luts / device.luts as f64,
            bram_pct: 100.0 * self.bram_blocks / device.bram36 as f64,
            ff_pct: 100.0 * self.flip_flops / device.flip_flops as f64,
        }
    }

    /// Whether this estimate fits (and can be routed on) the device.
    ///
    /// BRAM is a hard capacity limit. The slice bound (40%) is the
    /// calibrated routability cutoff: PolyMem's full crossbars are wiring-
    /// dominated, and configurations past this point failed to synthesize in
    /// the paper's DSE (this cutoff reproduces exactly the 18 feasible
    /// configurations of Table IV).
    pub fn feasible(&self, device: &FpgaDevice) -> bool {
        let u = self.utilization(device);
        u.bram_pct <= 100.0 && u.logic_pct <= 40.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polymem::AccessScheme;

    fn cfg(kb: usize, lanes: usize, ports: usize, scheme: AccessScheme) -> PolyMemConfig {
        let (p, q) = match lanes {
            8 => (2, 4),
            16 => (2, 8),
            32 => (4, 8),
            other => panic!("unsupported lane count {other}"),
        };
        PolyMemConfig::from_capacity(kb * 1024, p, q, scheme, ports).unwrap()
    }

    const DEV: FpgaDevice = FpgaDevice::VIRTEX6_SX475T;

    #[test]
    fn anchor_logic_512_8_1_rero() {
        // Paper: 10.78% logic for ReRo 512 KB, 8 lanes, 1 port.
        let u = estimate(&cfg(512, 8, 1, AccessScheme::ReRo)).utilization(&DEV);
        assert!((u.logic_pct - 10.78).abs() < 0.5, "got {}", u.logic_pct);
    }

    #[test]
    fn anchor_logic_512_8_4_rero() {
        // Paper: 22.34% for the 4-port variant ("logic utilization doubles").
        let u = estimate(&cfg(512, 8, 4, AccessScheme::ReRo)).utilization(&DEV);
        assert!((u.logic_pct - 22.34).abs() < 1.0, "got {}", u.logic_pct);
    }

    #[test]
    fn anchor_logic_512_16_1_rero() {
        // Paper: 23.73% for 16 lanes (supra-linear vs 10.78% at 8 lanes).
        let u = estimate(&cfg(512, 16, 1, AccessScheme::ReRo)).utilization(&DEV);
        assert!((u.logic_pct - 23.73).abs() < 1.0, "got {}", u.logic_pct);
    }

    #[test]
    fn anchor_logic_reo_slightly_below_rero() {
        let reo = estimate(&cfg(512, 8, 1, AccessScheme::ReO)).utilization(&DEV);
        let rero = estimate(&cfg(512, 8, 1, AccessScheme::ReRo)).utilization(&DEV);
        assert!(reo.logic_pct < rero.logic_pct);
        assert!((reo.logic_pct - 10.58).abs() < 0.5, "got {}", reo.logic_pct);
    }

    #[test]
    fn anchor_bram_percentages() {
        // Paper §IV-C: 16.07% (512/8/1), 19.31% (512/16/1), 29.04% (512/8/2),
        // ~97% (2048/16/2).
        let cases = [
            (512, 8, 1, 16.07),
            (512, 16, 1, 19.31),
            (512, 8, 2, 29.04),
            (2048, 16, 2, 97.0),
        ];
        for (kb, lanes, ports, want) in cases {
            let u = estimate(&cfg(kb, lanes, ports, AccessScheme::ReRo)).utilization(&DEV);
            assert!(
                (u.bram_pct - want).abs() < 1.5,
                "{kb}KB/{lanes}L/{ports}P: got {} want {want}",
                u.bram_pct
            );
        }
    }

    #[test]
    fn bram_independent_of_scheme() {
        for scheme in AccessScheme::ALL {
            let e = estimate(&cfg(1024, 8, 2, scheme));
            let base = estimate(&cfg(1024, 8, 2, AccessScheme::ReO));
            assert_eq!(e.bram_blocks, base.bram_blocks, "{scheme}");
        }
    }

    #[test]
    fn capacity_barely_moves_logic() {
        // Paper: 8 lanes, 1 port: 10.58% (512 KB ReO) .. 13.05% (4096 KB RoCo).
        let small = estimate(&cfg(512, 8, 1, AccessScheme::ReO)).utilization(&DEV);
        let large = estimate(&cfg(4096, 8, 1, AccessScheme::RoCo)).utilization(&DEV);
        assert!(large.logic_pct - small.logic_pct < 3.5);
        assert!(
            (large.logic_pct - 13.05).abs() < 0.7,
            "got {}",
            large.logic_pct
        );
    }

    #[test]
    fn supra_linear_lane_scaling() {
        let l8 = estimate(&cfg(512, 8, 1, AccessScheme::ReRo)).slices;
        let l16 = estimate(&cfg(512, 16, 1, AccessScheme::ReRo)).slices;
        assert!(
            l16 / l8 > 2.0,
            "lane doubling must be supra-linear: {}",
            l16 / l8
        );
    }

    #[test]
    fn lut_range_matches_paper() {
        // Paper: LUT utilization varies between ~7% and ~28% over the DSE.
        let lo = estimate(&cfg(512, 8, 1, AccessScheme::ReO)).utilization(&DEV);
        let hi = estimate(&cfg(2048, 16, 2, AccessScheme::ReRo)).utilization(&DEV);
        assert!(lo.lut_pct > 6.0 && lo.lut_pct < 9.0, "low {}", lo.lut_pct);
        assert!(
            hi.lut_pct > 24.0 && hi.lut_pct < 30.0,
            "high {}",
            hi.lut_pct
        );
    }

    #[test]
    fn feasibility_reproduces_table4_grid() {
        // The exact 18 configurations of Table IV must be feasible and all
        // others in the DSE space infeasible.
        let mut feasible = Vec::new();
        for kb in [512usize, 1024, 2048, 4096] {
            for lanes in [8usize, 16] {
                for ports in 1..=4usize {
                    let e = estimate(&cfg(kb, lanes, ports, AccessScheme::ReO));
                    if e.feasible(&DEV) {
                        feasible.push((kb, lanes, ports));
                    }
                }
            }
        }
        let expect = vec![
            (512, 8, 1),
            (512, 8, 2),
            (512, 8, 3),
            (512, 8, 4),
            (512, 16, 1),
            (512, 16, 2),
            (1024, 8, 1),
            (1024, 8, 2),
            (1024, 8, 3),
            (1024, 8, 4),
            (1024, 16, 1),
            (1024, 16, 2),
            (2048, 8, 1),
            (2048, 8, 2),
            (2048, 16, 1),
            (2048, 16, 2),
            (4096, 8, 1),
            (4096, 16, 1),
        ];
        let mut want = expect;
        want.sort_unstable();
        feasible.sort_unstable();
        assert_eq!(feasible, want);
    }

    #[test]
    fn max_feasible_logic_under_38pct() {
        // Paper: "keeping the logic utilization under 38%".
        let mut max = 0.0f64;
        for kb in [512usize, 1024, 2048, 4096] {
            for lanes in [8usize, 16] {
                for ports in 1..=4usize {
                    for scheme in AccessScheme::ALL {
                        let e = estimate(&cfg(kb, lanes, ports, scheme));
                        if e.feasible(&DEV) {
                            max = max.max(e.utilization(&DEV).logic_pct);
                        }
                    }
                }
            }
        }
        assert!(max < 38.0, "max feasible logic {max}");
        assert!(
            max > 30.0,
            "densest design should be wiring-heavy, got {max}"
        );
    }

    #[test]
    fn modular_roughly_doubles_resources() {
        // Paper §III-C: "the modular version consumes twice as many
        // resources" as the fused one.
        let c = cfg(512, 8, 1, AccessScheme::ReRo);
        let fused = estimate_with_style(&c, DesignStyle::Fused);
        let modular = estimate_with_style(&c, DesignStyle::Modular);
        let ratio = modular.slices / fused.slices;
        assert!(ratio > 1.7 && ratio < 2.3, "slice ratio {ratio}");
        assert!(modular.bram_blocks > fused.bram_blocks);
        assert_eq!(
            estimate_with_style(&c, DesignStyle::Fused),
            estimate(&c),
            "fused is the default estimate"
        );
    }

    #[test]
    fn breakdown_sums_to_total() {
        let e = estimate(&cfg(1024, 16, 2, AccessScheme::RoCo));
        let sum = e.breakdown.total();
        assert!((sum * scheme_area_factor(AccessScheme::RoCo) - e.slices).abs() < 1e-6);
    }
}
