//! FPGA device database.
//!
//! The paper's experiments all target the Maxeler Vectis board, which
//! carries a **Xilinx Virtex-6 SX475T** (XC6VSX475T). The counts below come
//! from the Virtex-6 family overview (DS150) that the paper cites.

use serde::{Deserialize, Serialize};

/// Static description of an FPGA part.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FpgaDevice {
    /// Marketing name.
    pub name: &'static str,
    /// Logic cells (marketing count).
    pub logic_cells: usize,
    /// Physical slices (each: 4 LUT6 + 8 FF). "Logic utilization" in the
    /// paper's Fig. 6 is slice occupancy.
    pub slices: usize,
    /// 6-input LUTs (Fig. 7's denominator).
    pub luts: usize,
    /// Flip-flops.
    pub flip_flops: usize,
    /// 36 Kb block RAMs (Fig. 8's denominator). Each can also be used as two
    /// independent 18 Kb BRAMs.
    pub bram36: usize,
    /// DSP48E1 slices.
    pub dsp48: usize,
}

impl FpgaDevice {
    /// The Xilinx Virtex-6 SX475T on the Maxeler Vectis DFE.
    pub const VIRTEX6_SX475T: FpgaDevice = FpgaDevice {
        name: "Virtex-6 SX475T (Maxeler Vectis)",
        logic_cells: 476_160,
        slices: 74_400,
        luts: 297_600,
        flip_flops: 595_200,
        bram36: 1_064,
        dsp48: 2_016,
    };

    /// Virtex-6 SX315T — the smaller SXT sibling (DS150).
    pub const VIRTEX6_SX315T: FpgaDevice = FpgaDevice {
        name: "Virtex-6 SX315T",
        logic_cells: 314_880,
        slices: 49_200,
        luts: 196_800,
        flip_flops: 393_600,
        bram36: 704,
        dsp48: 1_344,
    };

    /// Virtex-6 LX240T — the common logic-oriented mid-range part (DS150).
    pub const VIRTEX6_LX240T: FpgaDevice = FpgaDevice {
        name: "Virtex-6 LX240T",
        logic_cells: 241_152,
        slices: 37_680,
        luts: 150_720,
        flip_flops: 301_440,
        bram36: 416,
        dsp48: 768,
    };

    /// Virtex-6 LX550T — large logic, mid BRAM (DS150).
    pub const VIRTEX6_LX550T: FpgaDevice = FpgaDevice {
        name: "Virtex-6 LX550T",
        logic_cells: 549_888,
        slices: 85_920,
        luts: 343_680,
        flip_flops: 687_360,
        bram36: 632,
        dsp48: 864,
    };

    /// The Virtex-6 parts modelled, largest BRAM first.
    pub const ALL: [FpgaDevice; 4] = [
        Self::VIRTEX6_SX475T,
        Self::VIRTEX6_SX315T,
        Self::VIRTEX6_LX550T,
        Self::VIRTEX6_LX240T,
    ];

    /// Total on-chip BRAM capacity in bytes (raw, including parity width):
    /// `bram36 * 36 Kb / 8`. The paper quotes "4 MB of on-chip BRAMs" for
    /// the SX475T, i.e. the usable 64-bit-data capacity.
    pub fn bram_bytes_raw(&self) -> usize {
        self.bram36 * 36 * 1024 / 8
    }

    /// Usable data bytes per BRAM36 when storing 64-bit words: the block is
    /// configured `512 x 72`, with 64 of the 72 bits carrying data — but the
    /// PolyMem banks pack data across the full 36 Kb through depth
    /// cascading, so we account 4.5 KB of data per block (36 Kb), matching
    /// the paper's "4 MB parallel memory fills the device" observation.
    pub const BYTES_PER_BRAM36: f64 = 4608.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sx475t_counts() {
        let d = FpgaDevice::VIRTEX6_SX475T;
        assert_eq!(d.slices * 4, d.luts);
        assert_eq!(d.slices * 8, d.flip_flops);
        assert_eq!(d.bram36, 1064);
    }

    #[test]
    fn bram_capacity_is_about_4mb() {
        let d = FpgaDevice::VIRTEX6_SX475T;
        let mb = d.bram_bytes_raw() as f64 / (1024.0 * 1024.0);
        // 1064 * 4.5 KB = 4.67 MB raw; the paper rounds the usable capacity
        // to "4 MB", and indeed a 4 MB PolyMem fits (synthesis tests).
        assert!(mb > 4.0 && mb < 5.0, "got {mb} MB");
    }
}
