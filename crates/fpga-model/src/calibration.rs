//! The paper's published measurements, embedded as calibration ground truth.
//!
//! `PAPER_TABLE4` is Table IV of the paper verbatim: maximum clock
//! frequencies (MHz) achieved by Xilinx ISE for every feasible
//! (scheme, size, lanes, ports) configuration on the Maxeler Vectis.
//! The error-statistics helpers compare the `timing` model against it; the
//! experiment binaries and EXPERIMENTS.md report the result.

use crate::timing;
use polymem::{AccessScheme, PolyMemConfig};
use serde::{Deserialize, Serialize};

/// One DSE grid point: `(size_kb, lanes, read_ports)`.
pub type GridPoint = (usize, usize, usize);

/// The 18 feasible grid points, in Table IV column order.
pub const TABLE4_COLUMNS: [GridPoint; 18] = [
    (512, 8, 1),
    (512, 8, 2),
    (512, 8, 3),
    (512, 8, 4),
    (512, 16, 1),
    (512, 16, 2),
    (1024, 8, 1),
    (1024, 8, 2),
    (1024, 8, 3),
    (1024, 8, 4),
    (1024, 16, 1),
    (1024, 16, 2),
    (2048, 8, 1),
    (2048, 8, 2),
    (2048, 16, 1),
    (2048, 16, 2),
    (4096, 8, 1),
    (4096, 16, 1),
];

/// Table IV rows: published Fmax (MHz) per scheme, in
/// [`TABLE4_COLUMNS`] order.
pub const PAPER_TABLE4: [(AccessScheme, [f64; 18]); 5] = [
    (
        AccessScheme::ReO,
        [
            202.0, 160.0, 139.0, 123.0, 185.0, 100.0, 160.0, 123.0, 102.0, 79.0, 144.0, 109.0,
            127.0, 86.0, 127.0, 87.0, 95.0, 95.0,
        ],
    ),
    (
        AccessScheme::ReRo,
        [
            195.0, 166.0, 131.0, 123.0, 168.0, 100.0, 163.0, 125.0, 102.0, 77.0, 140.0, 109.0,
            120.0, 87.0, 120.0, 80.0, 98.0, 91.0,
        ],
    ),
    (
        AccessScheme::ReCo,
        [
            196.0, 155.0, 131.0, 122.0, 157.0, 100.0, 163.0, 121.0, 107.0, 81.0, 156.0, 122.0,
            124.0, 78.0, 124.0, 79.0, 93.0, 93.0,
        ],
    ),
    (
        AccessScheme::RoCo,
        [
            194.0, 150.0, 146.0, 122.0, 161.0, 100.0, 173.0, 135.0, 114.0, 86.0, 145.0, 109.0,
            122.0, 90.0, 122.0, 84.0, 88.0, 91.0,
        ],
    ),
    (
        AccessScheme::ReTr,
        [
            193.0, 158.0, 134.0, 137.0, 159.0, 112.0, 155.0, 121.0, 102.0, 77.0, 146.0, 122.0,
            116.0, 81.0, 114.0, 77.0, 102.0, 102.0,
        ],
    ),
];

/// The standard bank-grid shape the paper uses for each lane count.
pub fn grid_for_lanes(lanes: usize) -> Option<(usize, usize)> {
    match lanes {
        4 => Some((2, 2)),
        8 => Some((2, 4)),
        16 => Some((2, 8)),
        32 => Some((4, 8)),
        _ => None,
    }
}

/// Build the `PolyMemConfig` for a DSE grid point.
pub fn config_for(kb: usize, lanes: usize, ports: usize, scheme: AccessScheme) -> PolyMemConfig {
    let (p, q) = grid_for_lanes(lanes).expect("unsupported lane count");
    PolyMemConfig::from_capacity(kb * 1024, p, q, scheme, ports)
        .expect("paper grid point must be constructible")
}

/// Error statistics of the timing model vs Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitStats {
    /// Mean of |model - paper| / paper.
    pub mean_rel_err: f64,
    /// Median of the same.
    pub median_rel_err: f64,
    /// Maximum of the same.
    pub max_rel_err: f64,
    /// Number of cells compared (90).
    pub cells: usize,
}

/// Per-cell comparison record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellComparison {
    /// The scheme of the Table IV row.
    pub scheme: AccessScheme,
    /// Grid point `(size_kb, lanes, ports)`.
    pub point: GridPoint,
    /// Published Fmax (MHz).
    pub paper_mhz: f64,
    /// Model Fmax (MHz).
    pub model_mhz: f64,
}

impl CellComparison {
    /// Relative error |model - paper| / paper.
    pub fn rel_err(&self) -> f64 {
        (self.model_mhz - self.paper_mhz).abs() / self.paper_mhz
    }
}

/// Compare the default (Table IV-fitted) model against every cell.
pub fn compare_all() -> Vec<CellComparison> {
    compare_all_with(&timing::CriticalPathModel::DEFAULT)
}

/// Compare a custom critical-path model against every Table IV cell.
pub fn compare_all_with(model: &crate::timing::CriticalPathModel) -> Vec<CellComparison> {
    let device = crate::device::FpgaDevice::VIRTEX6_SX475T;
    let mut out = Vec::with_capacity(90);
    for (scheme, row) in PAPER_TABLE4 {
        for (col, &paper_mhz) in TABLE4_COLUMNS.iter().zip(row.iter()) {
            let (kb, lanes, ports) = *col;
            let cfg = config_for(kb, lanes, ports, scheme);
            out.push(CellComparison {
                scheme,
                point: *col,
                paper_mhz,
                model_mhz: model.fmax_mhz(&cfg, &device),
            });
        }
    }
    out
}

/// Aggregate fit statistics for a custom model.
pub fn fit_stats_with(model: &crate::timing::CriticalPathModel) -> FitStats {
    let cells = compare_all_with(model);
    let mut errs: Vec<f64> = cells.iter().map(CellComparison::rel_err).collect();
    errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    FitStats {
        mean_rel_err: errs.iter().sum::<f64>() / errs.len() as f64,
        median_rel_err: errs[errs.len() / 2],
        max_rel_err: *errs.last().unwrap(),
        cells: errs.len(),
    }
}

/// Aggregate fit statistics over all 90 cells (default model).
pub fn fit_stats() -> FitStats {
    fit_stats_with(&timing::CriticalPathModel::DEFAULT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_has_90_cells() {
        assert_eq!(compare_all().len(), 90);
    }

    #[test]
    fn paper_highest_cell_is_reo_512_8_1() {
        let max = compare_all()
            .into_iter()
            .max_by(|a, b| a.paper_mhz.partial_cmp(&b.paper_mhz).unwrap())
            .unwrap();
        assert_eq!(max.paper_mhz, 202.0);
        assert_eq!(max.scheme, AccessScheme::ReO);
        assert_eq!(max.point, (512, 8, 1));
    }

    #[test]
    fn paper_floor_is_77mhz() {
        let min = PAPER_TABLE4
            .iter()
            .flat_map(|(_, row)| row.iter())
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert_eq!(min, 77.0);
    }

    #[test]
    fn model_fit_quality() {
        let s = fit_stats();
        assert!(s.mean_rel_err < 0.08, "mean {}", s.mean_rel_err);
        assert!(s.median_rel_err < 0.06, "median {}", s.median_rel_err);
        assert!(s.max_rel_err < 0.26, "max {}", s.max_rel_err);
    }

    #[test]
    fn paper_nonmonotonic_outlier_documented() {
        // Evidence that Table IV carries P&R noise: in every scheme the
        // smaller 512 KB/16 L/2 P design is no faster than 1024 KB/16 L/2 P.
        let idx_512 = 5; // (512, 16, 2)
        let idx_1024 = 11; // (1024, 16, 2)
        for (scheme, row) in PAPER_TABLE4 {
            assert!(
                row[idx_512] <= row[idx_1024],
                "{scheme}: expected the paper's own non-monotonicity"
            );
        }
    }

    #[test]
    fn config_for_all_grid_points_valid() {
        for &(kb, lanes, ports) in &TABLE4_COLUMNS {
            let cfg = config_for(kb, lanes, ports, AccessScheme::ReTr);
            assert_eq!(cfg.capacity_bytes(), kb * 1024);
            assert_eq!(cfg.lanes(), lanes);
        }
    }
}
