//! Design Space Exploration (paper §IV, Table III).
//!
//! Enumerates the DSE grid — capacity × lanes × read ports × scheme — and
//! synthesizes every point. The default grid is exactly Table III
//! (512..4096 KB, 8/16 lanes, 1..4 ports); [`DseGrid::extended`] adds the
//! 32-lane arm mentioned in the paper's contributions list.

use crate::calibration::grid_for_lanes;
use crate::device::FpgaDevice;
use crate::synthesis::{synthesize, SynthesisReport};
use polymem::{AccessScheme, PolyMemConfig};
use serde::{Deserialize, Serialize};

/// The DSE parameter grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DseGrid {
    /// Capacities to sweep, in KB.
    pub sizes_kb: Vec<usize>,
    /// Lane counts to sweep.
    pub lanes: Vec<usize>,
    /// Read-port counts to sweep.
    pub read_ports: Vec<usize>,
    /// Schemes to sweep.
    pub schemes: Vec<AccessScheme>,
}

impl DseGrid {
    /// Table III of the paper.
    pub fn paper() -> Self {
        Self {
            sizes_kb: vec![512, 1024, 2048, 4096],
            lanes: vec![8, 16],
            read_ports: vec![1, 2, 3, 4],
            schemes: AccessScheme::ALL.to_vec(),
        }
    }

    /// Paper grid plus the 32-lane arm (contributions list: "scales with the
    /// number of lanes (up to 32)").
    pub fn extended() -> Self {
        let mut g = Self::paper();
        g.lanes.push(32);
        g
    }

    /// Reduced grid for CI sweeps: drops the 2048 KB capacity and the
    /// 3-port column but keeps every scheme, both paper lane counts, the
    /// 32-lane arm, and the endpoints of every trend (capacity 512→4096,
    /// ports 1→4) so all the report's claims remain checkable.
    pub fn quick() -> Self {
        Self {
            sizes_kb: vec![512, 1024, 4096],
            lanes: vec![8, 16, 32],
            read_ports: vec![1, 2, 4],
            schemes: AccessScheme::ALL.to_vec(),
        }
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.sizes_kb.len() * self.lanes.len() * self.read_ports.len() * self.schemes.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One DSE result row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DsePoint {
    /// Capacity in KB.
    pub size_kb: usize,
    /// Lane count.
    pub lanes: usize,
    /// Read ports.
    pub read_ports: usize,
    /// Scheme.
    pub scheme: AccessScheme,
    /// Synthesis outcome.
    pub report: SynthesisReport,
}

/// A grid point that could not be evaluated, and why. `explore_all` returns
/// these alongside the evaluated points so sweeps can account for every cell
/// of the grid instead of silently shrinking.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkippedPoint {
    /// Capacity in KB.
    pub size_kb: usize,
    /// Lane count.
    pub lanes: usize,
    /// Read ports.
    pub read_ports: usize,
    /// Scheme.
    pub scheme: AccessScheme,
    /// Human-readable reason the point was skipped.
    pub reason: String,
}

/// Evaluate a single grid point: map the lane count to a (p, q) bank grid,
/// build the configuration, and synthesize it. Errors become a
/// [`SkippedPoint`] carrying the reason.
pub fn evaluate_point(
    size_kb: usize,
    lanes: usize,
    read_ports: usize,
    scheme: AccessScheme,
    device: &FpgaDevice,
) -> Result<DsePoint, SkippedPoint> {
    let skip = |reason: String| SkippedPoint {
        size_kb,
        lanes,
        read_ports,
        scheme,
        reason,
    };
    let (p, q) =
        grid_for_lanes(lanes).ok_or_else(|| skip(format!("no bank grid for {lanes} lanes")))?;
    let cfg = PolyMemConfig::from_capacity(size_kb * 1024, p, q, scheme, read_ports)
        .map_err(|e| skip(format!("invalid configuration: {e}")))?;
    Ok(DsePoint {
        size_kb,
        lanes,
        read_ports,
        scheme,
        report: synthesize(&cfg, device),
    })
}

/// The outcome of a full-coverage sweep: every grid cell is either in
/// `points` or in `skipped`, never silently dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct Exploration {
    /// Successfully evaluated points (feasible and infeasible alike).
    pub points: Vec<DsePoint>,
    /// Grid cells that could not be evaluated, with reasons.
    pub skipped: Vec<SkippedPoint>,
}

/// Run the DSE over `grid` on `device`, accounting for every grid cell.
/// Infeasible points are included in `points` with `report.feasible ==
/// false`; unevaluable cells (unplannable lane counts, invalid capacities)
/// land in `skipped` with a reason. The invariant
/// `points.len() + skipped.len() == grid.len()` always holds.
pub fn explore_all(grid: &DseGrid, device: &FpgaDevice) -> Exploration {
    let mut points = Vec::with_capacity(grid.len());
    let mut skipped = Vec::new();
    for &size_kb in &grid.sizes_kb {
        for &lanes in &grid.lanes {
            for &read_ports in &grid.read_ports {
                for &scheme in &grid.schemes {
                    match evaluate_point(size_kb, lanes, read_ports, scheme, device) {
                        Ok(p) => points.push(p),
                        Err(s) => skipped.push(s),
                    }
                }
            }
        }
    }
    debug_assert_eq!(points.len() + skipped.len(), grid.len());
    Exploration { points, skipped }
}

/// Run the DSE over `grid` on `device`. Infeasible points are included with
/// `report.feasible == false` so callers can show the frontier. Grid cells
/// that cannot be evaluated at all are logged to stderr (use
/// [`explore_all`] to get them programmatically).
pub fn explore(grid: &DseGrid, device: &FpgaDevice) -> Vec<DsePoint> {
    let Exploration { points, skipped } = explore_all(grid, device);
    for s in &skipped {
        eprintln!(
            "dse: skipped {}KB/{}L/{}P/{}: {}",
            s.size_kb,
            s.lanes,
            s.read_ports,
            s.scheme.name(),
            s.reason
        );
    }
    points
}

/// Run the paper's DSE on the Vectis device.
pub fn explore_paper() -> Vec<DsePoint> {
    explore(&DseGrid::paper(), &FpgaDevice::VIRTEX6_SX475T)
}

/// The best feasible point by a caller-supplied metric. NaN metric values
/// are treated as "no measurement" and never win (previously they panicked
/// the comparator).
pub fn best_by<F: Fn(&DsePoint) -> f64>(points: &[DsePoint], metric: F) -> Option<&DsePoint> {
    points
        .iter()
        .filter(|p| p.report.feasible && !metric(p).is_nan())
        .max_by(|a, b| metric(a).total_cmp(&metric(b)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_size() {
        let g = DseGrid::paper();
        assert_eq!(g.len(), 4 * 2 * 4 * 5);
        assert!(!g.is_empty());
    }

    #[test]
    fn explore_covers_grid() {
        let pts = explore_paper();
        assert_eq!(pts.len(), 160);
        let feasible = pts.iter().filter(|p| p.report.feasible).count();
        // 18 feasible grid points x 5 schemes.
        assert_eq!(feasible, 90);
    }

    #[test]
    fn best_read_bandwidth_is_small_capacity_multi_port() {
        // Paper Fig. 5: the peak aggregated read bandwidth (~32 GB/s) comes
        // from a 512 KB memory with multiple read ports. (The paper's exact
        // winner, 8L/4P ReTr at 137 MHz, sits in a noisy Table IV cell; the
        // deterministic model picks the structurally-equivalent 16L/2P
        // neighbour — same 512 KB capacity, same lanes*ports product.)
        let pts = explore_paper();
        let best = best_by(&pts, |p| p.report.read_bandwidth_mbps).unwrap();
        assert_eq!(best.size_kb, 512, "best read BW should be smallest memory");
        assert_eq!(best.lanes * best.read_ports, 32);
        let gbps = best.report.read_bandwidth_gbps();
        assert!(gbps > 29.0 && gbps < 35.0, "peak {gbps} GB/s should be ~32");
    }

    #[test]
    fn best_write_bandwidth_is_16_lane() {
        let pts = explore_paper();
        let best = best_by(&pts, |p| p.report.write_bandwidth_mbps).unwrap();
        assert_eq!(best.lanes, 16);
        assert_eq!(best.size_kb, 512);
    }

    #[test]
    fn four_mb_memory_is_instantiable() {
        // Paper contribution: "allowing the instantiation of a 4MB parallel
        // memory on the Maxeler Vectis DFE".
        let pts = explore_paper();
        assert!(pts.iter().any(|p| p.size_kb == 4096 && p.report.feasible));
    }

    #[test]
    fn explore_all_accounts_for_every_cell() {
        // A grid with an unplannable lane count: the bad cells must show up
        // in `skipped` with a reason, not vanish.
        let mut g = DseGrid::paper();
        g.lanes.push(7); // no (p, q) bank grid
        let ex = explore_all(&g, &FpgaDevice::VIRTEX6_SX475T);
        assert_eq!(ex.points.len() + ex.skipped.len(), g.len());
        let bad = ex.skipped.iter().filter(|s| s.lanes == 7).count();
        assert_eq!(bad, 4 * 4 * 5, "every 7-lane cell skipped");
        assert!(ex.skipped.iter().all(|s| s.reason.contains("bank grid")));
    }

    #[test]
    fn best_by_ignores_nan_metrics() {
        let pts = explore_paper();
        // A metric that is NaN everywhere finds nothing (and doesn't panic).
        assert!(best_by(&pts, |_| f64::NAN).is_none());
        // A metric that is NaN on the true winner falls back to the rest.
        let peak = best_by(&pts, |p| p.report.read_bandwidth_mbps)
            .unwrap()
            .clone();
        let second = best_by(&pts, |p| {
            if p == &peak {
                f64::NAN
            } else {
                p.report.read_bandwidth_mbps
            }
        })
        .unwrap();
        assert_ne!(second, &peak);
    }

    #[test]
    fn quick_grid_keeps_trend_endpoints() {
        let g = DseGrid::quick();
        assert!(g.sizes_kb.contains(&512) && g.sizes_kb.contains(&4096));
        assert!(g.read_ports.contains(&1) && g.read_ports.contains(&4));
        assert!(g.lanes.contains(&32));
        assert_eq!(g.schemes.len(), AccessScheme::ALL.len());
        assert!(g.len() < DseGrid::extended().len());
    }

    #[test]
    fn extended_grid_includes_32_lanes() {
        let pts = explore(&DseGrid::extended(), &FpgaDevice::VIRTEX6_SX475T);
        let l32: Vec<_> = pts.iter().filter(|p| p.lanes == 32).collect();
        assert!(!l32.is_empty());
        // 32-lane designs are wiring-monsters; most should be infeasible.
        let feas = l32.iter().filter(|p| p.report.feasible).count();
        assert!(
            feas < l32.len() / 2,
            "{feas}/{} 32-lane points feasible",
            l32.len()
        );
    }
}
