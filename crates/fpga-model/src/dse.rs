//! Design Space Exploration (paper §IV, Table III).
//!
//! Enumerates the DSE grid — capacity × lanes × read ports × scheme — and
//! synthesizes every point. The default grid is exactly Table III
//! (512..4096 KB, 8/16 lanes, 1..4 ports); [`DseGrid::extended`] adds the
//! 32-lane arm mentioned in the paper's contributions list.

use crate::calibration::grid_for_lanes;
use crate::device::FpgaDevice;
use crate::synthesis::{synthesize, SynthesisReport};
use polymem::{AccessScheme, PolyMemConfig};
use serde::{Deserialize, Serialize};

/// The DSE parameter grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DseGrid {
    /// Capacities to sweep, in KB.
    pub sizes_kb: Vec<usize>,
    /// Lane counts to sweep.
    pub lanes: Vec<usize>,
    /// Read-port counts to sweep.
    pub read_ports: Vec<usize>,
    /// Schemes to sweep.
    pub schemes: Vec<AccessScheme>,
}

impl DseGrid {
    /// Table III of the paper.
    pub fn paper() -> Self {
        Self {
            sizes_kb: vec![512, 1024, 2048, 4096],
            lanes: vec![8, 16],
            read_ports: vec![1, 2, 3, 4],
            schemes: AccessScheme::ALL.to_vec(),
        }
    }

    /// Paper grid plus the 32-lane arm (contributions list: "scales with the
    /// number of lanes (up to 32)").
    pub fn extended() -> Self {
        let mut g = Self::paper();
        g.lanes.push(32);
        g
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.sizes_kb.len() * self.lanes.len() * self.read_ports.len() * self.schemes.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One DSE result row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DsePoint {
    /// Capacity in KB.
    pub size_kb: usize,
    /// Lane count.
    pub lanes: usize,
    /// Read ports.
    pub read_ports: usize,
    /// Scheme.
    pub scheme: AccessScheme,
    /// Synthesis outcome.
    pub report: SynthesisReport,
}

/// Run the DSE over `grid` on `device`. Infeasible points are included with
/// `report.feasible == false` so callers can show the frontier.
pub fn explore(grid: &DseGrid, device: &FpgaDevice) -> Vec<DsePoint> {
    let mut out = Vec::with_capacity(grid.len());
    for &size_kb in &grid.sizes_kb {
        for &lanes in &grid.lanes {
            let Some((p, q)) = grid_for_lanes(lanes) else {
                continue;
            };
            for &read_ports in &grid.read_ports {
                for &scheme in &grid.schemes {
                    let Ok(cfg) =
                        PolyMemConfig::from_capacity(size_kb * 1024, p, q, scheme, read_ports)
                    else {
                        continue;
                    };
                    out.push(DsePoint {
                        size_kb,
                        lanes,
                        read_ports,
                        scheme,
                        report: synthesize(&cfg, device),
                    });
                }
            }
        }
    }
    out
}

/// Run the paper's DSE on the Vectis device.
pub fn explore_paper() -> Vec<DsePoint> {
    explore(&DseGrid::paper(), &FpgaDevice::VIRTEX6_SX475T)
}

/// The best feasible point by a caller-supplied metric.
pub fn best_by<F: Fn(&DsePoint) -> f64>(points: &[DsePoint], metric: F) -> Option<&DsePoint> {
    points
        .iter()
        .filter(|p| p.report.feasible)
        .max_by(|a, b| metric(a).partial_cmp(&metric(b)).unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_size() {
        let g = DseGrid::paper();
        assert_eq!(g.len(), 4 * 2 * 4 * 5);
        assert!(!g.is_empty());
    }

    #[test]
    fn explore_covers_grid() {
        let pts = explore_paper();
        assert_eq!(pts.len(), 160);
        let feasible = pts.iter().filter(|p| p.report.feasible).count();
        // 18 feasible grid points x 5 schemes.
        assert_eq!(feasible, 90);
    }

    #[test]
    fn best_read_bandwidth_is_small_capacity_multi_port() {
        // Paper Fig. 5: the peak aggregated read bandwidth (~32 GB/s) comes
        // from a 512 KB memory with multiple read ports. (The paper's exact
        // winner, 8L/4P ReTr at 137 MHz, sits in a noisy Table IV cell; the
        // deterministic model picks the structurally-equivalent 16L/2P
        // neighbour — same 512 KB capacity, same lanes*ports product.)
        let pts = explore_paper();
        let best = best_by(&pts, |p| p.report.read_bandwidth_mbps).unwrap();
        assert_eq!(best.size_kb, 512, "best read BW should be smallest memory");
        assert_eq!(best.lanes * best.read_ports, 32);
        let gbps = best.report.read_bandwidth_gbps();
        assert!(gbps > 29.0 && gbps < 35.0, "peak {gbps} GB/s should be ~32");
    }

    #[test]
    fn best_write_bandwidth_is_16_lane() {
        let pts = explore_paper();
        let best = best_by(&pts, |p| p.report.write_bandwidth_mbps).unwrap();
        assert_eq!(best.lanes, 16);
        assert_eq!(best.size_kb, 512);
    }

    #[test]
    fn four_mb_memory_is_instantiable() {
        // Paper contribution: "allowing the instantiation of a 4MB parallel
        // memory on the Maxeler Vectis DFE".
        let pts = explore_paper();
        assert!(pts.iter().any(|p| p.size_kb == 4096 && p.report.feasible));
    }

    #[test]
    fn extended_grid_includes_32_lanes() {
        let pts = explore(&DseGrid::extended(), &FpgaDevice::VIRTEX6_SX475T);
        let l32: Vec<_> = pts.iter().filter(|p| p.lanes == 32).collect();
        assert!(!l32.is_empty());
        // 32-lane designs are wiring-monsters; most should be infeasible.
        let feas = l32.iter().filter(|p| p.report.feasible).count();
        assert!(
            feas < l32.len() / 2,
            "{feas}/{} 32-lane points feasible",
            l32.len()
        );
    }
}
