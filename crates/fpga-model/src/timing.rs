//! Clock-frequency (Fmax) estimation — substitutes for Xilinx place & route.
//!
//! The model estimates the critical path in nanoseconds as a sum of
//! structural terms and inverts it:
//!
//! ```text
//! path(cfg) = T_BASE                                  pipeline + BRAM access
//!           + T_LANE   * log2(lanes)                  crossbar mux-tree depth
//!           + T_ROUTE  * bram_utilization             placement spread: more
//!                                                     BRAM -> longer routes
//!           + T_WIRE   * (lanes/8)^3 * (ports - 1)    replicated-crossbar
//!                                                     wiring congestion
//!           + T_SCHEME                                MAF arithmetic depth
//! fmax = 1000 / path
//! ```
//!
//! The five structural constants and four scheme offsets were fitted by
//! random-restart coordinate descent against all 90 cells of the paper's
//! Table IV (constrained to non-negative physical values). Fit quality on
//! Table IV: **mean |rel. error| ≈ 6%, median ≈ 4%** (checked in
//! `calibration`). The worst cells are the paper's own non-monotonic
//! outliers (e.g. 512 KB/16 lanes/2 ports is *slower* than the larger
//! 1024 KB/16/2 in every scheme — run-to-run P&R variance), which a
//! deterministic model cannot and should not chase.
//!
//! An optional deterministic "P&R noise" term reproduces the ±few-percent
//! jitter visible in the paper's table for DSE realism experiments.

use crate::resources;
use polymem::{AccessScheme, PolyMemConfig};

/// Fitted critical-path constants (ns).
pub mod constants {
    /// Base pipeline + BRAM clock-to-out.
    pub const T_BASE: f64 = 3.50;
    /// Per-mux-tree-level delay (multiplied by `log2(lanes)`).
    pub const T_LANE: f64 = 0.25;
    /// Routing penalty at 100% BRAM utilization.
    pub const T_ROUTE: f64 = 7.04;
    /// Replicated-crossbar wiring congestion per extra read port at 8 lanes,
    /// scaling with `(lanes/8)^WIRE_EXPONENT`.
    pub const T_WIRE: f64 = 0.165;
    /// Lane-scaling exponent of the congestion term (the fit lands on a
    /// cubic: area x fanout of the replicated crossbars).
    pub const WIRE_EXPONENT: f64 = 3.0;
    /// Half-width of the optional deterministic P&R jitter (uniform). The
    /// value is calibrated to Table IV's residual spread around the fitted
    /// structural model: RMSE ≈ 0.71 ns on ≈ 8.5 ns paths ⇒ σ ≈ 8.7%,
    /// i.e. a uniform half-width of `0.087 * sqrt(3) ≈ 0.15`.
    pub const NOISE_MAG: f64 = 0.15;
}

/// MAF arithmetic depth offsets (ns), fitted per scheme. `ReO`'s pure
/// modulo-by-power-of-two MAF is the baseline.
pub fn scheme_delay(scheme: AccessScheme) -> f64 {
    match scheme {
        AccessScheme::ReO => 0.0,
        AccessScheme::ReRo => 0.183,
        AccessScheme::ReCo => 0.158,
        AccessScheme::RoCo => -0.009,
        AccessScheme::ReTr => 0.095,
    }
}

/// A parameterized critical-path model. [`CriticalPathModel::DEFAULT`]
/// holds the Table IV fit; sensitivity studies perturb individual fields
/// and re-measure the fit (see the `sensitivity` experiment binary).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriticalPathModel {
    /// Base pipeline + BRAM clock-to-out (ns).
    pub t_base: f64,
    /// Per-mux-tree-level delay (ns per `log2(lanes)`).
    pub t_lane: f64,
    /// Routing penalty at 100% BRAM utilization (ns).
    pub t_route: f64,
    /// Replicated-crossbar congestion per extra port at 8 lanes (ns).
    pub t_wire: f64,
    /// Lane exponent of the congestion term.
    pub wire_exponent: f64,
}

impl CriticalPathModel {
    /// The Table IV fit.
    pub const DEFAULT: CriticalPathModel = CriticalPathModel {
        t_base: constants::T_BASE,
        t_lane: constants::T_LANE,
        t_route: constants::T_ROUTE,
        t_wire: constants::T_WIRE,
        wire_exponent: constants::WIRE_EXPONENT,
    };

    /// Critical path (ns) of `cfg` on `device` under this model. The
    /// routing term scales with the *target device's* BRAM utilization: the
    /// same design spreads over proportionally more of a smaller part.
    pub fn critical_path_ns(&self, cfg: &PolyMemConfig, device: &crate::device::FpgaDevice) -> f64 {
        let est = resources::estimate(cfg);
        let util = est.bram_blocks / device.bram36 as f64;
        let lanes = cfg.lanes() as f64;
        let ports = cfg.read_ports as f64;
        self.t_base
            + self.t_lane * lanes.log2()
            + self.t_route * util
            + self.t_wire * (lanes / 8.0).powf(self.wire_exponent) * (ports - 1.0)
            + scheme_delay(cfg.scheme)
    }

    /// Fmax (MHz) under this model.
    pub fn fmax_mhz(&self, cfg: &PolyMemConfig, device: &crate::device::FpgaDevice) -> f64 {
        1000.0 / self.critical_path_ns(cfg, device)
    }
}

/// Estimated critical path (ns) of `cfg` on `device`, noise-free, under
/// the default (Table IV-fitted) model.
pub fn critical_path_ns_on(cfg: &PolyMemConfig, device: &crate::device::FpgaDevice) -> f64 {
    CriticalPathModel::DEFAULT.critical_path_ns(cfg, device)
}

/// Estimated critical path (ns) on the paper's Vectis device.
pub fn critical_path_ns(cfg: &PolyMemConfig) -> f64 {
    critical_path_ns_on(cfg, &crate::device::FpgaDevice::VIRTEX6_SX475T)
}

/// Noise-free Fmax (MHz) on `device`.
pub fn fmax_mhz_on(cfg: &PolyMemConfig, device: &crate::device::FpgaDevice) -> f64 {
    1000.0 / critical_path_ns_on(cfg, device)
}

/// Noise-free Fmax (MHz) on the Vectis.
pub fn fmax_mhz(cfg: &PolyMemConfig) -> f64 {
    1000.0 / critical_path_ns(cfg)
}

/// Fmax with deterministic pseudo-random P&R jitter (a seeded hash of the
/// configuration), reproducing the kind of non-monotonicity Table IV shows.
pub fn fmax_mhz_noisy(cfg: &PolyMemConfig, seed: u64) -> f64 {
    let h = config_hash(cfg) ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    // Map hash to [-1, 1).
    let unit = ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
    fmax_mhz(cfg) * (1.0 + constants::NOISE_MAG * unit)
}

fn config_hash(cfg: &PolyMemConfig) -> u64 {
    // FNV-1a over the distinguishing fields.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    mix(cfg.rows as u64);
    mix(cfg.cols as u64);
    mix(cfg.p as u64);
    mix(cfg.q as u64);
    mix(cfg.read_ports as u64);
    mix(cfg.scheme as u64);
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(kb: usize, lanes: usize, ports: usize, scheme: AccessScheme) -> PolyMemConfig {
        let (p, q) = if lanes == 8 { (2, 4) } else { (2, 8) };
        PolyMemConfig::from_capacity(kb * 1024, p, q, scheme, ports).unwrap()
    }

    #[test]
    fn peak_frequency_is_about_202mhz() {
        // Paper: highest frequency 202 MHz for 512 KB, 8-lane, 1-port ReO.
        // The fitted model lands within 10% (the paper's fastest cell sits
        // above the structural trend of its own table).
        let f = fmax_mhz(&cfg(512, 8, 1, AccessScheme::ReO));
        assert!((f - 202.0).abs() / 202.0 < 0.10, "got {f}");
    }

    #[test]
    fn frequency_falls_with_capacity() {
        let mut prev = f64::INFINITY;
        for kb in [512usize, 1024, 2048, 4096] {
            let f = fmax_mhz(&cfg(kb, 8, 1, AccessScheme::ReO));
            assert!(f < prev, "{kb} KB: {f} !< {prev}");
            prev = f;
        }
    }

    #[test]
    fn frequency_falls_with_ports() {
        let mut prev = f64::INFINITY;
        for ports in 1..=4usize {
            let f = fmax_mhz(&cfg(512, 8, ports, AccessScheme::ReRo));
            assert!(f < prev);
            prev = f;
        }
    }

    #[test]
    fn frequency_falls_with_lanes() {
        let f8 = fmax_mhz(&cfg(512, 8, 1, AccessScheme::ReO));
        let f16 = fmax_mhz(&cfg(512, 16, 1, AccessScheme::ReO));
        assert!(f16 < f8);
    }

    #[test]
    fn minimum_feasible_frequency_near_paper_floor() {
        // Paper: minimum clock frequency is 77 MHz (1024 KB, 16 L... worst cells).
        let mut min = f64::INFINITY;
        for kb in [512usize, 1024, 2048, 4096] {
            for lanes in [8usize, 16] {
                for ports in 1..=4 {
                    for scheme in AccessScheme::ALL {
                        let c = cfg(kb, lanes, ports, scheme);
                        if crate::resources::estimate(&c)
                            .feasible(&crate::device::FpgaDevice::VIRTEX6_SX475T)
                        {
                            min = min.min(fmax_mhz(&c));
                        }
                    }
                }
            }
        }
        assert!(min > 65.0 && min < 100.0, "floor {min}");
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let c = cfg(512, 8, 1, AccessScheme::ReO);
        let a = fmax_mhz_noisy(&c, 1);
        let b = fmax_mhz_noisy(&c, 1);
        assert_eq!(a, b);
        let clean = fmax_mhz(&c);
        assert!((a - clean).abs() / clean <= constants::NOISE_MAG + 1e-12);
        // Different seeds perturb differently (overwhelmingly likely).
        assert_ne!(fmax_mhz_noisy(&c, 1), fmax_mhz_noisy(&c, 2));
    }

    #[test]
    fn stream_anchor_2048kb_single_port_roco() {
        // Paper §V: STREAM synthesized at 120 MHz, "just 2 MHz lower than the
        // maximum clock frequency for a 2048 KB configuration with a single
        // read port" (= 122 MHz, RoCo). Model should land nearby.
        let f = fmax_mhz(&cfg(2048, 8, 1, AccessScheme::RoCo));
        assert!((f - 122.0).abs() / 122.0 < 0.10, "got {f}");
    }
}
