//! End-to-end "synthesis": configuration → report.
//!
//! [`synthesize`] glues the resource and timing models together into the
//! record the paper's DSE produces per design: feasibility, Fmax, resource
//! utilization, and the derived bandwidth figures of Figs. 4 and 5.

use crate::device::FpgaDevice;
use crate::resources::{self, ResourceEstimate, Utilization};
use crate::timing;
use polymem::PolyMemConfig;
use serde::{Deserialize, Serialize};

/// Complete synthesis outcome for one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesisReport {
    /// The synthesized configuration.
    pub config: PolyMemConfig,
    /// Whether the design fits and routes on the device.
    pub feasible: bool,
    /// Achieved clock frequency (MHz); meaningful only if `feasible`.
    pub fmax_mhz: f64,
    /// Resource estimate.
    pub resources: ResourceEstimate,
    /// Utilization percentages.
    pub utilization: Utilization,
    /// Single-port bandwidth (MB/s) = write bandwidth (Fig. 4).
    pub write_bandwidth_mbps: f64,
    /// Aggregated read bandwidth over all read ports (MB/s, Fig. 5).
    pub read_bandwidth_mbps: f64,
}

impl SynthesisReport {
    /// Total read+write data rate when both directions stream every cycle
    /// (the paper's STREAM-Copy aggregate metric).
    pub fn aggregate_bandwidth_mbps(&self) -> f64 {
        self.write_bandwidth_mbps + self.read_bandwidth_mbps
    }

    /// Bandwidth figures in GB/s (as plotted in Figs. 4-5).
    pub fn write_bandwidth_gbps(&self) -> f64 {
        self.write_bandwidth_mbps / 1000.0
    }

    /// Aggregated read bandwidth in GB/s.
    pub fn read_bandwidth_gbps(&self) -> f64 {
        self.read_bandwidth_mbps / 1000.0
    }
}

/// Synthesize `cfg` for `device` (noise-free; see
/// [`timing::fmax_mhz_noisy`] for P&R-jitter studies).
pub fn synthesize(cfg: &PolyMemConfig, device: &FpgaDevice) -> SynthesisReport {
    let res = resources::estimate(cfg);
    let fmax = timing::fmax_mhz_on(cfg, device);
    SynthesisReport {
        config: *cfg,
        feasible: res.feasible(device),
        fmax_mhz: fmax,
        resources: res,
        utilization: res.utilization(device),
        write_bandwidth_mbps: cfg.port_bandwidth_mbps(fmax),
        read_bandwidth_mbps: cfg.read_bandwidth_mbps(fmax),
    }
}

/// Synthesize on the paper's device (Vectis / Virtex-6 SX475T).
pub fn synthesize_vectis(cfg: &PolyMemConfig) -> SynthesisReport {
    synthesize(cfg, &FpgaDevice::VIRTEX6_SX475T)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::config_for;
    use polymem::AccessScheme;

    #[test]
    fn peak_read_bandwidth_exceeds_32gbps() {
        // Paper abstract: max read bandwidth ~32 GB/s (512 KB, 4 ports).
        // Paper Fig. 5 peak: 512 KB, 8 lanes, 4-port ReTr.
        let mut best = 0.0f64;
        for &(kb, lanes, ports) in &crate::calibration::TABLE4_COLUMNS {
            for scheme in AccessScheme::ALL {
                let r = synthesize_vectis(&config_for(kb, lanes, ports, scheme));
                if r.feasible {
                    best = best.max(r.read_bandwidth_gbps());
                }
            }
        }
        assert!(best > 30.0 && best < 38.0, "peak read bw {best} GB/s");
    }

    #[test]
    fn peak_write_bandwidth_exceeds_20gbps() {
        // Paper: peak write bandwidth > 22 GB/s (512 KB, 16 lanes, ReO).
        let r = synthesize_vectis(&config_for(512, 16, 1, AccessScheme::ReO));
        assert!(
            r.write_bandwidth_gbps() > 20.0,
            "got {}",
            r.write_bandwidth_gbps()
        );
    }

    #[test]
    fn write_bandwidth_scales_linearly_with_lanes() {
        // Paper: "single-port bandwidth scales linearly when doubling number
        // of memory banks from 8 to 16" (frequency drop is modest).
        let w8 = synthesize_vectis(&config_for(512, 8, 1, AccessScheme::ReO));
        let w16 = synthesize_vectis(&config_for(512, 16, 1, AccessScheme::ReO));
        let ratio = w16.write_bandwidth_mbps / w8.write_bandwidth_mbps;
        assert!(ratio > 1.5 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn read_port_scaling_has_diminishing_returns() {
        // Paper Fig. 5: good scaling 1->2 ports, diminishing 3->4 (because
        // frequency falls as BRAM fills).
        let bw: Vec<f64> = (1..=4)
            .map(|ports| {
                synthesize_vectis(&config_for(512, 8, ports, AccessScheme::ReRo))
                    .read_bandwidth_gbps()
            })
            .collect();
        assert!(bw[1] > bw[0] * 1.4, "1->2 ports should scale well");
        let gain_34 = bw[3] / bw[2];
        let gain_12 = bw[1] / bw[0];
        assert!(gain_34 < gain_12, "3->4 gain must be smaller than 1->2");
    }

    #[test]
    fn infeasible_configs_flagged() {
        let r = synthesize_vectis(&config_for(4096, 8, 2, AccessScheme::ReO));
        assert!(!r.feasible);
        let r = synthesize_vectis(&config_for(4096, 8, 1, AccessScheme::ReO));
        assert!(r.feasible);
    }

    #[test]
    fn aggregate_is_read_plus_write() {
        let r = synthesize_vectis(&config_for(512, 8, 2, AccessScheme::RoCo));
        assert!(
            (r.aggregate_bandwidth_mbps() - (r.read_bandwidth_mbps + r.write_bandwidth_mbps)).abs()
                < 1e-9
        );
    }

    #[test]
    fn capacity_increase_reduces_bandwidth_at_fixed_geometry() {
        // Paper: "bandwidth is reduced if the number of lanes and ports is
        // kept constant, but the capacity of PolyMem is increased".
        let mut prev = f64::INFINITY;
        for kb in [512usize, 1024, 2048, 4096] {
            let r = synthesize_vectis(&config_for(kb, 8, 1, AccessScheme::ReCo));
            assert!(r.read_bandwidth_mbps < prev);
            prev = r.read_bandwidth_mbps;
        }
    }
}
