//! Human-readable synthesis report rendering, in the spirit of a vendor
//! map/par summary — the artefact an FPGA engineer reads after each run.

use crate::device::FpgaDevice;
use crate::synthesis::SynthesisReport;
use std::fmt::Write as _;

/// Render a full text report for one synthesized configuration.
pub fn render(report: &SynthesisReport, device: &FpgaDevice) -> String {
    let cfg = &report.config;
    let res = &report.resources;
    let u = &report.utilization;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "================================================================"
    );
    let _ = writeln!(s, " PolyMem synthesis report — {}", device.name);
    let _ = writeln!(
        s,
        "================================================================"
    );
    let _ = writeln!(
        s,
        " design      : {} scheme, {}x{} banks ({} lanes), {} read port(s)",
        cfg.scheme,
        cfg.p,
        cfg.q,
        cfg.lanes(),
        cfg.read_ports
    );
    let _ = writeln!(
        s,
        " capacity    : {} KB ({} x {} x {} B elements)",
        cfg.capacity_bytes() / 1024,
        cfg.rows,
        cfg.cols,
        cfg.element_bytes
    );
    let _ = writeln!(
        s,
        " status      : {}",
        if report.feasible {
            "ROUTED"
        } else {
            "FAILED (over capacity)"
        }
    );
    let _ = writeln!(
        s,
        " clock       : {:.1} MHz ({:.2} ns critical path)",
        report.fmax_mhz,
        1000.0 / report.fmax_mhz
    );
    let _ = writeln!(
        s,
        "----------------------------------------------------------------"
    );
    let _ = writeln!(s, " resource          used        avail      util");
    let row = |s: &mut String, name: &str, used: f64, avail: usize, pct: f64| {
        let _ = writeln!(s, " {name:<14} {used:>9.0} {avail:>12} {pct:>8.2}%");
    };
    row(&mut s, "slices", res.slices, device.slices, u.logic_pct);
    row(&mut s, "LUT6", res.luts, device.luts, u.lut_pct);
    row(
        &mut s,
        "flip-flops",
        res.flip_flops,
        device.flip_flops,
        u.ff_pct,
    );
    row(&mut s, "BRAM36", res.bram_blocks, device.bram36, u.bram_pct);
    let _ = writeln!(
        s,
        "----------------------------------------------------------------"
    );
    let _ = writeln!(s, " slice breakdown:");
    let b = &res.breakdown;
    for (name, v) in [
        ("infrastructure", b.infrastructure),
        ("crossbars", b.crossbars),
        ("port control", b.port_control),
        ("BRAM glue", b.bram_glue),
        ("AGU + MAF", b.agu_maf),
    ] {
        let _ = writeln!(
            s,
            "   {name:<16} {v:>9.0}  ({:>5.1}%)",
            100.0 * v / b.total()
        );
    }
    let _ = writeln!(
        s,
        "----------------------------------------------------------------"
    );
    let _ = writeln!(
        s,
        " bandwidth   : write {:.1} GB/s | read (aggregate) {:.1} GB/s | total {:.1} GB/s",
        report.write_bandwidth_gbps(),
        report.read_bandwidth_gbps(),
        report.aggregate_bandwidth_mbps() / 1000.0
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::config_for;
    use crate::synthesis::synthesize_vectis;
    use polymem::AccessScheme;

    #[test]
    fn report_contains_key_facts() {
        let rep = synthesize_vectis(&config_for(512, 8, 1, AccessScheme::ReRo));
        let text = render(&rep, &FpgaDevice::VIRTEX6_SX475T);
        assert!(text.contains("ReRo scheme"));
        assert!(text.contains("512 KB"));
        assert!(text.contains("ROUTED"));
        assert!(text.contains("BRAM36"));
        assert!(text.contains("crossbars"));
        assert!(text.contains("GB/s"));
    }

    #[test]
    fn infeasible_report_says_failed() {
        let rep = synthesize_vectis(&config_for(4096, 16, 4, AccessScheme::ReO));
        let text = render(&rep, &FpgaDevice::VIRTEX6_SX475T);
        assert!(text.contains("FAILED"));
    }

    #[test]
    fn breakdown_percentages_sum_to_100() {
        let rep = synthesize_vectis(&config_for(1024, 16, 2, AccessScheme::RoCo));
        let b = rep.resources.breakdown;
        let sum = [
            b.infrastructure,
            b.crossbars,
            b.port_control,
            b.bram_glue,
            b.agu_maf,
        ]
        .iter()
        .map(|v| 100.0 * v / b.total())
        .sum::<f64>();
        assert!((sum - 100.0).abs() < 1e-9);
    }
}
