//! # polymem-fpga-model — analytic FPGA synthesis model for PolyMem
//!
//! This crate substitutes for the Xilinx ISE synthesis flow used in the
//! MAX-PolyMem paper: given a [`polymem::PolyMemConfig`], it estimates
//!
//! * **resources** — BRAM36 blocks, slices ("logic"), LUTs, flip-flops —
//!   with per-block structural terms ([`resources`]),
//! * **timing** — the achievable clock frequency ([`timing`]),
//! * **feasibility** — whether the design fits and routes on the Maxeler
//!   Vectis' Virtex-6 SX475T ([`device`]),
//!
//! and combines them into a [`synthesis::SynthesisReport`] with the derived
//! bandwidth metrics of the paper's Figs. 4-5. The [`dse`] module sweeps the
//! paper's Table III grid; [`calibration`] embeds the paper's Table IV and
//! quantifies the model's fit (mean relative error ≈ 6%).
//!
//! The model is calibrated, not synthesized: its purpose is to reproduce the
//! *shape* of the paper's evaluation — which configuration wins, how
//! bandwidth scales with lanes/ports/capacity, where the feasibility
//! frontier lies — on a machine with no FPGA toolchain. Notably, the model's
//! BRAM capacity + routability cutoffs reproduce **exactly** the 18 feasible
//! configurations of Table IV.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod calibration;
pub mod device;
pub mod dse;
pub mod report;
pub mod resources;
pub mod synthesis;
pub mod timing;

pub use calibration::{fit_stats, FitStats, PAPER_TABLE4, TABLE4_COLUMNS};
pub use device::FpgaDevice;
pub use dse::{
    best_by, evaluate_point, explore, explore_all, explore_paper, DseGrid, DsePoint, Exploration,
    SkippedPoint,
};
pub use report::render as render_report;
pub use resources::{estimate, estimate_with_style, DesignStyle, ResourceEstimate, Utilization};
pub use synthesis::{synthesize, synthesize_vectis, SynthesisReport};
pub use timing::{
    critical_path_ns, critical_path_ns_on, fmax_mhz, fmax_mhz_noisy, fmax_mhz_on, CriticalPathModel,
};
