//! A standalone tour of the DFE simulator: build a three-kernel dataflow
//! graph (generator → windowed-average kernel → sink), run it under a
//! manager, watch it with the tracer, and dump a VCD waveform — the
//! debugging workflow the paper wished MaxJ's toolchain had (§III-C
//! complains about the lack of design visualisation).
//!
//! Run with: `cargo run -p polymem-apps --example dataflow_pipeline`

use dfe_sim::kernel::{FnKernel, Kernel};
use dfe_sim::{stream, stream_stats, Generator, Manager, Sink, Tracer, VcdRecorder};
use std::rc::Rc;

fn main() {
    let input = stream::<u64>("input", 8);
    let averaged = stream::<u64>("averaged", 8);
    let tracer = Tracer::new(256);
    let mut vcd = VcdRecorder::new();
    vcd.declare("input_depth", 8);
    vcd.declare("averaged_depth", 8);

    let mut mgr = Manager::new(100.0);
    // Source: a noisy ramp.
    let data: Vec<u64> = (0..24).map(|k| 10 * k + (k * 7) % 5).collect();
    mgr.add_kernel(Box::new(Generator::new(
        "source",
        data.clone(),
        Rc::clone(&input),
    )));

    // A 4-tap moving-average kernel with an internal shift register.
    let (inp, out, tr) = (Rc::clone(&input), Rc::clone(&averaged), tracer.clone());
    let mut window = [0u64; 4];
    let mut filled = 0usize;
    mgr.add_kernel(Box::new(FnKernel::new("avg4", move |cycle| {
        if !out.borrow().can_push() {
            tr.record(cycle, "avg4", "stalled on output");
            return;
        }
        if let Some(v) = inp.borrow_mut().pop() {
            window.rotate_left(1);
            window[3] = v;
            filled = (filled + 1).min(4);
            if filled == 4 {
                let avg = window.iter().sum::<u64>() / 4;
                out.borrow_mut().push(avg);
                tr.record(cycle, "avg4", format!("in={v} avg={avg}"));
            }
        }
    })));

    // Sink collecting results.
    let mut sink = Sink::new("sink", Rc::clone(&averaged));

    // Drive the graph, sampling FIFO depths into the VCD each cycle.
    for c in 0..40u64 {
        mgr.run_cycles(1);
        sink.tick(c);
        vcd.sample("input_depth", c, input.borrow().len() as u64);
        vcd.sample("averaged_depth", c, averaged.borrow().len() as u64);
    }

    let got = sink.take();
    println!(
        "4-tap moving average over {} samples -> {} outputs",
        data.len(),
        got.len()
    );
    assert_eq!(got.len(), data.len() - 3);
    // Verify against the scalar filter.
    for (k, &g) in got.iter().enumerate() {
        let want = data[k..k + 4].iter().sum::<u64>() / 4;
        assert_eq!(g, want, "output {k}");
    }
    println!("verified against the scalar reference");

    println!("\ntracer (last 5 events):");
    for e in tracer.events().iter().rev().take(5).rev() {
        println!("  [{:>3}] {:<6} {}", e.cycle, e.source, e.event);
    }

    for (name, s) in [("input", &input), ("averaged", &averaged)] {
        let st = stream_stats(s);
        println!(
            "stream {name:<9}: pushed {:>3}, popped {:>3}, stalls {}, depth {}",
            st.pushed, st.popped, st.stalls, st.depth
        );
    }

    let doc = vcd.render("pipeline", 10.0);
    println!(
        "\nVCD waveform: {} lines (open in GTKWave); first change records:",
        doc.lines().count()
    );
    for line in doc.lines().skip_while(|l| !l.starts_with('#')).take(6) {
        println!("  {line}");
    }
}
