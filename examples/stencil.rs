//! 2D 5-point stencil (Jacobi sweep) fed by RoCo row accesses — the
//! HPC workload class the paper's introduction motivates: PolyMem as a
//! software cache keeping the working set on-chip and feeding the kernel
//! `p*q` operands per access.
//!
//! Each output row chunk needs the chunk above, below, and the row itself
//! (shifted by one for west/east). RoCo serves all of them as conflict-free
//! row accesses, whatever the alignment.
//!
//! Run with: `cargo run -p polymem-apps --example stencil`

use polymem::{AccessScheme, ParallelAccess, PolyMem, PolyMemConfig};

const ROWS: usize = 64;
const COLS: usize = 64;
const LANES: usize = 8;

fn idx(i: usize, j: usize) -> usize {
    i * COLS + j
}

fn scalar_jacobi(grid: &[f64]) -> Vec<f64> {
    let mut out = grid.to_vec();
    for i in 1..ROWS - 1 {
        for j in 1..COLS - 1 {
            out[idx(i, j)] = 0.25
                * (grid[idx(i - 1, j)]
                    + grid[idx(i + 1, j)]
                    + grid[idx(i, j - 1)]
                    + grid[idx(i, j + 1)]);
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = PolyMemConfig::new(ROWS, COLS, 2, 4, AccessScheme::RoCo, 2)?;
    let mut mem = PolyMem::<u64>::new(cfg)?;

    // A hot spot in a cold plate.
    let mut grid = vec![0.0f64; ROWS * COLS];
    for j in 0..COLS {
        grid[idx(0, j)] = 100.0; // hot north edge
    }
    grid[idx(ROWS / 2, COLS / 2)] = 500.0;
    mem.load_row_major(&grid.iter().map(|v| v.to_bits()).collect::<Vec<_>>())?;

    // One Jacobi sweep through parallel row accesses.
    let mut result = grid.clone();
    let mut reads = 0u64;
    let mut north = vec![0u64; LANES];
    let mut south = vec![0u64; LANES];
    let mut west = vec![0u64; LANES];
    let mut east = vec![0u64; LANES];
    for i in 1..ROWS - 1 {
        for j0 in (0..COLS).step_by(LANES) {
            // North and south neighbours: two ports, one cycle each in HW.
            mem.read_into(0, ParallelAccess::row(i - 1, j0), &mut north)?;
            mem.read_into(1, ParallelAccess::row(i + 1, j0), &mut south)?;
            // West/east: unaligned row reads (RoCo rows need no alignment).
            let jw = j0.saturating_sub(1);
            mem.read_into(0, ParallelAccess::row(i, jw), &mut west)?;
            let je = (j0 + 1).min(COLS - LANES);
            mem.read_into(1, ParallelAccess::row(i, je), &mut east)?;
            reads += 4;
            for k in 0..LANES {
                let j = j0 + k;
                if j == 0 || j == COLS - 1 {
                    continue;
                }
                let wv = f64::from_bits(west[j - 1 - jw]);
                let ev = f64::from_bits(east[j + 1 - je]);
                let nv = f64::from_bits(north[k]);
                let sv = f64::from_bits(south[k]);
                result[idx(i, j)] = 0.25 * (nv + sv + wv + ev);
            }
        }
    }

    // Verify against the scalar stencil.
    let want = scalar_jacobi(&grid);
    let mut max_err = 0.0f64;
    for (g, w) in result.iter().zip(&want) {
        max_err = max_err.max((g - w).abs());
    }
    assert!(max_err < 1e-12, "max error {max_err}");
    println!("one Jacobi sweep over a {ROWS}x{COLS} grid: exact match with the scalar stencil");
    println!(
        "parallel reads issued: {reads} ({} operand elements); scalar loads avoided: {}",
        reads * LANES as u64,
        (ROWS - 2) * (COLS - 2) * 4
    );
    println!(
        "with 2 read ports the north/south and west/east pairs issue in the same cycle: {} cycles of reads",
        reads / 2
    );
    Ok(())
}
