//! Blocked matrix transpose through the ReTr scheme.
//!
//! ReTr's claim (paper Table I): both a `p x q` rectangle *and* its `q x p`
//! transpose are single-cycle conflict-free accesses. That makes transposes
//! free of the gather/scatter cost a row-major memory pays: read a block in
//! transposed shape, write it back in normal shape at the mirrored
//! position. This example transposes a matrix in-place-style via PolyMem
//! and verifies against a scalar transpose.
//!
//! Run with: `cargo run -p polymem-apps --example matrix_transpose`

use polymem::{AccessPattern, AccessScheme, ParallelAccess, PolyMem, PolyMemConfig};

const N: usize = 32; // square matrix side; multiple of both p and q

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (p, q) = (2, 4);
    let cfg = PolyMemConfig::new(N, N, p, q, AccessScheme::ReTr, 1)?;
    let mut src = PolyMem::<u64>::new(cfg)?;
    let mut dst = PolyMem::<u64>::new(cfg)?;

    let data: Vec<u64> = (0..(N * N) as u64).collect();
    src.load_row_major(&data)?;

    // Transpose: for each q x p block of the source read *transposed*
    // (q rows x p cols at (bi, bj)), the lanes arrive in an order that is
    // exactly the row-major order of the p x q block at (bj, bi) in the
    // transposed matrix.
    let mut accesses = 0usize;
    for bi in (0..N).step_by(q) {
        for bj in (0..N).step_by(p) {
            let block = src.read(
                0,
                ParallelAccess::new(bi, bj, AccessPattern::TransposedRectangle),
            )?;
            // block lane order: (bi+a, bj+b) for a in 0..q, b in 0..p —
            // i.e. row-major of the q x p source block. Transposed, that
            // becomes column-major of the destination p x q block; reorder
            // lanes to destination row-major.
            let mut out = vec![0u64; p * q];
            for a in 0..q {
                for b in 0..p {
                    out[b * q + a] = block[a * p + b];
                }
            }
            dst.write(ParallelAccess::rect(bj, bi), &out)?;
            accesses += 2;
        }
    }

    // Verify against the scalar transpose.
    let got = dst.dump_row_major();
    for i in 0..N {
        for j in 0..N {
            assert_eq!(got[i * N + j], data[j * N + i], "mismatch at ({i},{j})");
        }
    }
    println!("transposed a {N}x{N} matrix with {accesses} parallel accesses");
    println!(
        "scalar equivalent: {} element moves; PolyMem: {} accesses x {} lanes (speedup {}x)",
        N * N,
        accesses,
        p * q,
        2 * N * N / accesses
    );

    // Contrast: the same read is *rejected* on a scheme without transpose
    // support — the type system of access patterns at work.
    let cfg_reo = PolyMemConfig::new(N, N, p, q, AccessScheme::ReO, 1)?;
    let mut reo = PolyMem::<u64>::new(cfg_reo)?;
    reo.load_row_major(&data)?;
    let err = reo
        .read(
            0,
            ParallelAccess::new(0, 0, AccessPattern::TransposedRectangle),
        )
        .unwrap_err();
    println!("on ReO the transposed read is refused: {err}");
    Ok(())
}
