//! The paper's Fig. 2, executable: ten regions of different shapes laid out
//! in one 2D address space, each read with the minimum number of parallel
//! accesses ("each of these regions can be read using one (R1-R9) or
//! several (R0) parallel accesses").
//!
//! Run with: `cargo run -p polymem-apps --example fig2_regions`

use polymem::region::fig2_regions;
use polymem::{analyse, AccessScheme, ModuleAssignment, PolyMem, PolyMemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A space big enough for all ten regions, 2x4 banks, RoCo for rows +
    // columns + aligned rectangles (diagonals analysed separately below).
    let cfg = PolyMemConfig::new(16, 16, 2, 4, AccessScheme::RoCo, 1)?;
    let mut mem = PolyMem::<u64>::new(cfg)?;
    let data: Vec<u64> = (0..cfg.capacity_elems() as u64).collect();
    mem.load_row_major(&data)?;

    println!(
        "Fig. 2: ten regions, one memory ({} banks, {} scheme)\n",
        cfg.lanes(),
        cfg.scheme
    );
    println!(
        "{:<4} {:<22} {:>9} {:>18}",
        "name", "shape", "elements", "parallel accesses"
    );

    let maf = ModuleAssignment::new(cfg.scheme, cfg.p, cfg.q);
    for region in fig2_regions() {
        let coords = region.coords()?;
        // Execute the region read; shapes the RoCo scheme can't serve
        // directly (diagonals) get a conflict analysis instead.
        let accesses = match mem.read_region(0, &region) {
            Ok(vals) => {
                assert_eq!(vals.len(), region.len());
                for (&(i, j), &v) in coords.iter().zip(&vals) {
                    assert_eq!(v, (i * 16 + j) as u64);
                }
                region.plan_accesses(cfg.p, cfg.q)?.len().to_string()
            }
            Err(_) => {
                let report = analyse(&maf, &coords);
                format!(
                    "(no direct RoCo pattern: {} bank cycle(s))",
                    report.cycles_needed
                )
            }
        };
        println!(
            "{:<4} {:<28} {:>9} {:>28}",
            region.name,
            format!("{:?}", region.shape),
            region.len(),
            accesses
        );
    }

    println!(
        "\nR0 (the 4x4 matrix) needs several accesses; the strips need exactly one —\n\
         the paper's Fig. 2 claim, executed and verified on live data. Misaligned or\n\
         transposed blocks (R7, R8) and diagonals (R5, R6) fall outside RoCo's direct\n\
         patterns; the conflict analysis shows what they would cost bank-serially."
    );
    println!(
        "Diagonal regions (R5, R6) conflict on RoCo; converting the memory to ReRo\n\
         serves them in one access each (see `convert_scheme`)."
    );
    // Prove that claim too.
    let mut rero = mem.convert_scheme(AccessScheme::ReRo)?;
    let d = rero.read(
        0,
        polymem::ParallelAccess::new(4, 4, polymem::AccessPattern::MainDiagonal),
    )?;
    assert_eq!(d.len(), 8);
    println!(
        "...verified: the R5 diagonal read returned {} elements in one access.",
        d.len()
    );
    Ok(())
}
