//! Application-driven design-space exploration: the paper's §III-A flow
//! end-to-end. Take an application access trace, find the optimal schedule
//! per (scheme, geometry), pick the best configuration by speedup and
//! efficiency, then synthesize it on the FPGA model.
//!
//! Run with: `cargo run -p polymem-apps --example dse_explore --release`

use fpga_model::synthesize_vectis;
use polymem::PolyMemConfig;
use scheduler::{best, sweep, AccessTrace, SweepOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The application: a blocked matrix kernel that sweeps rows of one
    // operand and columns of the other (think matrix-vector products).
    let mut coords = Vec::new();
    for i in 0..16 {
        for j in 0..16 {
            if i % 4 == 0 || j % 8 == 3 {
                coords.push((i, j));
            }
        }
    }
    let trace = AccessTrace::from_coords(coords);
    println!(
        "application trace: {} elements over a {}x{} footprint",
        trace.len(),
        trace.rows(),
        trace.cols()
    );

    // Schedule search over schemes and bank grids.
    let opts = SweepOptions {
        grids: vec![(2, 2), (2, 4), (2, 8)],
        node_budget: 100_000,
    };
    let results = sweep(&trace, trace.rows(), trace.cols(), &opts);
    println!(
        "\n{:<6} {:>5} {:>9} {:>8} {:>11} {:>8}",
        "Scheme", "Grid", "Accesses", "Speedup", "Efficiency", "Optimal"
    );
    for r in &results {
        match r.metrics {
            Some(m) => println!(
                "{:<6} {:>2}x{:<2} {:>9} {:>8.2} {:>11.2} {:>8}",
                r.scheme.name(),
                r.p,
                r.q,
                m.schedule_len,
                m.speedup,
                m.efficiency,
                if r.proved_optimal { "yes" } else { "no" }
            ),
            None => println!(
                "{:<6} {:>2}x{:<2} {:>9}",
                r.scheme.name(),
                r.p,
                r.q,
                "cannot serve"
            ),
        }
    }

    let winner = best(&results).expect("at least one feasible configuration");
    let m = winner.metrics.unwrap();
    println!(
        "\nselected: {} on a {}x{} grid — {} accesses, speedup {:.2}, efficiency {:.2}",
        winner.scheme, winner.p, winner.q, m.schedule_len, m.speedup, m.efficiency
    );

    // Synthesize the chosen configuration (512 KB capacity) on the Vectis.
    let cfg = PolyMemConfig::from_capacity(512 * 1024, winner.p, winner.q, winner.scheme, 1)?;
    let report = synthesize_vectis(&cfg);
    println!(
        "synthesis: {:.0} MHz, {:.1} GB/s per port, logic {:.1}%, BRAM {:.1}%, feasible: {}",
        report.fmax_mhz,
        report.write_bandwidth_gbps(),
        report.utilization.logic_pct,
        report.utilization.bram_pct,
        report.feasible
    );
    println!(
        "projected kernel data rate: {:.2} GB/s effective ({:.0}% lane efficiency)",
        report.write_bandwidth_gbps() * m.efficiency,
        100.0 * m.efficiency
    );
    Ok(())
}
