//! Quickstart: create a PolyMem, exercise the multiview parallel accesses
//! of Fig. 2, and inspect the bank distribution.
//!
//! Run with: `cargo run -p polymem-apps --example quickstart`

use polymem::{AccessPattern, AccessScheme, ParallelAccess, PolyMem, PolyMemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8 x 16 matrix of 64-bit values over a 2 x 4 bank grid (8 lanes).
    // ReRo gives conflict-free rectangles, rows and both diagonals.
    let cfg = PolyMemConfig::new(8, 16, 2, 4, AccessScheme::ReRo, 1)?;
    let mut mem = PolyMem::<u64>::new(cfg)?;
    println!(
        "PolyMem: {}x{} elements, {} banks ({}x{}), scheme {}, {} KB",
        cfg.rows,
        cfg.cols,
        cfg.lanes(),
        cfg.p,
        cfg.q,
        cfg.scheme,
        cfg.capacity_bytes() / 1024
    );

    // Fill the whole matrix with unique values (the paper's DSE validation).
    let data: Vec<u64> = (0..cfg.capacity_elems() as u64).collect();
    mem.load_row_major(&data)?;

    // One parallel access moves 8 elements, whatever the shape.
    let row = mem.read(0, ParallelAccess::row(3, 4))?;
    println!("row(3, 4..12)         = {row:?}");

    let rect = mem.read(0, ParallelAccess::rect(2, 5))?;
    println!("rect 2x4 @(2,5)       = {rect:?}");

    let diag = mem.read(0, ParallelAccess::new(0, 2, AccessPattern::MainDiagonal))?;
    println!("main diagonal @(0,2)  = {diag:?}");

    let anti = mem.read(
        0,
        ParallelAccess::new(0, 9, AccessPattern::SecondaryDiagonal),
    )?;
    println!("secondary diag @(0,9) = {anti:?}");

    // Writes use the same shapes. Scale row 3 by 100 through a row access.
    let scaled: Vec<u64> = row.iter().map(|v| v * 100).collect();
    mem.write(ParallelAccess::row(3, 4), &scaled)?;
    assert_eq!(mem.get(3, 4)?, row[0] * 100);
    println!("row 3 rescaled through one parallel write");

    // The scheme protects you from patterns it cannot serve conflict-free:
    let err = mem.read(0, ParallelAccess::col(0, 0)).unwrap_err();
    println!("column on ReRo is rejected: {err}");

    // Banks stay perfectly balanced: every bank holds exactly 1/8 of the data.
    let depth = cfg.bank_depth();
    println!(
        "each of the {} banks holds {} elements ({} accesses worth)",
        cfg.lanes(),
        depth,
        depth
    );
    let stats = mem.stats();
    println!(
        "served {} parallel reads / {} writes ({} elements total)",
        stats.reads,
        stats.writes,
        stats.elements_read + stats.elements_written
    );
    Ok(())
}
