//! Blocked matrix multiplication fed by PolyMem's multiview accesses —
//! the workload family behind the PRF's original case studies (SARC, CG).
//!
//! `C = A * B` walks rows of `A` and columns of `B`. On a RoCo PolyMem
//! both are single-cycle parallel accesses from the *same* memory — no
//! transposed copy of `B`, no strided scalar loads. With 2 read ports the
//! row and the column issue in the same cycle.
//!
//! Run with: `cargo run -p polymem-apps --example matrix_multiply --release`

use polymem::{AccessScheme, ParallelAccess, PolyMem, PolyMemConfig};

const N: usize = 32; // matrix side, multiple of LANES
const LANES: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A lives in rows [0, N); B in rows [N, 2N) of one PolyMem.
    let cfg = PolyMemConfig::new(2 * N, N, 2, 4, AccessScheme::RoCo, 2)?;
    let mut mem = PolyMem::<u64>::new(cfg)?;

    let a: Vec<f64> = (0..N * N).map(|k| ((k * 7) % 23) as f64 * 0.5).collect();
    let b: Vec<f64> = (0..N * N).map(|k| ((k * 5) % 19) as f64 - 9.0).collect();
    for i in 0..N {
        for j in 0..N {
            mem.set(i, j, a[i * N + j].to_bits())?;
            mem.set(N + i, j, b[i * N + j].to_bits())?;
        }
    }

    // C = A * B, one dot product at a time, operands fetched 8-wide.
    let mut c = vec![0.0f64; N * N];
    let mut row_buf = vec![0u64; LANES];
    let mut col_buf = vec![0u64; LANES];
    let mut parallel_reads = 0u64;
    for i in 0..N {
        for j in 0..N {
            let mut acc = 0.0;
            for k0 in (0..N).step_by(LANES) {
                // Row chunk of A on port 0, column chunk of B on port 1:
                // one cycle of the dual-port memory per 8 multiply-adds.
                mem.read_into(0, ParallelAccess::row(i, k0), &mut row_buf)?;
                mem.read_into(1, ParallelAccess::col(N + k0, j), &mut col_buf)?;
                parallel_reads += 2;
                for l in 0..LANES {
                    acc += f64::from_bits(row_buf[l]) * f64::from_bits(col_buf[l]);
                }
            }
            c[i * N + j] = acc;
        }
    }

    // Verify against the scalar reference.
    let mut max_err = 0.0f64;
    for i in 0..N {
        for j in 0..N {
            let mut want = 0.0;
            for k in 0..N {
                want += a[i * N + k] * b[k * N + j];
            }
            max_err = max_err.max((c[i * N + j] - want).abs());
        }
    }
    assert!(max_err < 1e-9, "max error {max_err}");
    println!("C = A*B for {N}x{N}: exact match with the scalar reference");
    println!(
        "operand fetches: {} parallel reads x {LANES} lanes = {} elements \
         (a scalar memory would issue {} loads)",
        parallel_reads,
        parallel_reads * LANES as u64,
        2 * N * N * N
    );
    println!(
        "with 2 read ports the row/column pairs co-issue: {} memory cycles, {}x fewer than scalar",
        parallel_reads / 2,
        (2 * N * N * N) as u64 / (parallel_reads / 2)
    );

    // The same loop on a rows-only scheme needs B transposed or per-element
    // gathers; PolyMem's analysis tools quantify the gap:
    let col_coords: Vec<(usize, usize)> = (0..LANES).map(|k| (N + k, 0)).collect();
    for (scheme, report) in polymem::rank_schemes(2, 4, &col_coords) {
        println!(
            "  {:<5} needs {} cycle(s) for one 8-element column",
            scheme.name(),
            report.cycles_needed
        );
    }
    Ok(())
}
