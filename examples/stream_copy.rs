//! End-to-end STREAM-Copy on the cycle-level DFE simulator — the paper's
//! §V experiment in miniature: Load, 1000 measured Copy runs, Offload,
//! verification, and the bandwidth report.
//!
//! Run with: `cargo run -p polymem-apps --example stream_copy --release`

use stream_bench::{StreamApp, StreamLayout, StreamOp, PAPER_STREAM_FREQ_MHZ};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 64 rows x 512 cols = 256 KB per vector.
    let n = 64 * 512;
    let layout = StreamLayout::paper_geometry(n)?;
    println!(
        "STREAM-Copy: {} doubles/vector ({} KB), PolyMem {}x{} {} @ {} MHz, {} read ports",
        n,
        n * 8 / 1024,
        layout.config.rows,
        layout.config.cols,
        layout.config.scheme,
        PAPER_STREAM_FREQ_MHZ,
        layout.config.read_ports
    );

    let mut app = StreamApp::new(StreamOp::Copy, layout, PAPER_STREAM_FREQ_MHZ)?;

    // Load stage.
    let a: Vec<f64> = (0..n).map(|k| (k as f64).sin()).collect();
    let zeros = vec![0.0; n];
    let t_load = app.load(&a, &zeros, &zeros)?;
    println!("Load stage: {:.1} us over PCIe", t_load / 1000.0);

    // Measured Copy stage: 1000 blocking runs, as the paper does.
    let timing = app.measure(1000);
    println!(
        "Copy stage: {} cycles/run, {:.2} us/run incl. 300 ns host overhead",
        timing.cycles_per_run,
        timing.time_per_run_ns / 1000.0
    );
    println!(
        "Aggregated bandwidth: {:.0} MB/s = {:.2}% of the {:.0} MB/s theoretical peak",
        timing.bandwidth_mbps,
        100.0 * timing.fraction_of_peak(),
        timing.peak_mbps
    );

    // Offload + verify.
    let (c, t_off) = app.offload();
    assert_eq!(c, a, "C must be an exact copy of A");
    assert!(app.errors().is_empty());
    println!(
        "Offload stage: {:.1} us; copy verified element-exact",
        t_off / 1000.0
    );

    let stats = app.host_stats();
    println!(
        "Host: {} blocking calls, {} KB to DFE, {} KB from DFE",
        stats.calls,
        stats.bytes_to_dfe / 1024,
        stats.bytes_from_dfe / 1024
    );
    Ok(())
}
