//! Conjugate Gradient on a PolyMem-resident banded matrix — the workload of
//! the PRF lineage's CG case study (paper ref [26]), here solving the 1D
//! Poisson problem with the tridiagonal Laplacian fetched through diagonal
//! parallel accesses.
//!
//! Run with: `cargo run -p polymem-apps --example conjugate_gradient --release`

use polymem::BandedMatrix;

const N: usize = 256;

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A = tridiag(-1, 2, -1): SPD, the 1D Laplacian.
    let mut a = BandedMatrix::new(N, 1, 2, 4)?;
    a.set_band(0, &vec![2.0; N])?;
    a.set_band(1, &vec![-1.0; N - 1])?;
    a.set_band(-1, &vec![-1.0; N - 1])?;

    // Right-hand side: a point source in the middle.
    let mut b = vec![0.0; N];
    b[N / 2] = 1.0;

    // Conjugate gradient.
    let mut x = vec![0.0; N];
    let mut r = b.clone();
    let mut p = r.clone();
    let mut rs_old = dot(&r, &r);
    let mut ap = vec![0.0; N];
    let mut iterations = 0usize;
    let mut mem_accesses = 0u64;
    for _ in 0..2 * N {
        mem_accesses += a.spmv(&p, &mut ap)?;
        let alpha = rs_old / dot(&p, &ap);
        for i in 0..N {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new = dot(&r, &r);
        iterations += 1;
        if rs_new.sqrt() < 1e-10 {
            break;
        }
        let beta = rs_new / rs_old;
        for i in 0..N {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }

    // Verify: residual of the produced solution against the matrix.
    let mut check = vec![0.0; N];
    a.spmv(&x, &mut check)?;
    let residual: f64 = check
        .iter()
        .zip(&b)
        .map(|(ax, bi)| (ax - bi) * (ax - bi))
        .sum::<f64>()
        .sqrt();
    assert!(residual < 1e-8, "CG did not converge: residual {residual}");

    println!("CG on the {N}x{N} tridiagonal Laplacian: converged in {iterations} iterations");
    println!("final residual ||Ax - b|| = {residual:.2e}");
    println!(
        "matrix traffic: {mem_accesses} diagonal parallel accesses x 8 lanes \
         (vs {} scalar loads a linear memory would need)",
        iterations as u64 * (3 * N as u64 - 2)
    );
    // The solution of the point-source Poisson problem is a tent function;
    // check its peak sits at the source.
    let peak = x
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    println!("solution peak at index {peak} (source at {})", N / 2);
    assert_eq!(peak, N / 2);
    Ok(())
}
