//! Offline stub of `serde_derive`.
//!
//! The real derive macros generate `Serialize`/`Deserialize` impls. The stub
//! `serde` crate (see `vendor/serde`) provides those traits with blanket
//! impls, so the derives here expand to nothing: any type that derives them
//! already satisfies the trait bounds. `#[serde(...)]` helper attributes are
//! accepted and ignored.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
