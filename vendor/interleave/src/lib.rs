//! Vendored loom-style bounded interleaving explorer.
//!
//! `interleave` runs a closure under **every** thread interleaving (up to
//! configurable bounds) and checks each schedule with a vector-clock
//! happens-before detector. It exists so `polymem`'s hand-rolled concurrent
//! paths — two-phase banded reads, racing-writer `copy_region`, the
//! Relaxed-ordering telemetry counters — can be *proven* sound over the full
//! schedule space of small scenarios instead of stress-tested and hoped at.
//!
//! Like the rest of `vendor/`, this is an offline, dependency-free stub in
//! the spirit of the real crate it mirrors (`loom`), implementing exactly
//! the mechanism this workspace needs:
//!
//! - [`Explorer::explore`] — deterministic DFS over scheduling decisions.
//!   Managed threads are real OS threads serialized by a baton protocol:
//!   exactly one runs at a time, parking at every instrumented operation so
//!   the scheduler can branch. The decision path is recorded, replayed, and
//!   backtracked until the space is exhausted.
//! - [`sync`] — drop-in `AtomicU64`/`AtomicI64`/`AtomicBool`/`RwLock` whose
//!   operations are scheduling points, plus [`sync::RaceCell`] for plain
//!   data whose accesses must be proven ordered.
//! - The checker flags happens-before races on plain data, lost updates
//!   (load/store atomics interleaved with a foreign store), deadlocks, and
//!   model panics (failed oracle assertions), each with the failing
//!   schedule attached.
//!
//! Release/acquire semantics follow the C++11 model restricted to the
//! sequentially-consistent executions the explorer generates: acquire loads
//! join the release clock of the location's current release sequence, a
//! foreign relaxed store breaks the sequence, RMWs continue it.

pub mod clock;
mod exec;
pub mod sync;

pub use exec::{spawn, yield_now, Explorer, Failure, FailureKind, JoinHandle, Report};

#[cfg(test)]
mod tests {
    use super::sync::{AtomicBool, AtomicU64, RaceCell, RwLock};
    use super::*;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    #[test]
    fn explores_multiple_schedules_and_passes_clean_model() {
        let report = Explorer::new().explore("two-incrementers", || {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&c);
            let t = spawn(move || {
                c2.fetch_add(1, Ordering::Relaxed);
            });
            c.fetch_add(1, Ordering::Relaxed);
            t.join();
            assert_eq!(c.load(Ordering::Relaxed), 2);
        });
        assert!(report.ok(), "{report:?}");
        assert!(report.schedules > 1, "expected branching, {report:?}");
    }

    #[test]
    fn detects_write_write_race_on_plain_data() {
        let report = Explorer::new().explore("ww-race", || {
            let cell = Arc::new(RaceCell::new("shared", 0u64));
            let c2 = Arc::clone(&cell);
            let t = spawn(move || c2.set(1));
            cell.set(2);
            t.join();
        });
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.kind == FailureKind::HbRace),
            "{report:?}"
        );
    }

    #[test]
    fn lock_protected_plain_data_is_race_free() {
        let report = Explorer::new().explore("locked", || {
            let lock = Arc::new(RwLock::new(()));
            let cell = Arc::new(RaceCell::new("guarded", 0u64));
            let (l2, c2) = (Arc::clone(&lock), Arc::clone(&cell));
            let t = spawn(move || {
                let g = l2.write();
                c2.set(c2.get() + 1);
                drop(g);
            });
            {
                let g = lock.write();
                cell.set(cell.get() + 1);
                drop(g);
            }
            t.join();
            assert_eq!(cell.get(), 2);
        });
        assert!(report.ok(), "{report:?}");
        assert!(report.schedules > 1, "{report:?}");
    }

    #[test]
    fn release_acquire_flag_orders_plain_data() {
        let report = Explorer::new().explore("message-passing", || {
            let flag = Arc::new(AtomicBool::new(false));
            let data = Arc::new(RaceCell::new("payload", 0u64));
            let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
            let t = spawn(move || {
                d2.set(42);
                f2.store(true, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) {
                assert_eq!(data.get(), 42);
            }
            t.join();
        });
        assert!(report.ok(), "{report:?}");
    }

    #[test]
    fn relaxed_flag_does_not_order_plain_data() {
        let report = Explorer::new().explore("broken-message-passing", || {
            let flag = Arc::new(AtomicBool::new(false));
            let data = Arc::new(RaceCell::new("payload", 0u64));
            let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
            let t = spawn(move || {
                d2.set(42);
                f2.store(true, Ordering::Relaxed);
            });
            if flag.load(Ordering::Relaxed) {
                let _ = data.get();
            }
            t.join();
        });
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.kind == FailureKind::HbRace),
            "{report:?}"
        );
    }

    #[test]
    fn detects_lost_update_on_load_store_counter() {
        let report = Explorer::new().explore("lost-update", || {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&c);
            let bump = |a: &AtomicU64| {
                let v = a.load(Ordering::Relaxed);
                a.store(v + 1, Ordering::Relaxed);
            };
            let t = spawn(move || bump(&c2));
            bump(&c);
            t.join();
        });
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.kind == FailureKind::LostUpdate),
            "{report:?}"
        );
    }

    #[test]
    fn detects_lock_order_deadlock() {
        let report = Explorer::new().explore("abba-deadlock", || {
            let a = Arc::new(RwLock::new(0u64));
            let b = Arc::new(RwLock::new(0u64));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = spawn(move || {
                let gb = b2.write();
                let ga = a2.write();
                drop((ga, gb));
            });
            let ga = a.write();
            let gb = b.write();
            drop((gb, ga));
            t.join();
        });
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.kind == FailureKind::Deadlock),
            "{report:?}"
        );
    }

    #[test]
    fn join_establishes_happens_before() {
        let report = Explorer::new().explore("join-hb", || {
            let cell = Arc::new(RaceCell::new("handoff", 0u64));
            let c2 = Arc::clone(&cell);
            let t = spawn(move || c2.set(7));
            t.join();
            assert_eq!(cell.get(), 7);
        });
        assert!(report.ok(), "{report:?}");
    }

    #[test]
    fn reader_parallelism_is_allowed_under_rwlock() {
        let report = Explorer::new().explore("two-readers", || {
            let lock = Arc::new(RwLock::new(5u64));
            let l2 = Arc::clone(&lock);
            let t = spawn(move || *l2.read());
            let mine = *lock.read();
            let theirs = t.join();
            assert_eq!(mine + theirs, 10);
        });
        assert!(report.ok(), "{report:?}");
    }

    #[test]
    fn oracle_panic_is_reported_with_schedule() {
        let report = Explorer::new().explore("failing-oracle", || {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&c);
            let t = spawn(move || {
                c2.store(1, Ordering::Relaxed);
            });
            // Wrong oracle: asserts the spawned store already landed.
            assert_eq!(c.load(Ordering::Relaxed), 1, "store not yet visible");
            t.join();
        });
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.kind == FailureKind::Panic && !f.schedule.is_empty()),
            "{report:?}"
        );
    }

    #[test]
    fn outside_model_types_degrade_to_raw_ops() {
        let a = AtomicU64::new(1);
        assert_eq!(a.fetch_add(2, Ordering::Relaxed), 1);
        assert_eq!(a.load(Ordering::Acquire), 3);
        let l = RwLock::new(vec![1u8, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read()[2], 3);
        let c = RaceCell::new("solo", 9u32);
        c.set(10);
        assert_eq!(c.get(), 10);
    }
}
