//! Vector clocks: the partial order underlying the happens-before checker.
//!
//! Each managed thread `t` owns component `t` of every clock. A thread's own
//! component (its *epoch*) advances on release-type operations (guard
//! release, release store, spawn), so every memory access performed between
//! two releases carries the same epoch — the classic FastTrack/TSan framing.
//! Synchronization objects (locks, release sequences) carry a clock that
//! acquire-type operations join into the acquiring thread's clock.

/// A grow-on-demand vector clock. Missing components read as 0, and epoch 0
/// means "never observed", so fresh clocks are trivially ordered before
/// everything.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VecClock {
    slots: Vec<u64>,
}

impl VecClock {
    /// The empty clock (all components 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Component `i` of the clock.
    pub fn get(&self, i: usize) -> u64 {
        self.slots.get(i).copied().unwrap_or(0)
    }

    /// Advance component `i` by one.
    pub fn bump(&mut self, i: usize) {
        if self.slots.len() <= i {
            self.slots.resize(i + 1, 0);
        }
        self.slots[i] += 1;
    }

    /// Pointwise maximum: `self := self ⊔ other`.
    pub fn join(&mut self, other: &VecClock) {
        if self.slots.len() < other.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (a, b) in self.slots.iter_mut().zip(&other.slots) {
            *a = (*a).max(*b);
        }
    }

    /// Whether `self ≤ other` pointwise (self happens-before-or-equals other).
    pub fn le(&self, other: &VecClock) -> bool {
        self.slots
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_order() {
        let mut a = VecClock::new();
        a.bump(0);
        a.bump(0);
        let mut b = VecClock::new();
        b.bump(1);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.le(&j));
        assert!(b.le(&j));
        assert_eq!(j.get(0), 2);
        assert_eq!(j.get(1), 1);
        assert_eq!(j.get(7), 0);
    }
}
