//! Model synchronization types: drop-in atomics and an `RwLock` whose every
//! operation is a scheduling point, plus `RaceCell` for plain (non-atomic)
//! data whose accesses the vector-clock checker must prove ordered.
//!
//! Outside a model run every type degrades to the raw `std` operation with
//! only a thread-local lookup of overhead, so code routed through this
//! module behaves identically when the explorer is not driving it.

use crate::exec::{self, Op};
use std::cell::UnsafeCell;
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::{PoisonError, TryLockError};

macro_rules! model_atomic {
    ($name:ident, $raw:ty, $prim:ty) => {
        /// Instrumented atomic: loads, stores and RMWs are scheduling points
        /// inside a model run and feed the happens-before checker.
        #[derive(Default)]
        pub struct $name {
            inner: $raw,
        }

        impl $name {
            /// New atomic with the given initial value.
            pub const fn new(v: $prim) -> Self {
                Self {
                    inner: <$raw>::new(v),
                }
            }

            fn id(&self) -> usize {
                &self.inner as *const $raw as usize
            }

            /// Atomic load; acquire-ish orderings join the location's
            /// release clock into the calling thread's clock.
            #[inline]
            pub fn load(&self, ord: Ordering) -> $prim {
                exec::hook(Op::AtomicLoad { id: self.id(), ord });
                self.inner.load(ord)
            }

            /// Atomic store; checked against a prior load for lost updates.
            #[inline]
            pub fn store(&self, v: $prim, ord: Ordering) {
                exec::hook(Op::AtomicStore { id: self.id(), ord });
                self.inner.store(v, ord)
            }

            /// Atomic fetch-add (never a lost update: reads the latest).
            #[inline]
            pub fn fetch_add(&self, v: $prim, ord: Ordering) -> $prim {
                exec::hook(Op::AtomicRmw { id: self.id(), ord });
                self.inner.fetch_add(v, ord)
            }

            /// Atomic fetch-sub.
            #[inline]
            pub fn fetch_sub(&self, v: $prim, ord: Ordering) -> $prim {
                exec::hook(Op::AtomicRmw { id: self.id(), ord });
                self.inner.fetch_sub(v, ord)
            }

            /// Non-instrumented read for single-threaded contexts.
            pub fn get_mut(&mut self) -> &mut $prim {
                self.inner.get_mut()
            }

            /// Consume and return the value.
            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.debug_tuple(stringify!($name))
                    .field(&self.inner.load(Ordering::Relaxed))
                    .finish()
            }
        }
    };
}

model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
model_atomic!(AtomicI64, std::sync::atomic::AtomicI64, i64);
model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

/// Instrumented `AtomicBool` (no fetch-add family).
#[derive(Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// New flag with the given initial value.
    pub const fn new(v: bool) -> Self {
        Self {
            inner: std::sync::atomic::AtomicBool::new(v),
        }
    }

    fn id(&self) -> usize {
        &self.inner as *const std::sync::atomic::AtomicBool as usize
    }

    /// Atomic load (see [`AtomicU64::load`]).
    #[inline]
    pub fn load(&self, ord: Ordering) -> bool {
        exec::hook(Op::AtomicLoad { id: self.id(), ord });
        self.inner.load(ord)
    }

    /// Atomic store (see [`AtomicU64::store`]).
    #[inline]
    pub fn store(&self, v: bool, ord: Ordering) {
        exec::hook(Op::AtomicStore { id: self.id(), ord });
        self.inner.store(v, ord)
    }

    /// Atomic swap (an RMW: reads the latest value).
    #[inline]
    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        exec::hook(Op::AtomicRmw { id: self.id(), ord });
        self.inner.swap(v, ord)
    }

    /// Non-instrumented read for single-threaded contexts.
    pub fn get_mut(&mut self) -> &mut bool {
        self.inner.get_mut()
    }
}

impl fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("AtomicBool")
            .field(&self.inner.load(Ordering::Relaxed))
            .finish()
    }
}

/// Instrumented reader-writer lock with the `parking_lot` API shape
/// (non-poisoning, guards returned directly). Acquisition is a blocking
/// scheduling point; release is a clock-only happens-before edge.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// New lock owning `t`.
    pub const fn new(t: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(t),
        }
    }

    /// Consume the lock, returning the data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    fn id(&self) -> usize {
        &self.inner as *const std::sync::RwLock<T> as *const () as usize
    }

    /// Acquire a shared guard (scheduling point inside a model run).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        if exec::in_model() {
            exec::hook(Op::LockAcquire {
                id: self.id(),
                write: false,
            });
            let inner = match self.inner.try_read() {
                Ok(g) => g,
                Err(TryLockError::Poisoned(p)) => p.into_inner(),
                Err(TryLockError::WouldBlock) => {
                    unreachable!("interleave: real lock state diverged from the model")
                }
            };
            RwLockReadGuard {
                inner,
                id: self.id(),
                hooked: true,
            }
        } else {
            RwLockReadGuard {
                inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
                id: 0,
                hooked: false,
            }
        }
    }

    /// Acquire an exclusive guard (scheduling point inside a model run).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        if exec::in_model() {
            exec::hook(Op::LockAcquire {
                id: self.id(),
                write: true,
            });
            let inner = match self.inner.try_write() {
                Ok(g) => g,
                Err(TryLockError::Poisoned(p)) => p.into_inner(),
                Err(TryLockError::WouldBlock) => {
                    unreachable!("interleave: real lock state diverged from the model")
                }
            };
            RwLockWriteGuard {
                inner,
                id: self.id(),
                hooked: true,
            }
        } else {
            RwLockWriteGuard {
                inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
                id: 0,
                hooked: false,
            }
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// Shared guard; dropping it records the release edge before unlocking.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    id: usize,
    hooked: bool,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        // The logical release runs before the field drop unlocks for real;
        // only the current thread runs, so the window is unobservable.
        if self.hooked {
            exec::hook_release(self.id, false);
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Exclusive guard; dropping it records the release edge before unlocking.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    id: usize,
    hooked: bool,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.hooked {
            exec::hook_release(self.id, true);
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Plain-data cell for model scenarios: every access is declared to the
/// happens-before checker, which fails the schedule if two accesses (at
/// least one a write, from different threads) are unordered.
///
/// `Sync` is asserted so models can share it across managed threads; the
/// explorer runs exactly one thread at a time, so even a schedule with a
/// detected race never performs a physically concurrent access. Do not
/// share a `RaceCell` across threads outside a model run.
pub struct RaceCell<T> {
    label: &'static str,
    inner: UnsafeCell<T>,
}

// SAFETY: all cross-thread access happens inside a model run, where the
// baton scheduler serializes every instrumented operation.
unsafe impl<T: Send> Send for RaceCell<T> {}
unsafe impl<T: Send> Sync for RaceCell<T> {}

impl<T> RaceCell<T> {
    /// New cell. `label` names the location in race reports.
    pub fn new(label: &'static str, v: T) -> Self {
        Self {
            label,
            inner: UnsafeCell::new(v),
        }
    }

    fn id(&self) -> usize {
        self.inner.get() as usize
    }

    /// Read the value (a checked plain load).
    pub fn get(&self) -> T
    where
        T: Copy,
    {
        exec::hook(Op::CellRead {
            id: self.id(),
            label: self.label,
        });
        unsafe { *self.inner.get() }
    }

    /// Overwrite the value (a checked plain store).
    pub fn set(&self, v: T) {
        exec::hook(Op::CellWrite {
            id: self.id(),
            label: self.label,
        });
        unsafe { *self.inner.get() = v }
    }

    /// Read through a closure (a checked plain load; no `Copy` bound).
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        exec::hook(Op::CellRead {
            id: self.id(),
            label: self.label,
        });
        f(unsafe { &*self.inner.get() })
    }

    /// Mutate through a closure (a checked plain store).
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        exec::hook(Op::CellWrite {
            id: self.id(),
            label: self.label,
        });
        f(unsafe { &mut *self.inner.get() })
    }
}

impl<T: fmt::Debug> fmt::Debug for RaceCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RaceCell")
            .field("label", &self.label)
            .finish()
    }
}
