//! The execution engine: one deterministic schedule of a model run.
//!
//! Managed threads are real OS threads driven by a baton-passing protocol:
//! exactly one thread is ever *granted* (running user code) at a time. Every
//! instrumented operation is a *yield point* — the thread parks, the
//! scheduler picks the next runnable thread (replaying the recorded decision
//! path, or extending it with the first runnable choice), applies the
//! operation's vector-clock effects, and grants it. Guard releases are
//! clock-only updates, not scheduling points, which keeps the schedule space
//! bounded without losing any acquire-side interleavings.

use crate::clock::VecClock;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};

/// Panic payload used to unwind managed threads out of an aborted schedule.
/// Never surfaces to user code: the thread wrappers swallow it.
pub(crate) struct AbortToken;

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// One instrumented operation, declared at a yield point before it runs.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// First grant of a freshly spawned thread.
    Start,
    /// Atomic load; acquire-ish orderings join the location's release clock.
    AtomicLoad { id: usize, ord: Ordering },
    /// Atomic store; checked for lost updates against a prior load.
    AtomicStore { id: usize, ord: Ordering },
    /// Atomic read-modify-write (always reads the latest value).
    AtomicRmw { id: usize, ord: Ordering },
    /// Blocking lock acquisition (read or write).
    LockAcquire { id: usize, write: bool },
    /// Plain (non-atomic) read of a `RaceCell`.
    CellRead { id: usize, label: &'static str },
    /// Plain (non-atomic) write of a `RaceCell`.
    CellWrite { id: usize, label: &'static str },
    /// Join on a managed thread; runnable once the target finished.
    Join { tid: usize },
    /// Explicit scheduling point with no memory effect.
    Yield,
}

/// What went wrong in one explored schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// Two plain accesses to the same cell unordered by happens-before.
    HbRace,
    /// A store overwrote a value the thread never observed (load/store
    /// interleaved with a foreign store).
    LostUpdate,
    /// No runnable thread while some thread is still live.
    Deadlock,
    /// A managed thread panicked (oracle assertion failure in the model).
    Panic,
    /// The schedule exceeded the step budget.
    StepLimit,
    /// Replay diverged from the recorded decision path (the model closure is
    /// not deterministic).
    Nondeterminism,
}

impl FailureKind {
    /// Stable lowercase name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            FailureKind::HbRace => "hb-race",
            FailureKind::LostUpdate => "lost-update",
            FailureKind::Deadlock => "deadlock",
            FailureKind::Panic => "panic",
            FailureKind::StepLimit => "step-limit",
            FailureKind::Nondeterminism => "nondeterminism",
        }
    }
}

/// A failure observed in one schedule, with the decision path that produced
/// it (the sequence of thread ids granted at each choice point).
#[derive(Debug, Clone)]
pub struct Failure {
    /// What class of violation this is.
    pub kind: FailureKind,
    /// Human-readable description naming the location and threads.
    pub detail: String,
    /// Thread id granted at each choice point of the failing schedule.
    pub schedule: Vec<usize>,
}

/// One decision point: the thread granted and the runnable alternatives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Choice {
    pub taken: usize,
    pub alts: Vec<usize>,
}

#[derive(Debug)]
enum TState {
    /// Parked at a yield point, waiting to be granted `Op`.
    Ready(Op),
    /// Granted: executing user code until the next yield point.
    Running,
    /// The thread's closure returned (or unwound).
    Finished,
}

struct ThreadSlot {
    state: TState,
    /// Last atomic version observed per location (for lost-update checks).
    last_load: HashMap<usize, u64>,
}

#[derive(Default)]
struct LockState {
    readers: Vec<usize>,
    writer: Option<usize>,
    clock: VecClock,
}

#[derive(Default)]
struct AtomicMeta {
    /// Release clock: what an acquire-load of the current value synchronizes
    /// with. Cleared when a foreign relaxed store breaks the release
    /// sequence.
    sync: VecClock,
    /// Owner of the release sequence `sync` belongs to.
    sync_writer: Option<usize>,
    /// Monotone store counter (RMWs included).
    version: u64,
    last_writer: Option<usize>,
}

struct CellMeta {
    label: &'static str,
    writer: Option<usize>,
    /// Writer's epoch at the last write.
    write_epoch: u64,
    /// Per-thread epoch of the last read (0 = never read).
    read_epochs: Vec<u64>,
}

pub(crate) struct ExecState {
    threads: Vec<ThreadSlot>,
    clocks: Vec<VecClock>,
    locks: HashMap<usize, LockState>,
    atomics: HashMap<usize, AtomicMeta>,
    cells: HashMap<usize, CellMeta>,
    pub(crate) path: Vec<Choice>,
    depth: usize,
    steps: u64,
    max_steps: u64,
    pub(crate) failures: Vec<Failure>,
    pub(crate) aborted: bool,
    handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Execution {
    st: Mutex<ExecState>,
    cv: Condvar,
    /// Partial-order reduction: treat relaxed RMWs as transparent (checked
    /// but not branch points). See [`Execution::apply_transparent`].
    transparent_relaxed_rmw: bool,
}

impl Execution {
    /// Fresh execution replaying `path` (extended as new choice points are
    /// reached). Thread 0 is the caller, registered Running.
    pub(crate) fn new(path: Vec<Choice>, max_steps: u64, transparent_relaxed_rmw: bool) -> Self {
        let mut clock0 = VecClock::new();
        clock0.bump(0);
        Execution {
            st: Mutex::new(ExecState {
                threads: vec![ThreadSlot {
                    state: TState::Running,
                    last_load: HashMap::new(),
                }],
                clocks: vec![clock0],
                locks: HashMap::new(),
                atomics: HashMap::new(),
                cells: HashMap::new(),
                path,
                depth: 0,
                steps: 0,
                max_steps,
                failures: Vec::new(),
                aborted: false,
                handles: Vec::new(),
            }),
            cv: Condvar::new(),
            transparent_relaxed_rmw,
        }
    }

    /// Block at a yield point until granted; applies the op's clock effects.
    pub(crate) fn yield_op(&self, tid: usize, op: Op) {
        let mut st = self.st.lock().unwrap();
        if st.aborted {
            drop(st);
            std::panic::panic_any(AbortToken);
        }
        st.threads[tid].state = TState::Ready(op);
        advance(&mut st, &self.cv);
        loop {
            if st.aborted {
                drop(st);
                std::panic::panic_any(AbortToken);
            }
            if matches!(st.threads[tid].state, TState::Running) {
                return;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Apply an op's clock effects *without* a scheduling point: the
    /// calling thread keeps the baton. Used for relaxed RMWs, which commute
    /// with every other op on the same location (the final value is
    /// order-independent, no synchronization edges are carried), so
    /// branching on them multiplies the schedule space without adding
    /// distinguishable behaviors — provided their return values never steer
    /// control flow, which the verifier's contract table asserts for every
    /// declared counter site.
    pub(crate) fn apply_transparent(&self, tid: usize, op: Op) {
        let mut st = self.st.lock().unwrap();
        if st.aborted {
            drop(st);
            std::panic::panic_any(AbortToken);
        }
        apply(&mut st, tid, &op);
        if !st.failures.is_empty() {
            abort(&mut st, &self.cv);
            drop(st);
            std::panic::panic_any(AbortToken);
        }
    }

    /// Park a freshly spawned thread until its `Op::Start` is granted. Does
    /// NOT call `advance` — the parent is still running; the child becomes
    /// schedulable at the next choice point via its registered `Start` op.
    pub(crate) fn wait_first_grant(&self, tid: usize) {
        let mut st = self.st.lock().unwrap();
        loop {
            if st.aborted {
                drop(st);
                std::panic::panic_any(AbortToken);
            }
            if matches!(st.threads[tid].state, TState::Running) {
                return;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Guard release: clock-only update, not a scheduling point.
    pub(crate) fn lock_release(&self, tid: usize, id: usize, write: bool) {
        let mut st = self.st.lock().unwrap();
        let clock = st.clocks[tid].clone();
        let lock = st.locks.entry(id).or_default();
        if write {
            debug_assert_eq!(lock.writer, Some(tid));
            lock.writer = None;
        } else {
            lock.readers.retain(|&r| r != tid);
        }
        lock.clock.join(&clock);
        st.clocks[tid].bump(tid);
    }

    /// Register a new managed thread; returns its id. The parent's epoch is
    /// bumped (spawn is a release edge) and the child inherits the parent's
    /// clock.
    pub(crate) fn register_thread(&self, parent: usize) -> usize {
        let mut st = self.st.lock().unwrap();
        let tid = st.threads.len();
        st.threads.push(ThreadSlot {
            state: TState::Ready(Op::Start),
            last_load: HashMap::new(),
        });
        let mut child = st.clocks[parent].clone();
        child.bump(tid);
        st.clocks.push(child);
        st.clocks[parent].bump(parent);
        tid
    }

    pub(crate) fn push_handle(&self, h: std::thread::JoinHandle<()>) {
        self.st.lock().unwrap().handles.push(h);
    }

    /// Mark `tid` finished and hand the baton on. `panic_msg` carries a user
    /// panic (oracle failure); abort unwinds pass `None`.
    pub(crate) fn finish_thread(&self, tid: usize, panic_msg: Option<String>) {
        let mut st = self.st.lock().unwrap();
        if let Some(msg) = panic_msg {
            let schedule = taken(&st.path);
            st.failures.push(Failure {
                kind: FailureKind::Panic,
                detail: format!("thread {tid} panicked: {msg}"),
                schedule,
            });
            st.aborted = true;
        }
        st.threads[tid].state = TState::Finished;
        advance(&mut st, &self.cv);
    }

    /// Block (on the caller's OS thread, outside the baton protocol) until
    /// every managed thread finished, then return the run's outcome.
    pub(crate) fn wait_all_finished(&self) -> (Vec<Choice>, Vec<Failure>) {
        let mut st = self.st.lock().unwrap();
        while !st
            .threads
            .iter()
            .all(|t| matches!(t.state, TState::Finished))
        {
            st = self.cv.wait(st).unwrap();
        }
        let handles = std::mem::take(&mut st.handles);
        let path = std::mem::take(&mut st.path);
        let failures = std::mem::take(&mut st.failures);
        drop(st);
        for h in handles {
            let _ = h.join();
        }
        (path, failures)
    }
}

fn taken(path: &[Choice]) -> Vec<usize> {
    path.iter().map(|c| c.taken).collect()
}

fn fail(st: &mut ExecState, kind: FailureKind, detail: String) {
    let schedule = taken(&st.path);
    st.failures.push(Failure {
        kind,
        detail,
        schedule,
    });
}

fn abort(st: &mut ExecState, cv: &Condvar) {
    st.aborted = true;
    cv.notify_all();
}

fn satisfiable(st: &ExecState, op: &Op) -> bool {
    match op {
        Op::LockAcquire { id, write } => match st.locks.get(id) {
            None => true,
            Some(l) => {
                if *write {
                    l.readers.is_empty() && l.writer.is_none()
                } else {
                    l.writer.is_none()
                }
            }
        },
        Op::Join { tid } => matches!(st.threads[*tid].state, TState::Finished),
        _ => true,
    }
}

/// Pick and grant the next thread. Called with the state lock held, from
/// whichever thread just parked or finished.
fn advance(st: &mut ExecState, cv: &Condvar) {
    if st.aborted {
        cv.notify_all();
        return;
    }
    let runnable: Vec<usize> = st
        .threads
        .iter()
        .enumerate()
        .filter(|(_, t)| match &t.state {
            TState::Ready(op) => satisfiable(st, op),
            _ => false,
        })
        .map(|(i, _)| i)
        .collect();
    if runnable.is_empty() {
        if st
            .threads
            .iter()
            .all(|t| matches!(t.state, TState::Finished))
        {
            cv.notify_all();
            return;
        }
        if st
            .threads
            .iter()
            .any(|t| matches!(t.state, TState::Running))
        {
            // A granted thread is still executing; it will call advance()
            // again at its next yield point or on finish.
            return;
        }
        let blocked: Vec<String> = st
            .threads
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match &t.state {
                TState::Ready(op) => Some(format!("thread {i} blocked on {op:?}")),
                _ => None,
            })
            .collect();
        fail(st, FailureKind::Deadlock, blocked.join("; "));
        abort(st, cv);
        return;
    }
    st.steps += 1;
    if st.steps > st.max_steps {
        let max = st.max_steps;
        fail(
            st,
            FailureKind::StepLimit,
            format!("schedule exceeded {max} steps"),
        );
        abort(st, cv);
        return;
    }
    let chosen = if st.depth < st.path.len() {
        let c = &st.path[st.depth];
        if c.alts != runnable {
            let (expected, taken) = (c.alts.clone(), c.taken);
            fail(
                st,
                FailureKind::Nondeterminism,
                format!(
                    "replay divergence at depth {}: recorded alternatives {expected:?} \
                     (taken {taken}), now runnable {runnable:?}",
                    st.depth
                ),
            );
            abort(st, cv);
            return;
        }
        c.taken
    } else {
        st.path.push(Choice {
            taken: runnable[0],
            alts: runnable.clone(),
        });
        runnable[0]
    };
    st.depth += 1;
    let op = match std::mem::replace(&mut st.threads[chosen].state, TState::Running) {
        TState::Ready(op) => op,
        other => unreachable!("granted thread in state {other:?}"),
    };
    apply(st, chosen, &op);
    if st.failures.is_empty() {
        cv.notify_all();
    } else {
        // Fail-stop: a detected violation poisons the rest of the schedule.
        abort(st, cv);
    }
}

/// Apply the granted operation's happens-before effects and race checks.
fn apply(st: &mut ExecState, t: usize, op: &Op) {
    match op {
        Op::Start | Op::Yield => {}
        Op::AtomicLoad { id, ord } => {
            let meta = st.atomics.entry(*id).or_default();
            let version = meta.version;
            if is_acquire(*ord) {
                let sync = meta.sync.clone();
                st.clocks[t].join(&sync);
            }
            st.threads[t].last_load.insert(*id, version);
        }
        Op::AtomicStore { id, ord } => {
            let clock = st.clocks[t].clone();
            let meta = st.atomics.entry(*id).or_default();
            if let Some(&seen) = st.threads[t].last_load.get(id) {
                if meta.version > seen && meta.last_writer != Some(t) {
                    let (cur, by) = (meta.version, meta.last_writer);
                    fail(
                        st,
                        FailureKind::LostUpdate,
                        format!(
                            "thread {t} stores to atomic {id:#x} over version {cur} written \
                             by thread {by:?}, but last observed version {seen} (lost update)"
                        ),
                    );
                    return;
                }
            }
            let meta = st.atomics.entry(*id).or_default();
            meta.version += 1;
            meta.last_writer = Some(t);
            st.threads[t].last_load.remove(id);
            if is_release(*ord) {
                meta.sync.join(&clock);
                meta.sync_writer = Some(t);
                st.clocks[t].bump(t);
            } else if meta.sync_writer != Some(t) {
                // A foreign relaxed store breaks the release sequence: later
                // acquire-loads no longer synchronize with the old release.
                meta.sync = VecClock::new();
                meta.sync_writer = None;
            }
        }
        Op::AtomicRmw { id, ord } => {
            let clock = st.clocks[t].clone();
            let meta = st.atomics.entry(*id).or_default();
            if is_acquire(*ord) {
                let sync = meta.sync.clone();
                st.clocks[t].join(&sync);
            }
            let meta = st.atomics.entry(*id).or_default();
            meta.version += 1;
            meta.last_writer = Some(t);
            // An RMW always reads the latest value, so it is never a lost
            // update, and per C++11 it continues an in-flight release
            // sequence even when relaxed.
            st.threads[t].last_load.remove(id);
            if is_release(*ord) {
                meta.sync.join(&clock);
                meta.sync_writer = Some(t);
                st.clocks[t].bump(t);
            }
        }
        Op::LockAcquire { id, write } => {
            let lock = st.locks.entry(*id).or_default();
            if *write {
                lock.writer = Some(t);
            } else {
                lock.readers.push(t);
            }
            let clock = lock.clock.clone();
            st.clocks[t].join(&clock);
        }
        Op::CellRead { id, label } => {
            let my_clock = st.clocks[t].clone();
            let meta = st.cells.entry(*id).or_insert_with(|| CellMeta {
                label,
                writer: None,
                write_epoch: 0,
                read_epochs: Vec::new(),
            });
            if let Some(w) = meta.writer {
                if w != t && meta.write_epoch > my_clock.get(w) {
                    let (label, epoch) = (meta.label, meta.write_epoch);
                    fail(
                        st,
                        FailureKind::HbRace,
                        format!(
                            "read of `{label}` by thread {t} races with write by thread {w} \
                             (write epoch {epoch} not ordered before the read)"
                        ),
                    );
                    return;
                }
            }
            if meta.read_epochs.len() <= t {
                meta.read_epochs.resize(t + 1, 0);
            }
            meta.read_epochs[t] = my_clock.get(t);
        }
        Op::CellWrite { id, label } => {
            let my_clock = st.clocks[t].clone();
            let meta = st.cells.entry(*id).or_insert_with(|| CellMeta {
                label,
                writer: None,
                write_epoch: 0,
                read_epochs: Vec::new(),
            });
            if let Some(w) = meta.writer {
                if w != t && meta.write_epoch > my_clock.get(w) {
                    let (label, epoch) = (meta.label, meta.write_epoch);
                    fail(
                        st,
                        FailureKind::HbRace,
                        format!(
                            "write of `{label}` by thread {t} races with write by thread {w} \
                             (write epoch {epoch} not ordered before it)"
                        ),
                    );
                    return;
                }
            }
            let racing_reader = meta
                .read_epochs
                .iter()
                .enumerate()
                .find(|&(u, &e)| u != t && e > 0 && e > my_clock.get(u));
            if let Some((u, &e)) = racing_reader {
                let label = meta.label;
                fail(
                    st,
                    FailureKind::HbRace,
                    format!(
                        "write of `{label}` by thread {t} races with read by thread {u} \
                         (read epoch {e} not ordered before the write)"
                    ),
                );
                return;
            }
            meta.writer = Some(t);
            meta.write_epoch = my_clock.get(t);
        }
        Op::Join { tid } => {
            let child = st.clocks[*tid].clone();
            st.clocks[t].join(&child);
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local context: which execution the current OS thread belongs to.
// ---------------------------------------------------------------------------

#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Execution>,
    pub(crate) tid: usize,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
    /// Set while a managed thread runs user code: suppresses the default
    /// panic message for oracle failures (they are reported as findings).
    static IN_MODEL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

pub(crate) fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
    IN_MODEL.with(|f| f.set(true));
}

pub(crate) fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
    IN_MODEL.with(|f| f.set(false));
}

/// Install (once) a panic hook that stays quiet for managed-model panics —
/// they are captured and reported as `Failure`s, so the default backtrace
/// spew would only be noise.
pub(crate) fn install_quiet_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let quiet = IN_MODEL.with(|f| f.get());
            if !quiet {
                prev(info);
            }
        }));
    });
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Public model API used by lib.rs
// ---------------------------------------------------------------------------

/// Handle to a managed spawned thread. Unlike `std`, `join` participates in
/// the schedule (it is a yield point, runnable once the child finished) and
/// establishes the child-to-parent happens-before edge.
pub struct JoinHandle<R> {
    tid: usize,
    result: Arc<Mutex<Option<R>>>,
}

impl<R> JoinHandle<R> {
    /// Wait for the thread and take its result.
    pub fn join(self) -> R {
        let ctx = current_ctx().expect("interleave: join outside a model run");
        ctx.exec.yield_op(ctx.tid, Op::Join { tid: self.tid });
        let slot = self.result.lock().unwrap().take();
        slot.expect("interleave: joined thread stored no result")
    }
}

/// Spawn a managed thread inside a model run. Panics outside `model()`.
pub fn spawn<F, R>(f: F) -> JoinHandle<R>
where
    F: FnOnce() -> R + Send + 'static,
    R: Send + 'static,
{
    let ctx = current_ctx().expect("interleave: spawn outside a model run");
    let tid = ctx.exec.register_thread(ctx.tid);
    let result: Arc<Mutex<Option<R>>> = Arc::new(Mutex::new(None));
    let result2 = Arc::clone(&result);
    let exec = Arc::clone(&ctx.exec);
    let handle = std::thread::spawn(move || {
        set_ctx(Some(Ctx {
            exec: Arc::clone(&exec),
            tid,
        }));
        let r = catch_unwind(AssertUnwindSafe(|| {
            // Wait for the first grant before touching user code.
            exec.wait_first_grant(tid);
            f()
        }));
        let panic_msg = match r {
            Ok(v) => {
                *result2.lock().unwrap() = Some(v);
                None
            }
            Err(p) if p.is::<AbortToken>() => None,
            Err(p) => Some(panic_message(p.as_ref())),
        };
        exec.finish_thread(tid, panic_msg);
        clear_ctx();
    });
    ctx.exec.push_handle(handle);
    JoinHandle { tid, result }
}

/// Explicit scheduling point with no memory effect.
pub fn yield_now() {
    if let Some(ctx) = current_ctx() {
        ctx.exec.yield_op(ctx.tid, Op::Yield);
    }
}

/// Hook an instrumented op from `sync` types; no-op outside a model run.
/// When the explorer opted into the reduction, relaxed RMWs are
/// *transparent* (checked but not branch points) — see
/// [`Execution::apply_transparent`].
pub(crate) fn hook(op: Op) {
    if let Some(ctx) = current_ctx() {
        let transparent = ctx.exec.transparent_relaxed_rmw
            && matches!(
                op,
                Op::AtomicRmw {
                    ord: Ordering::Relaxed,
                    ..
                }
            );
        if transparent {
            ctx.exec.apply_transparent(ctx.tid, op);
        } else {
            ctx.exec.yield_op(ctx.tid, op);
        }
    }
}

/// Hook a guard release; no-op outside a model run.
pub(crate) fn hook_release(id: usize, write: bool) {
    if let Some(ctx) = current_ctx() {
        ctx.exec.lock_release(ctx.tid, id, write);
    }
}

/// Whether the calling thread is inside a model run (instrumented path).
pub fn in_model() -> bool {
    current_ctx().is_some()
}

// ---------------------------------------------------------------------------
// The explorer driver
// ---------------------------------------------------------------------------

/// Outcome of exploring one scenario.
#[derive(Debug, Clone)]
pub struct Report {
    /// Scenario name, as passed to `explore`.
    pub name: String,
    /// Number of distinct schedules executed.
    pub schedules: u64,
    /// Whether the schedule space was exhausted (false when a bound or the
    /// failure cap stopped exploration early).
    pub complete: bool,
    /// All violations observed, with their failing schedules.
    pub failures: Vec<Failure>,
    /// Longest decision path seen (scheduling depth of the scenario).
    pub max_depth: usize,
}

impl Report {
    /// True when exploration exhausted the space without any violation.
    pub fn ok(&self) -> bool {
        self.complete && self.failures.is_empty()
    }
}

/// Bounded exhaustive DFS over thread interleavings of a model closure.
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Stop after this many schedules (marks the report incomplete).
    pub max_schedules: u64,
    /// Per-schedule step budget (guards against livelock in the model).
    pub max_steps: u64,
    /// Stop exploring after this many recorded failures.
    pub max_failures: usize,
    /// Partial-order reduction: relaxed RMWs keep the baton (their clock
    /// effects and checks still run). Sound whenever relaxed RMW return
    /// values never steer control flow — they commute, so no distinct
    /// outcome is lost. Off by default: enable it for scenarios whose
    /// schedule space is dominated by commuting accounting counters.
    pub transparent_relaxed_rmw: bool,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            max_schedules: 20_000,
            max_steps: 100_000,
            max_failures: 8,
            transparent_relaxed_rmw: false,
        }
    }
}

impl Explorer {
    /// Explorer with default bounds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable the relaxed-RMW partial-order reduction (see the field docs).
    pub fn with_transparent_relaxed_rmw(mut self) -> Self {
        self.transparent_relaxed_rmw = true;
        self
    }

    /// Run `f` under every schedule (depth-first over choice points) until
    /// the space is exhausted or a bound trips. `f` must be deterministic
    /// modulo scheduling: same instrumented ops given the same grants.
    pub fn explore<F>(&self, name: &str, f: F) -> Report
    where
        F: Fn(),
    {
        assert!(
            current_ctx().is_none(),
            "interleave: nested model runs are not supported"
        );
        install_quiet_hook();
        let mut path: Vec<Choice> = Vec::new();
        let mut schedules = 0u64;
        let mut failures: Vec<Failure> = Vec::new();
        let mut complete = true;
        let mut max_depth = 0usize;
        loop {
            if schedules >= self.max_schedules {
                complete = false;
                break;
            }
            let exec = Arc::new(Execution::new(
                path.clone(),
                self.max_steps,
                self.transparent_relaxed_rmw,
            ));
            set_ctx(Some(Ctx {
                exec: Arc::clone(&exec),
                tid: 0,
            }));
            let r = catch_unwind(AssertUnwindSafe(&f));
            let panic_msg = match r {
                Ok(()) => None,
                Err(p) if p.is::<AbortToken>() => None,
                Err(p) => Some(panic_message(p.as_ref())),
            };
            exec.finish_thread(0, panic_msg);
            let (run_path, run_failures) = exec.wait_all_finished();
            clear_ctx();
            schedules += 1;
            max_depth = max_depth.max(run_path.len());
            failures.extend(run_failures);
            if failures.len() >= self.max_failures {
                complete = false;
                break;
            }
            // Backtrack: advance the deepest choice with an untried
            // alternative, dropping everything below it.
            path = run_path;
            let mut exhausted = true;
            while let Some(c) = path.last_mut() {
                let pos = c
                    .alts
                    .iter()
                    .position(|&x| x == c.taken)
                    .expect("taken thread is among its alternatives");
                if pos + 1 < c.alts.len() {
                    c.taken = c.alts[pos + 1];
                    exhausted = false;
                    break;
                }
                path.pop();
            }
            if exhausted {
                break;
            }
        }
        Report {
            name: name.to_string(),
            schedules,
            complete,
            failures,
            max_depth,
        }
    }
}
