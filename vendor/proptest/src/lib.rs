//! Offline stub of `proptest`: a deterministic mini property-testing
//! harness exposing the macro/strategy surface this workspace uses —
//! `proptest! { #![proptest_config(...)] #[test] fn f(x in strategy) {..} }`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! integer range strategies, `any::<T>()`, `Just(..).prop_shuffle()`,
//! tuple strategies, and `prop::collection::{vec, btree_set}`.
//!
//! Differences from real proptest, by design: no shrinking (the failing
//! case's inputs are printed instead) and a fixed deterministic seed per
//! test derived from the test name, so runs are reproducible without
//! `.proptest-regressions` files (which are ignored).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Failure channel used by the `prop_assert*` / `prop_assume!` macros.
#[derive(Debug)]
pub enum TestCaseError {
    /// Case rejected by `prop_assume!` — skipped, not a failure.
    Reject(String),
    /// Case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure (mirrors `proptest::test_runner::TestCaseError::fail`).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
    /// Maximum consecutive `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed directly.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed | 1 }
    }

    /// Seed deterministically from a test name (stable across runs).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `usize` below `n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A generator of random values (the stub's take on `proptest::Strategy`).
///
/// Strategies are sampled directly (no shrink trees).
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Shuffle the generated collection (only for `Vec` values).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle(self)
    }

    /// Map generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map(self, f)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Values `any::<T>()` can produce.
pub trait ArbitraryValue: Debug + Sized {
    /// Sample an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy generating arbitrary values of `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Constant strategy (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter from [`Strategy::prop_shuffle`].
#[derive(Debug, Clone)]
pub struct Shuffle<S>(S);

impl<T: Debug, S: Strategy<Value = Vec<T>>> Strategy for Shuffle<S> {
    type Value = Vec<T>;
    fn sample(&self, rng: &mut TestRng) -> Vec<T> {
        let mut v = self.0.sample(rng);
        for k in (1..v.len()).rev() {
            v.swap(k, rng.below(k + 1));
        }
        v
    }
}

/// Strategy adapter from [`Strategy::prop_map`].
pub struct Map<S, F>(S, F);

impl<O: Debug, S: Strategy, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.1)(self.0.sample(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
}

/// Sizes accepted by collection strategies: a fixed `usize` or a `Range`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below(self.hi - self.lo)
    }
}

/// Collection strategies (`prop::collection` in real proptest).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::fmt::Debug;

    /// Strategy producing `Vec`s of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of values from `element`, with `size` elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s of `element` values.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` of values from `element`, with `size` distinct elements
    /// (best effort: gives up growing after a bounded number of duplicate
    /// draws, like real proptest's rejection cap).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + Debug,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng).max(1);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 64 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Namespace mirror of real proptest's `prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Assert inside a `proptest!` body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            l,
            r
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Reject (skip) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// The `proptest!` test-defining macro (stub-compatible subset).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut rejects: u32 = 0;
                let mut case: u32 = 0;
                while case < config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let __case_desc = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                        $(&$arg),+
                    );
                    let result: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    match result {
                        ::core::result::Result::Ok(()) => case += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            rejects += 1;
                            if rejects > config.max_global_rejects {
                                panic!(
                                    "proptest {}: too many prop_assume! rejections ({})",
                                    stringify!($name),
                                    rejects
                                );
                            }
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {}:\n{}\ninputs:\n{}",
                                stringify!($name),
                                case,
                                msg,
                                __case_desc
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 0..10usize, b in -3isize..=3) {
            prop_assert!(a < 10);
            prop_assert!((-3..=3).contains(&b));
        }

        #[test]
        fn shuffle_is_permutation(v in Just((0..16usize).collect::<Vec<_>>()).prop_shuffle()) {
            let mut sorted = v.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        }

        #[test]
        fn collections_sized(
            xs in prop::collection::vec(any::<u64>(), 16),
            set in prop::collection::btree_set((0..6usize, 0..6usize), 1..8),
        ) {
            prop_assert_eq!(xs.len(), 16);
            prop_assert!(!set.is_empty() && set.len() < 8);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0..100usize) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_rng_is_stable() {
        let mut a = super::TestRng::deterministic("name");
        let mut b = super::TestRng::deterministic("name");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
