//! Offline stub of `rand` 0.8: a SplitMix64 generator behind the small API
//! subset this workspace may use (`thread_rng`, `Rng::gen_range`/`gen`,
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`). `thread_rng` is seeded per
//! thread from the thread id and a process-wide counter — statistically fine
//! for tests and benchmarks, not cryptographic.

use std::ops::Range;

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample a value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Core generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + <f64 as Standard>::sample(rng) * (high - low)
    }
}

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Sample any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}
impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stands in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    /// Per-thread generator returned by [`crate::thread_rng`].
    pub type ThreadRng = StdRng;
}

/// A fresh per-call generator, seeded from the thread and an atomic counter.
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0x5eed);
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    use std::hash::{Hash, Hasher};
    std::thread::current().id().hash(&mut hasher);
    let seed = hasher.finish() ^ COUNTER.fetch_add(0x9e37_79b9, Ordering::Relaxed);
    <rngs::StdRng as SeedableRng>::seed_from_u64(seed)
}

/// Sample any [`Standard`] type from [`thread_rng`].
pub fn random<T: Standard>() -> T {
    thread_rng().gen()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f = r.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = rngs::StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
