//! Offline stub of `parking_lot`: thin wrappers over `std::sync` primitives
//! exposing parking_lot's non-poisoning guard-returning API. A poisoned std
//! lock (a writer panicked) is recovered by taking the inner guard, matching
//! parking_lot's behaviour of not propagating poison.

use std::sync::{self, PoisonError};

/// Non-poisoning reader-writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard (blocks; never errors).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard (blocks; never errors).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// Non-poisoning mutex.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Mutex guard.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (blocks; never errors).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }

    #[test]
    fn rwlock_recovers_from_poison() {
        let l = std::sync::Arc::new(RwLock::new(0));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison");
        })
        .join();
        assert_eq!(*l.read(), 0, "stub ignores poisoning like parking_lot");
    }
}
