//! Offline stub of `criterion` 0.5: real wall-clock measurement behind the
//! API subset this workspace's benches use (`benchmark_group`, `throughput`,
//! `sample_size`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `black_box`, `criterion_group!`/`criterion_main!`).
//!
//! Per benchmark it calibrates an iteration count targeting ~50ms per
//! sample, discards warm-up samples, collects `sample_size` timed samples,
//! rejects outliers by median absolute deviation (|x - median| > 5*MAD) and
//! reports the surviving median ns/iter plus derived throughput. No
//! statistical regression analysis or HTML reports.
//!
//! Set `CRITERION_JSON=<path>` to append one JSON object per benchmark
//! (`{"group","bench","ns_per_iter","throughput",...}`) — used to record
//! baseline files like `BENCH_plan.json`.
//!
//! Set `CRITERION_QUICK=1` for a smoke mode (CI): one short calibration
//! pass, one sample, no warm-up — verifies every bench *runs* without
//! spending bench-quality time.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput declaration for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter (`name/param`).
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self {
            id: format!("{name}/{param}"),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        Self {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`, keeping each result alive via `black_box`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }

    /// Run a single ungrouped benchmark (upstream convenience API).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into().id;
        let mut g = self.benchmark_group(name);
        g.run(BenchmarkId { id: String::new() }, &mut f);
        g.finish();
        self
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), &mut f);
        self
    }

    /// Run one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group (reporting happens per benchmark; this is a no-op
    /// kept for API compatibility).
    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
        // Calibrate: grow iteration count until one sample takes >= 50ms
        // (or the count gets large enough that timer noise is negligible).
        // Quick mode targets 1ms: enough to prove the bench runs.
        let target = if quick {
            Duration::from_millis(1)
        } else {
            Duration::from_millis(50)
        };
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= target || iters >= 1 << 24 {
                break;
            }
            // Aim directly at the target with headroom, at least doubling.
            let scaled = if b.elapsed.as_nanos() == 0 {
                iters * 16
            } else {
                let want =
                    (target.as_nanos() * 12 / 10 * iters as u128) / b.elapsed.as_nanos().max(1);
                want.min(u64::MAX as u128) as u64
            };
            iters = scaled.max(iters * 2);
        }

        // Warm-up: the first timed samples run on cold caches and an
        // un-trained branch predictor; discard a few before measuring.
        // (The calibration loop above already touched the data, but its
        // final pass may have been the first at the full iteration count.)
        let warmup = if quick { 0 } else { 2 };
        for _ in 0..warmup {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
        }

        let sample_size = if quick { 1 } else { self.sample_size };
        let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());

        let kept = reject_outliers(&samples_ns);
        let rejected = samples_ns.len() - kept.len();
        let median = kept[kept.len() / 2];
        let lo = kept[0];
        let hi = kept[kept.len() - 1];

        let throughput_desc = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let gibs = n as f64 / median / 1.073_741_824;
                Some(format!("{gibs:.3} GiB/s"))
            }
            Some(Throughput::Elements(n)) => {
                let melem = n as f64 * 1e3 / median;
                Some(format!("{melem:.1} Melem/s"))
            }
            None => None,
        };

        let label = if id.id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        println!(
            "{}: [{:.1} ns {:.1} ns {:.1} ns]{}  ({} iters x {} samples{})",
            label,
            lo,
            median,
            hi,
            throughput_desc
                .as_deref()
                .map(|t| format!("  {t}"))
                .unwrap_or_default(),
            iters,
            kept.len(),
            if rejected > 0 {
                format!(", {rejected} outlier(s) rejected")
            } else {
                String::new()
            },
        );

        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                let (tp_kind, tp_per_iter) = match self.throughput {
                    Some(Throughput::Bytes(n)) => ("bytes", n),
                    Some(Throughput::Elements(n)) => ("elements", n),
                    None => ("none", 0),
                };
                let line = format!(
                    concat!(
                        "{{\"group\":\"{}\",\"bench\":\"{}\",",
                        "\"ns_per_iter\":{:.3},\"ns_min\":{:.3},\"ns_max\":{:.3},",
                        "\"throughput_kind\":\"{}\",\"throughput_per_iter\":{},",
                        "\"iters\":{},\"samples\":{},\"outliers_rejected\":{}}}\n"
                    ),
                    self.name,
                    id,
                    median,
                    lo,
                    hi,
                    tp_kind,
                    tp_per_iter,
                    iters,
                    kept.len(),
                    rejected,
                );
                if let Ok(mut file) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                {
                    let _ = file.write_all(line.as_bytes());
                }
            }
        }
    }
}

/// Outlier rejection by median absolute deviation: a scheduler preemption
/// mid-sample inflates one reading by orders of magnitude; keep samples with
/// `|x - median| <= 5 * MAD`. MAD == 0 (at least half the samples identical
/// to the median, e.g. very fast benches quantized by the timer) keeps
/// everything. Input must be sorted; output stays sorted and non-empty.
fn reject_outliers(sorted_ns: &[f64]) -> Vec<f64> {
    let median = sorted_ns[sorted_ns.len() / 2];
    let mut devs: Vec<f64> = sorted_ns.iter().map(|x| (x - median).abs()).collect();
    devs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mad = devs[devs.len() / 2];
    if mad > 0.0 {
        sorted_ns
            .iter()
            .copied()
            .filter(|x| (x - median).abs() <= 5.0 * mad)
            .collect()
    } else {
        sorted_ns.to_vec()
    }
}

/// Define a benchmark group runner (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the given groups (mirrors criterion's macro).
///
/// Accepts and ignores `--bench`-style arguments cargo passes through.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- --test` / harness probing should not explode.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub_smoke");
        g.throughput(Throughput::Elements(64));
        g.sample_size(3);
        g.bench_function(BenchmarkId::from_parameter("sum64"), |b| {
            b.iter(|| (0..64u64).map(black_box).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::new("scaled", 128), &128u64, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("a", "b").to_string(), "a/b");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }

    #[test]
    fn mad_rejects_spikes_keeps_cluster() {
        // Tight cluster + one preemption spike: the spike goes.
        let s = [100.0, 101.0, 101.0, 102.0, 103.0, 5000.0];
        let kept = reject_outliers(&s);
        assert_eq!(kept, vec![100.0, 101.0, 101.0, 102.0, 103.0]);
    }

    #[test]
    fn mad_zero_keeps_everything() {
        // Timer-quantized samples: majority identical -> MAD = 0 -> no
        // rejection, even of the distinct values.
        let s = [50.0, 50.0, 50.0, 50.0, 75.0];
        assert_eq!(reject_outliers(&s).len(), 5);
    }

    #[test]
    fn mad_keeps_moderate_spread() {
        let s = [90.0, 95.0, 100.0, 105.0, 110.0];
        assert_eq!(reject_outliers(&s).len(), 5, "within 5*MAD");
    }
}
