//! Offline stub of `bytes`, covering exactly the surface the workspace uses
//! (`polymem::image`): `BytesMut` as an append-only builder with the
//! little-endian `BufMut` putters, `freeze` into `Bytes`, and `Bytes` as a
//! consuming read cursor with the `Buf` getters. Semantics match the real
//! crate for this subset: `Bytes::len()` is the *remaining* length, getters
//! advance the cursor and panic on underflow.

/// Read-side cursor trait (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copy `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

/// Write-side trait (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Immutable byte buffer with a consuming read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: std::sync::Arc<Vec<u8>>,
    pos: usize,
}

impl Bytes {
    /// Remaining (unread) length.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether all bytes have been consumed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// View of the remaining bytes.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// Copy the remaining bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// New `Bytes` holding a sub-range of the remaining bytes.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Self::from(self.as_ref()[start..end].to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self {
            data: std::sync::Arc::new(data),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "Bytes underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// Growable byte builder.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        Self { data: src.to_vec() }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut w = BytesMut::with_capacity(16);
        w.put_slice(b"AB");
        w.put_u8(7);
        w.put_u16_le(0x1234);
        w.put_u64_le(0xdead_beef_cafe_f00d);
        let mut r = w.freeze();
        assert_eq!(r.len(), 2 + 1 + 2 + 8);
        let mut two = [0u8; 2];
        r.copy_to_slice(&mut two);
        assert_eq!(&two, b"AB");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.remaining(), 8);
        assert_eq!(r.get_u64_le(), 0xdead_beef_cafe_f00d);
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u16_le();
    }
}
