//! Offline stub of `crossbeam`, providing `crossbeam::scope` on top of
//! `std::thread::scope` (stable since Rust 1.63, which post-dates crossbeam's
//! scoped-thread API). The closure-taking `spawn(|scope| ...)` signature and
//! the `Result`-returning `scope(...)` entry point match crossbeam 0.8.

/// Scoped-thread module, mirroring `crossbeam::thread`.
pub mod thread {
    use std::thread as stdthread;

    /// Result of a scope or a join: `Err` carries the panic payload.
    pub type Result<T> = stdthread::Result<T>;

    /// A scope handle passed to `scope` closures and to every spawned thread.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. As in crossbeam, the closure receives the
        /// scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread; `Err` if it panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope in which borrowing, scoped threads can be
    /// spawned; returns once all of them finished.
    ///
    /// Unjoined panicked children make the whole call return `Err` in
    /// crossbeam; `std::thread::scope` resumes the panic instead, so this
    /// stub intercepts it with `catch_unwind` to preserve the `Result`
    /// contract.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        // AssertUnwindSafe matches crossbeam, which imposes no UnwindSafe
        // bound on the scope closure.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            stdthread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::scope;
pub use thread::Scope;

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let counter_ref = &counter;
        let total = super::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|k| {
                    s.spawn(move |_| {
                        counter_ref.fetch_add(1, Ordering::SeqCst);
                        k * 10
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
        assert_eq!(total, 60);
    }

    #[test]
    fn join_surfaces_panics() {
        let res = super::scope(|s| {
            let h = s.spawn(|_| panic!("child panic"));
            h.join()
        })
        .unwrap();
        assert!(res.is_err());
    }

    #[test]
    fn unjoined_panic_yields_err() {
        let res = super::scope(|s| {
            s.spawn(|_| panic!("unjoined child"));
        });
        assert!(res.is_err());
    }
}
