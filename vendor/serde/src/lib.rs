//! Offline stub of `serde`.
//!
//! The container building this repository has no network access to
//! crates.io, so the real serde cannot be fetched. Nothing in the workspace
//! actually serializes through serde (there is no `serde_json`; the binary
//! image format in `polymem::image` is hand-rolled) — the dependency exists
//! only for `#[derive(Serialize, Deserialize)]` annotations kept so the
//! types remain serde-ready when the real crate is swapped back in.
//!
//! This stub therefore provides the two traits as markers with blanket
//! impls, and re-exports no-op derive macros from the stub `serde_derive`.
//! Swapping back to real serde is a one-line change in the workspace
//! `Cargo.toml`.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Stub of the `serde::de` module (trait re-exports only).
pub mod de {
    pub use crate::DeserializeOwned;
}
